//! POLWAL1 — the append-only write-ahead journal segment format.
//!
//! The streaming engine's durability story (`pol-stream::journal`) rests
//! on this codec: every wire record is appended to a WAL segment
//! *before* it is pushed into the in-memory engine, so a crash can lose
//! at most the records of batches not yet flushed — and recovery can
//! replay the journal to reconverge byte-identically.
//!
//! ## On-disk layout
//!
//! ```text
//! magic    b"POLWAL1\0"                                    8 bytes
//! header   u32 LE section length                           4 bytes
//!          first-batch-sequence varint                      (length bytes)
//!          u64 LE CRC-64/XZ of the section bytes            8 bytes
//! batch*   u32 LE payload length (never 0xFFFF_FFFF)        4 bytes
//!          payload: seq varint, record-count varint,
//!                   then each record (see below)             (length bytes)
//!          u64 LE CRC-64/XZ of the payload                  8 bytes
//! seal?    u32 LE 0xFFFF_FFFF sentinel                      4 bytes
//!          u64 LE total file length, b"POLSEAL\0"          16 bytes
//! ```
//!
//! Records encode as: mmsi varint, timestamp zigzag varint, raw f64
//! latitude + longitude, a presence-flags byte (bit 0 speed, bit 1
//! course, bit 2 heading), the present `f64`s in that order, and the
//! raw navigational-status byte.
//!
//! ## Torn tails vs corruption
//!
//! A WAL segment is the one file in the system that is *expected* to be
//! caught mid-write by a crash, so the failure semantics differ from
//! the sealed snapshot formats:
//!
//! * an **unsealed** segment whose final batch is incomplete (frame
//!   runs past end of file, or its CRC fails with nothing after it) has
//!   a *torn tail*: every batch before it is served, the tail is
//!   reported and discarded, never served;
//! * a batch whose CRC fails while **complete further bytes follow
//!   it** is mid-file corruption — typed error, nothing served;
//! * a **sealed** segment admits no tail at all: any framing or CRC
//!   defect is a typed error, exactly like the snapshot formats.
//!
//! The distinction is what lets recovery treat "the process died while
//! appending" as normal (`tests/codec_wal.rs` proves the tolerant
//! loader never panics and never serves a torn batch) while still
//! refusing bit rot in the middle of the journal.

use super::FOOTER_MAGIC;
use pol_ais::types::{Mmsi, NavStatus};
use pol_ais::PositionReport;
use pol_geo::LatLon;
use pol_sketch::crc64::crc64;
use pol_sketch::wire::{get_f64, get_varint, put_f64, put_varint, WireError};
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// WAL segment file magic.
pub const MAGIC_WAL: &[u8; 8] = b"POLWAL1\0";

/// Frame-length sentinel announcing the seal instead of a batch.
pub const SEAL_SENTINEL: u32 = u32::MAX;

/// A conservative lower bound on one encoded record: mmsi varint (1) +
/// timestamp varint (1) + two raw `f64`s (16) + flags (1) + nav status
/// (1). Bounds the allocation a hostile record count can demand.
pub const MIN_RECORD_BYTES: usize = 20;

/// An upper bound on one batch frame's payload, far above anything the
/// writer produces (the journal flushes batches of hundreds of
/// records): a corrupt length field cannot make the reader treat half
/// the file as one frame without tripping this first.
pub const MAX_BATCH_BYTES: usize = 1 << 28;

/// Errors from reading or writing a WAL segment.
#[derive(Debug)]
pub enum WalError {
    /// I/O failure.
    Io(io::Error),
    /// Decode failure inside a CRC-valid payload (an encoder bug or an
    /// impossibly collided checksum, not ordinary corruption).
    Wire(WireError),
    /// Wrong magic / not a WAL segment.
    BadHeader,
    /// The segment carries no valid seal in a context that requires one
    /// (every non-final segment of a journal must be sealed).
    Unsealed,
    /// A section's bytes do not match their recorded CRC-64 in a
    /// position a torn write cannot explain: bit rot or in-place
    /// corruption.
    Checksum {
        /// Which section failed (`"header"` or `"batch"`).
        section: &'static str,
    },
    /// Structurally impossible framing mid-file (bytes after the seal,
    /// a batch-sequence gap, an oversized frame) — not a torn tail.
    Corrupt(&'static str),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal io error: {e}"),
            Self::Wire(e) => write!(f, "wal decode error: {e}"),
            Self::BadHeader => write!(f, "not a patterns-of-life wal segment"),
            Self::Unsealed => write!(f, "wal segment is unsealed where a seal is required"),
            Self::Checksum { section } => {
                write!(f, "wal {section} section failed its CRC-64 check")
            }
            Self::Corrupt(what) => write!(f, "wal segment corrupt: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for WalError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends the canonical encoding of one record to `out`.
pub fn encode_record(r: &PositionReport, out: &mut Vec<u8>) {
    put_varint(out, r.mmsi.0 as u64);
    put_varint(out, zigzag(r.timestamp));
    put_f64(out, r.pos.lat());
    put_f64(out, r.pos.lon());
    let flags = r.sog_knots.is_some() as u8
        | (r.cog_deg.is_some() as u8) << 1
        | (r.heading_deg.is_some() as u8) << 2;
    out.push(flags);
    for v in [r.sog_knots, r.cog_deg, r.heading_deg]
        .into_iter()
        .flatten()
    {
        put_f64(out, v);
    }
    out.push(r.nav_status.raw());
}

/// Decodes one record, advancing `input` past it.
pub fn decode_record(input: &mut &[u8]) -> Result<PositionReport, WireError> {
    let mmsi = u32::try_from(get_varint(input)?)
        .ok()
        .and_then(Mmsi::new)
        .ok_or(WireError("bad mmsi"))?;
    let timestamp = unzigzag(get_varint(input)?);
    let lat = get_f64(input)?;
    let lon = get_f64(input)?;
    let pos = LatLon::new(lat, lon).ok_or(WireError("bad position"))?;
    let (&flags, rest) = input.split_first().ok_or(WireError("flags truncated"))?;
    *input = rest;
    if flags & !0b111 != 0 {
        return Err(WireError("bad flags"));
    }
    let mut opt = |bit: u8| -> Result<Option<f64>, WireError> {
        if flags & bit != 0 {
            get_f64(input).map(Some)
        } else {
            Ok(None)
        }
    };
    let sog_knots = opt(1)?;
    let cog_deg = opt(2)?;
    let heading_deg = opt(4)?;
    let (&nav, rest) = input.split_first().ok_or(WireError("nav truncated"))?;
    *input = rest;
    Ok(PositionReport {
        mmsi,
        timestamp,
        pos,
        sog_knots,
        cog_deg,
        heading_deg,
        nav_status: NavStatus::from_raw(nav),
    })
}

/// Encodes one batch's payload (sequence number, count, records).
pub fn encode_batch_payload(seq: u64, records: &[PositionReport]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + records.len() * 40);
    put_varint(&mut out, seq);
    put_varint(&mut out, records.len() as u64);
    for r in records {
        encode_record(r, &mut out);
    }
    out
}

/// Decodes one batch payload into its sequence number and records.
pub fn decode_batch_payload(mut input: &[u8]) -> Result<(u64, Vec<PositionReport>), WireError> {
    let seq = get_varint(&mut input)?;
    let count = get_varint(&mut input)? as usize;
    // Hostile-count guard: the CRC proves integrity, not honesty.
    if count > input.len() / MIN_RECORD_BYTES {
        return Err(WireError("record count exceeds buffer"));
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(decode_record(&mut input)?);
    }
    if !input.is_empty() {
        return Err(WireError("trailing batch bytes"));
    }
    Ok((seq, records))
}

/// One decoded record batch of a segment.
#[derive(Clone, Debug)]
pub struct Batch {
    /// Journal-global batch sequence number.
    pub seq: u64,
    /// The records appended as this batch.
    pub records: Vec<PositionReport>,
}

/// What a tolerant segment read found.
#[derive(Clone, Debug)]
pub struct SegmentLoad {
    /// The header's first batch sequence number.
    pub first_seq: u64,
    /// Every durable batch, in append order.
    pub batches: Vec<Batch>,
    /// Whether the segment ended with a valid seal.
    pub sealed: bool,
    /// Bytes of a torn trailing batch (or partial seal) that were
    /// detected and discarded. Always 0 for a sealed segment.
    pub torn_bytes: u64,
    /// Length of the valid prefix — magic through the last durable
    /// batch. A resume truncates the file to this before appending.
    pub valid_len: u64,
}

/// Reads a segment image, requiring a valid seal (the contract for
/// every non-final segment of a journal).
pub fn read_sealed(bytes: &[u8]) -> Result<SegmentLoad, WalError> {
    let load = read_segment(bytes)?;
    if !load.sealed {
        return Err(WalError::Unsealed);
    }
    Ok(load)
}

/// Reads a segment image tolerantly: a torn trailing batch or partial
/// seal is detected, reported in [`SegmentLoad::torn_bytes`], and
/// discarded — never served. Mid-file defects are still typed errors.
pub fn read_segment(bytes: &[u8]) -> Result<SegmentLoad, WalError> {
    if bytes.len() < MAGIC_WAL.len() || &bytes[..MAGIC_WAL.len()] != MAGIC_WAL {
        return Err(WalError::BadHeader);
    }

    // Header section. A header torn by a crash at segment creation
    // still reads as BadHeader: the segment holds no durable batch, and
    // the journal layer treats an unreadable *final* segment header as
    // an empty tail (`pol-stream` discards and recreates it).
    let mut at = MAGIC_WAL.len();
    let header_len = read_u32(bytes, &mut at).ok_or(WalError::BadHeader)? as usize;
    if header_len > 16 {
        return Err(WalError::Corrupt("oversized header"));
    }
    let header = read_slice(bytes, &mut at, header_len).ok_or(WalError::BadHeader)?;
    let header_crc = read_u64(bytes, &mut at).ok_or(WalError::BadHeader)?;
    if crc64(header) != header_crc {
        return Err(WalError::Checksum { section: "header" });
    }
    let mut h = header;
    let first_seq = get_varint(&mut h)?;
    if !h.is_empty() {
        return Err(WalError::Wire(WireError("trailing header bytes")));
    }

    let mut batches = Vec::new();
    let mut next_seq = first_seq;
    loop {
        let frame_at = at;
        let Some(len) = read_u32(bytes, &mut at) else {
            // Torn: EOF inside (or right at) a frame-length field.
            return Ok(torn(first_seq, batches, frame_at, bytes.len()));
        };
        if len == SEAL_SENTINEL {
            // Seal: recorded total length + footer magic, then EOF.
            let Some(recorded) = read_u64(bytes, &mut at) else {
                return Ok(torn(first_seq, batches, frame_at, bytes.len()));
            };
            let Some(magic) = read_slice(bytes, &mut at, FOOTER_MAGIC.len()) else {
                return Ok(torn(first_seq, batches, frame_at, bytes.len()));
            };
            if magic != FOOTER_MAGIC || recorded != bytes.len() as u64 {
                return Err(WalError::Unsealed);
            }
            if at != bytes.len() {
                return Err(WalError::Corrupt("bytes after seal"));
            }
            return Ok(SegmentLoad {
                first_seq,
                batches,
                sealed: true,
                torn_bytes: 0,
                valid_len: frame_at as u64,
            });
        }
        let len = len as usize;
        if len > MAX_BATCH_BYTES {
            return Err(WalError::Corrupt("oversized batch frame"));
        }
        let Some(payload) = read_slice(bytes, &mut at, len) else {
            return Ok(torn(first_seq, batches, frame_at, bytes.len()));
        };
        let Some(payload_crc) = read_u64(bytes, &mut at) else {
            return Ok(torn(first_seq, batches, frame_at, bytes.len()));
        };
        if crc64(payload) != payload_crc {
            if at == bytes.len() {
                // The final frame's bytes are all present but wrong: a
                // torn write that persisted the length before the
                // payload pages. Discard, never serve.
                return Ok(torn(first_seq, batches, frame_at, bytes.len()));
            }
            return Err(WalError::Checksum { section: "batch" });
        }
        let (seq, records) = decode_batch_payload(payload)?;
        if seq != next_seq {
            return Err(WalError::Corrupt("batch sequence gap"));
        }
        next_seq += 1;
        batches.push(Batch { seq, records });
        if at == bytes.len() {
            // Clean unsealed end (e.g. the writer was killed between
            // batches): every batch is durable, nothing torn.
            return Ok(SegmentLoad {
                first_seq,
                batches,
                sealed: false,
                torn_bytes: 0,
                valid_len: at as u64,
            });
        }
    }
}

fn torn(first_seq: u64, batches: Vec<Batch>, valid_at: usize, file_len: usize) -> SegmentLoad {
    SegmentLoad {
        first_seq,
        batches,
        sealed: false,
        torn_bytes: (file_len - valid_at) as u64,
        valid_len: valid_at as u64,
    }
}

fn read_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let s = read_slice(bytes, at, 4)?;
    Some(u32::from_le_bytes(s.try_into().ok()?))
}

fn read_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let s = read_slice(bytes, at, 8)?;
    Some(u64::from_le_bytes(s.try_into().ok()?))
}

fn read_slice<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Option<&'a [u8]> {
    let end = at.checked_add(n)?;
    if end > bytes.len() {
        return None;
    }
    let s = &bytes[*at..end];
    *at = end;
    Some(s)
}

/// Reads a segment file tolerantly (see [`read_segment`]).
pub fn load_segment(path: &Path) -> Result<SegmentLoad, WalError> {
    let bytes = std::fs::read(path)?;
    read_segment(&bytes)
}

fn chaos_io(what: &str) -> io::Error {
    io::Error::other(format!("chaos: injected {what} failure"))
}

/// An open, appendable WAL segment file.
///
/// `create` writes and syncs the header before returning, so a segment
/// that exists on disk with a readable header is append-ready. Batches
/// are appended with [`append_batch`](Self::append_batch); the caller
/// decides when to [`sync`](Self::sync) (group commit lives one layer
/// up, in `pol-stream::journal`). Dropping the writer without
/// [`seal`](Self::seal) leaves a valid unsealed segment — exactly what
/// a crash leaves — which `read_segment` serves in full.
#[derive(Debug)]
pub struct SegmentWriter {
    file: std::fs::File,
    path: PathBuf,
    len: u64,
    first_seq: u64,
    next_seq: u64,
}

impl SegmentWriter {
    /// Creates the segment at `path` (truncating any previous file) and
    /// durably writes its header. `first_seq` is the sequence number
    /// the first appended batch must carry.
    pub fn create(path: &Path, first_seq: u64) -> Result<SegmentWriter, WalError> {
        let mut image = Vec::with_capacity(32);
        image.extend_from_slice(MAGIC_WAL);
        let mut header = Vec::with_capacity(10);
        put_varint(&mut header, first_seq);
        image.extend_from_slice(&(header.len() as u32).to_le_bytes());
        image.extend_from_slice(&header);
        image.extend_from_slice(&crc64(&header).to_le_bytes());
        let mut file = std::fs::File::create(path)?;
        file.write_all(&image)?;
        file.sync_all()?;
        Ok(SegmentWriter {
            file,
            path: path.to_path_buf(),
            len: image.len() as u64,
            first_seq,
            next_seq: first_seq,
        })
    }

    /// Reopens an unsealed segment for appending, truncating away a
    /// torn tail first. `load` must come from reading this same file.
    pub fn resume(path: &Path, load: &SegmentLoad) -> Result<SegmentWriter, WalError> {
        if load.sealed {
            return Err(WalError::Corrupt("cannot resume a sealed segment"));
        }
        let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
        if load.torn_bytes > 0 {
            // Repair is idempotent: truncating to the valid prefix and
            // syncing leaves the same clean unsealed segment no matter
            // how many times a crashing recovery retries it.
            file.set_len(load.valid_len)?;
            file.sync_all()?;
        }
        io::Seek::seek(&mut file, io::SeekFrom::Start(load.valid_len))?;
        Ok(SegmentWriter {
            file,
            path: path.to_path_buf(),
            len: load.valid_len,
            first_seq: load.first_seq,
            next_seq: load.first_seq + load.batches.len() as u64,
        })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes appended so far (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether nothing has been appended (a fresh header-only segment).
    pub fn is_empty(&self) -> bool {
        self.next_seq == self.first_seq
    }

    /// The sequence number the next appended batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one record batch. The bytes reach the file (and the
    /// kernel), but not necessarily the platter — call
    /// [`sync`](Self::sync) to make the batch durable. Returns the
    /// batch's sequence number.
    pub fn append_batch(&mut self, records: &[PositionReport]) -> Result<u64, WalError> {
        if pol_chaos::fire("wal.append.write") {
            return Err(WalError::Io(chaos_io("wal append write")));
        }
        let seq = self.next_seq;
        let payload = encode_batch_payload(seq, records);
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc64(&payload).to_le_bytes());
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Makes every appended batch durable (fsync).
    pub fn sync(&mut self) -> Result<(), WalError> {
        if pol_chaos::fire("wal.append.sync") {
            return Err(WalError::Io(chaos_io("wal append sync")));
        }
        self.file.sync_all()?;
        Ok(())
    }

    /// Seals the segment: appends the footer (sentinel, total length,
    /// seal magic) and fsyncs. A sealed segment is immutable and is
    /// read with the same zero-tolerance discipline as a snapshot.
    pub fn seal(mut self) -> Result<(), WalError> {
        if pol_chaos::fire("wal.seal") {
            return Err(WalError::Io(chaos_io("wal seal")));
        }
        let total = self.len + 20;
        let mut footer = Vec::with_capacity(20);
        footer.extend_from_slice(&SEAL_SENTINEL.to_le_bytes());
        footer.extend_from_slice(&total.to_le_bytes());
        footer.extend_from_slice(FOOTER_MAGIC);
        self.file.write_all(&footer)?;
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(mmsi: u32, ts: i64) -> PositionReport {
        PositionReport {
            mmsi: Mmsi(mmsi),
            timestamp: ts,
            pos: LatLon::new(51.0 + (ts % 7) as f64 * 0.01, 1.0 + (ts % 11) as f64 * 0.01).unwrap(),
            sog_knots: (ts % 3 != 0).then_some(12.5),
            cog_deg: (ts % 4 != 0).then_some(90.0),
            heading_deg: (ts % 5 != 0).then_some(88.0),
            nav_status: NavStatus::from_raw((ts % 9) as u8),
        }
    }

    fn batch(n: usize, salt: i64) -> Vec<PositionReport> {
        (0..n)
            .map(|i| report(200_000_001 + (i % 5) as u32, salt * 1_000 + i as i64))
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pol-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn record_round_trip_all_flag_shapes() {
        for ts in 0..60 {
            let r = report(200_000_001, ts - 30);
            let mut buf = Vec::new();
            encode_record(&r, &mut buf);
            let mut s = &buf[..];
            assert_eq!(decode_record(&mut s).unwrap(), r);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn batch_payload_round_trip() {
        let records = batch(100, 3);
        let payload = encode_batch_payload(7, &records);
        let (seq, back) = decode_batch_payload(&payload).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(back, records);
    }

    #[test]
    fn hostile_record_count_rejected_before_allocating() {
        let mut payload = Vec::new();
        put_varint(&mut payload, 0);
        put_varint(&mut payload, 1 << 60);
        payload.extend_from_slice(&[0u8; 64]);
        match decode_batch_payload(&payload) {
            Err(WireError(msg)) => assert!(msg.contains("count"), "got: {msg}"),
            other => panic!("expected count guard, got {other:?}"),
        }
    }

    #[test]
    fn write_seal_read_round_trip() {
        let path = tmp("sealed.polwal");
        let mut w = SegmentWriter::create(&path, 5).unwrap();
        assert!(w.is_empty());
        let b0 = batch(40, 0);
        let b1 = batch(25, 1);
        assert_eq!(w.append_batch(&b0).unwrap(), 5);
        assert_eq!(w.append_batch(&b1).unwrap(), 6);
        assert!(!w.is_empty());
        w.sync().unwrap();
        w.seal().unwrap();

        let load = load_segment(&path).unwrap();
        assert!(load.sealed);
        assert_eq!(load.torn_bytes, 0);
        assert_eq!(load.first_seq, 5);
        assert_eq!(load.batches.len(), 2);
        assert_eq!(load.batches[0].records, b0);
        assert_eq!(load.batches[1].records, b1);
        assert!(read_sealed(&std::fs::read(&path).unwrap()).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsealed_segment_serves_complete_batches() {
        let path = tmp("unsealed.polwal");
        let mut w = SegmentWriter::create(&path, 0).unwrap();
        w.append_batch(&batch(10, 0)).unwrap();
        w.append_batch(&batch(10, 1)).unwrap();
        w.sync().unwrap();
        drop(w); // killed between batches: no seal

        let bytes = std::fs::read(&path).unwrap();
        let load = read_segment(&bytes).unwrap();
        assert!(!load.sealed);
        assert_eq!(load.torn_bytes, 0);
        assert_eq!(load.batches.len(), 2);
        assert_eq!(load.valid_len, bytes.len() as u64);
        assert!(matches!(read_sealed(&bytes), Err(WalError::Unsealed)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_discarded_at_every_cut() {
        // Build a 3-batch unsealed image, then truncate at every offset
        // past the second batch: the first two batches always survive,
        // the torn third is always discarded, and valid_len always
        // points at the end of batch 2.
        let path = tmp("torn.polwal");
        let mut w = SegmentWriter::create(&path, 0).unwrap();
        w.append_batch(&batch(8, 0)).unwrap();
        w.append_batch(&batch(8, 1)).unwrap();
        let two_batches = w.len();
        w.append_batch(&batch(8, 2)).unwrap();
        w.sync().unwrap();
        drop(w);
        let bytes = std::fs::read(&path).unwrap();

        for cut in (two_batches as usize + 1)..bytes.len() {
            let load = read_segment(&bytes[..cut])
                .unwrap_or_else(|e| panic!("cut at {cut}: torn tail must be tolerated, got {e}"));
            assert_eq!(load.batches.len(), 2, "cut at {cut}");
            assert_eq!(load.valid_len, two_batches, "cut at {cut}");
            assert_eq!(load.torn_bytes as usize, cut - two_batches as usize);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_payload_with_full_length_is_discarded() {
        // All frame bytes present but the payload pages never hit the
        // disk (zeroed): CRC fails at EOF — torn tail, not corruption.
        let path = tmp("torn-payload.polwal");
        let mut w = SegmentWriter::create(&path, 0).unwrap();
        w.append_batch(&batch(8, 0)).unwrap();
        let one = w.len() as usize;
        w.append_batch(&batch(8, 1)).unwrap();
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let end = bytes.len() - 8;
        for b in &mut bytes[one + 4..end] {
            *b = 0;
        }
        let load = read_segment(&bytes).unwrap();
        assert_eq!(load.batches.len(), 1);
        assert_eq!(load.valid_len as usize, one);
        assert!(load.torn_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn midfile_corruption_is_a_typed_error_not_a_tail() {
        let path = tmp("midfile.polwal");
        let mut w = SegmentWriter::create(&path, 0).unwrap();
        let header = w.len() as usize;
        w.append_batch(&batch(8, 0)).unwrap();
        let one = w.len() as usize;
        w.append_batch(&batch(8, 1)).unwrap();
        w.sync().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of batch 0 — batch 1 follows completely,
        // so this cannot be a torn write.
        bytes[header + 4 + 3] ^= 0x40;
        match read_segment(&bytes) {
            Err(WalError::Checksum { section: "batch" }) => {}
            other => panic!("expected batch checksum error, got {other:?}"),
        }
        // Same flip on the *final* batch is a tolerated torn tail.
        let mut bytes2 = std::fs::read(&path).unwrap();
        bytes2[one + 4 + 3] ^= 0x40;
        let load = read_segment(&bytes2).unwrap();
        assert_eq!(load.batches.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sealed_segment_rejects_trailing_bytes_and_bad_seal() {
        let path = tmp("sealcheck.polwal");
        let mut w = SegmentWriter::create(&path, 0).unwrap();
        w.append_batch(&batch(8, 0)).unwrap();
        w.seal().unwrap();
        let bytes = std::fs::read(&path).unwrap();

        let mut extended = bytes.clone();
        extended.push(0);
        // Extension breaks the recorded length, surfacing as Unsealed.
        assert!(matches!(read_segment(&extended), Err(WalError::Unsealed)));

        let mut badmagic = bytes.clone();
        let n = badmagic.len();
        badmagic[n - 1] ^= 0xFF;
        assert!(matches!(read_segment(&badmagic), Err(WalError::Unsealed)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sequence_gap_is_corruption() {
        // Forge two valid frames whose seqs are not contiguous.
        let mut image = Vec::new();
        image.extend_from_slice(MAGIC_WAL);
        let mut header = Vec::new();
        put_varint(&mut header, 0);
        image.extend_from_slice(&(header.len() as u32).to_le_bytes());
        image.extend_from_slice(&header);
        image.extend_from_slice(&crc64(&header).to_le_bytes());
        for seq in [0u64, 2] {
            let payload = encode_batch_payload(seq, &batch(3, seq as i64));
            image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            image.extend_from_slice(&payload);
            image.extend_from_slice(&crc64(&payload).to_le_bytes());
        }
        match read_segment(&image) {
            Err(WalError::Corrupt(msg)) => assert!(msg.contains("sequence")),
            other => panic!("expected sequence-gap corruption, got {other:?}"),
        }
    }

    #[test]
    fn resume_repairs_a_torn_tail_idempotently() {
        let path = tmp("resume.polwal");
        let mut w = SegmentWriter::create(&path, 0).unwrap();
        let b0 = batch(8, 0);
        w.append_batch(&b0).unwrap();
        w.append_batch(&batch(8, 1)).unwrap();
        w.sync().unwrap();
        drop(w);
        // Tear the second batch.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);

        let load = load_segment(&path).unwrap();
        assert_eq!(load.batches.len(), 1);
        assert!(load.torn_bytes > 0);
        let mut w = SegmentWriter::resume(&path, &load).unwrap();
        assert_eq!(w.next_seq(), 1);
        let b1 = batch(5, 9);
        w.append_batch(&b1).unwrap();
        w.sync().unwrap();
        w.seal().unwrap();

        let reloaded = load_segment(&path).unwrap();
        assert!(reloaded.sealed);
        assert_eq!(reloaded.batches.len(), 2);
        assert_eq!(reloaded.batches[0].records, b0);
        assert_eq!(reloaded.batches[1].records, b1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_and_truncated_headers_are_typed() {
        assert!(matches!(read_segment(&[]), Err(WalError::BadHeader)));
        assert!(matches!(
            read_segment(b"not a wal"),
            Err(WalError::BadHeader)
        ));
        assert!(matches!(
            read_segment(&MAGIC_WAL[..]),
            Err(WalError::BadHeader)
        ));
        let mut partial = MAGIC_WAL.to_vec();
        partial.extend_from_slice(&[3, 0, 0, 0, 1]);
        assert!(matches!(read_segment(&partial), Err(WalError::BadHeader)));
    }

    #[test]
    fn empty_unsealed_segment_is_valid_and_empty() {
        let path = tmp("fresh.polwal");
        let w = SegmentWriter::create(&path, 42).unwrap();
        drop(w);
        let load = load_segment(&path).unwrap();
        assert_eq!(load.first_seq, 42);
        assert!(load.batches.is_empty());
        assert!(!load.sealed);
        assert_eq!(load.torn_bytes, 0);
        std::fs::remove_file(&path).ok();
    }
}
