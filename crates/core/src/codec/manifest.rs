//! POLMAN1 — the delta-chain manifest tying a base snapshot to its
//! incremental deltas.
//!
//! Streaming ingestion ([`pol-stream`]) emits periodic delta snapshots:
//! small POLINV3 files summarising only the trips finalized since the
//! previous emission. A manifest names the base snapshot plus every
//! delta in generation order, and a serving process loads the *chain* —
//! base merged with each delta — as one inventory.
//!
//! ## On-disk layout
//!
//! ```text
//! magic    b"POLMAN1\0"                               8 bytes
//! body     entry-count varint, then per entry:
//!            generation varint, file-length varint,
//!            u64 LE CRC-64/XZ of the whole file,
//!            name-length varint + relative file name
//! crc      u64 LE CRC-64/XZ of the body bytes         8 bytes
//! footer   u64 LE total file length, b"POLSEAL\0"     16 bytes
//! ```
//!
//! Entry 0 is the base (generation 0); subsequent entries are deltas
//! with strictly ascending generations. Names are plain file names
//! resolved against the manifest's own directory — path separators are
//! rejected so a hostile manifest cannot reach outside it.
//!
//! ## Crash safety
//!
//! The manifest is the *commit record* of the chain. Writers persist the
//! new delta file first (via the crash-safe [`save_bytes`](super::save_bytes)
//! discipline, which also hosts the `codec.save.*` chaos failpoints) and
//! only then rewrite the manifest. A crash between the two leaves the
//! previous manifest naming only complete, verified files; a crash during
//! the manifest rewrite leaves the old manifest (atomic rename). Because
//! every entry records the referenced file's exact length and CRC-64/XZ,
//! a manifest can never *silently* bless a torn or stale file: the chain
//! loader re-hashes every file before decoding a byte of it.

use super::{columnar, save_bytes, sniff_format, CodecError, SnapshotFormat, FOOTER_MAGIC};
use crate::inventory::Inventory;
use pol_sketch::crc64::crc64;
use pol_sketch::wire::{get_varint, put_varint, WireError};
use std::io::{self, Read};
use std::path::Path;

/// File magic of the delta-chain manifest.
pub const MAGIC_MANIFEST: &[u8; 8] = b"POLMAN1\0";

/// The smallest possible serialized entry: one-byte generation, one-byte
/// length, 8-byte CRC, one-byte name length, one-byte name. Bounds the
/// entry count a hostile manifest can claim.
const MIN_MANIFEST_ENTRY_BYTES: usize = 12;

/// Longest accepted entry name — manifests name sibling files, not
/// arbitrary paths.
const MAX_NAME_BYTES: usize = 255;

/// One link of a delta chain: a snapshot file the manifest vouches for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// 0 for the base snapshot, then strictly ascending per delta.
    pub generation: u64,
    /// Exact byte length of the referenced file.
    pub file_len: u64,
    /// CRC-64/XZ over the referenced file's complete bytes.
    pub crc: u64,
    /// Plain file name, resolved against the manifest's directory.
    pub name: String,
}

/// A parsed delta-chain manifest: the base entry followed by deltas in
/// strictly ascending generation order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Chain entries; index 0 is the base (generation 0).
    pub entries: Vec<ManifestEntry>,
}

/// What a chain load found: the merged inventory's lineage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainInfo {
    /// Generation of the newest delta merged (0 = base only).
    pub generation: u64,
    /// Files in the chain, base included.
    pub chain_len: u64,
}

fn wire(msg: &'static str) -> CodecError {
    CodecError::Wire(WireError(msg))
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_NAME_BYTES
        && !name.contains('/')
        && !name.contains('\\')
        && name != "."
        && name != ".."
}

/// Serializes a manifest to its complete sealed file image.
/// Deterministic: equal manifests always produce identical bytes.
pub fn to_bytes(man: &Manifest) -> Vec<u8> {
    let mut body = Vec::with_capacity(16 + man.entries.len() * 32);
    put_varint(&mut body, man.entries.len() as u64);
    for e in &man.entries {
        put_varint(&mut body, e.generation);
        put_varint(&mut body, e.file_len);
        body.extend_from_slice(&e.crc.to_le_bytes());
        put_varint(&mut body, e.name.len() as u64);
        body.extend_from_slice(e.name.as_bytes());
    }
    let mut out = Vec::with_capacity(MAGIC_MANIFEST.len() + body.len() + 24);
    out.extend_from_slice(MAGIC_MANIFEST);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc64(&body).to_le_bytes());
    let file_len = out.len() as u64 + 16; // footer included
    out.extend_from_slice(&file_len.to_le_bytes());
    out.extend_from_slice(FOOTER_MAGIC);
    out
}

/// Parses and fully validates a manifest file image: magic, footer
/// seal, body CRC, entry-count allocation bound, base generation 0,
/// strictly ascending delta generations, and sibling-only names.
pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, CodecError> {
    if bytes.len() < MAGIC_MANIFEST.len() || &bytes[..MAGIC_MANIFEST.len()] != MAGIC_MANIFEST {
        return Err(CodecError::BadHeader);
    }
    // Footer seal first, as everywhere else: prove the file *ends*
    // correctly before trusting anything in the middle.
    if bytes.len() < MAGIC_MANIFEST.len() + 24 {
        return Err(CodecError::Unsealed);
    }
    let seal_at = bytes.len() - FOOTER_MAGIC.len();
    if &bytes[seal_at..] != FOOTER_MAGIC {
        return Err(CodecError::Unsealed);
    }
    let len_at = seal_at - 8;
    let recorded = bytes
        .get(len_at..seal_at)
        .and_then(|b| Some(u64::from_le_bytes(b.try_into().ok()?)))
        .ok_or(CodecError::Unsealed)?;
    if recorded != bytes.len() as u64 {
        return Err(CodecError::Unsealed);
    }
    let crc_at = len_at - 8;
    let body = &bytes[MAGIC_MANIFEST.len()..crc_at];
    let body_crc = bytes
        .get(crc_at..len_at)
        .and_then(|b| Some(u64::from_le_bytes(b.try_into().ok()?)))
        .ok_or(CodecError::Unsealed)?;
    if crc64(body) != body_crc {
        return Err(CodecError::Checksum {
            section: "manifest",
        });
    }

    let mut input = body;
    let count = get_varint(&mut input)? as usize;
    if count == 0 {
        return Err(wire("manifest names no base"));
    }
    // Allocation guard: a count claiming more entries than the body
    // could physically hold is hostile.
    if count > body.len() / MIN_MANIFEST_ENTRY_BYTES + 1 {
        return Err(wire("manifest entry count exceeds buffer"));
    }
    let mut entries = Vec::with_capacity(count);
    let mut prev_gen: Option<u64> = None;
    for i in 0..count {
        let generation = get_varint(&mut input)?;
        match (i, prev_gen) {
            (0, _) if generation != 0 => return Err(wire("base generation must be 0")),
            (_, Some(p)) if generation <= p => return Err(wire("delta generations not ascending")),
            _ => {}
        }
        prev_gen = Some(generation);
        let file_len = get_varint(&mut input)?;
        let crc = input
            .get(..8)
            .and_then(|b| Some(u64::from_le_bytes(b.try_into().ok()?)))
            .ok_or(wire("manifest entry truncated"))?;
        input = &input[8..];
        let name_len = get_varint(&mut input)? as usize;
        if name_len > MAX_NAME_BYTES {
            return Err(wire("manifest name too long"));
        }
        let name_bytes = input
            .get(..name_len)
            .ok_or(wire("manifest name truncated"))?;
        input = &input[name_len..];
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| wire("manifest name not utf-8"))?
            .to_string();
        if !valid_name(&name) {
            return Err(wire("manifest name escapes directory"));
        }
        entries.push(ManifestEntry {
            generation,
            file_len,
            crc,
            name,
        });
    }
    if !input.is_empty() {
        return Err(wire("trailing manifest bytes"));
    }
    Ok(Manifest { entries })
}

/// Crash-safely writes a manifest (temp sibling + fsync + atomic
/// rename, same discipline and chaos failpoints as every snapshot
/// save).
pub fn save(man: &Manifest, path: &Path) -> io::Result<()> {
    save_bytes(&to_bytes(man), path)
}

/// Loads and validates a manifest file.
pub fn load(path: &Path) -> Result<Manifest, CodecError> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

fn read_entry_bytes(dir: &Path, e: &ManifestEntry) -> Result<Vec<u8>, CodecError> {
    let mut buf = Vec::new();
    std::fs::File::open(dir.join(&e.name))?.read_to_end(&mut buf)?;
    // Length and CRC before decoding a byte: a manifest can never bless
    // a torn, stale, or swapped file.
    if buf.len() as u64 != e.file_len {
        return Err(wire("chain file length mismatch"));
    }
    if crc64(&buf) != e.crc {
        return Err(CodecError::Checksum {
            section: "chain-file",
        });
    }
    Ok(buf)
}

fn decode_snapshot(bytes: &[u8]) -> Result<Inventory, CodecError> {
    match sniff_format(bytes) {
        Some(SnapshotFormat::V3) => columnar::from_bytes(bytes),
        // Unknown magic goes through the v2 decoder so the error is the
        // same typed BadHeader a direct load would produce.
        _ => super::from_bytes(bytes),
    }
}

/// Loads a full delta chain: reads the manifest, verifies every named
/// file's length + CRC, decodes the base, and merges each delta in
/// ascending generation order. That canonical order is the identity
/// anchor: the merged bytes depend only on the set of
/// `(generation, delta)` pairs, never on arrival or iteration order —
/// the same canonicalization `pol_stream`'s `merge_chain` applies, and
/// its permutation proptest pins.
pub fn load_chain(path: &Path) -> Result<(Inventory, ChainInfo), CodecError> {
    let man = load(path)?;
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut chain = man.entries.iter();
    let base_entry = chain.next().ok_or(wire("manifest names no base"))?;
    let mut inv = decode_snapshot(&read_entry_bytes(dir, base_entry)?)?;
    let mut info = ChainInfo {
        generation: base_entry.generation,
        chain_len: 1,
    };
    for e in chain {
        let delta = decode_snapshot(&read_entry_bytes(dir, e)?)?;
        if delta.resolution() != inv.resolution() {
            return Err(wire("chain resolution mismatch"));
        }
        inv.merge(&delta);
        info.generation = e.generation;
        info.chain_len += 1;
    }
    Ok((inv, info))
}

/// What [`verify_chain`] found for one chain file.
#[derive(Clone, Debug)]
pub struct ChainEntryReport {
    /// The entry's file name.
    pub name: String,
    /// The entry's generation.
    pub generation: u64,
    /// Verified byte length of the file.
    pub file_len: u64,
    /// Verified CRC-64/XZ of the file.
    pub crc: u64,
    /// Group-identifier entries decoded from the file.
    pub entries: usize,
}

/// What [`verify_chain`] found in a sound chain.
#[derive(Clone, Debug)]
pub struct ChainReport {
    /// Newest generation in the chain.
    pub generation: u64,
    /// Per-file findings, base first.
    pub files: Vec<ChainEntryReport>,
    /// Entries in the merged inventory.
    pub merged_entries: usize,
}

/// Audits a delta chain end to end: manifest validation, every file's
/// length + CRC + full decode, and the merge itself. Any failure is the
/// same typed [`CodecError`] a load would produce.
pub fn verify_chain(path: &Path) -> Result<ChainReport, CodecError> {
    let man = load(path)?;
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut files = Vec::with_capacity(man.entries.len());
    for e in &man.entries {
        let bytes = read_entry_bytes(dir, e)?;
        let inv = decode_snapshot(&bytes)?;
        files.push(ChainEntryReport {
            name: e.name.clone(),
            generation: e.generation,
            file_len: e.file_len,
            crc: e.crc,
            entries: inv.len(),
        });
    }
    let (merged, info) = load_chain(path)?;
    Ok(ChainReport {
        generation: info.generation,
        files,
        merged_entries: merged.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{CellStats, GroupKey};
    use crate::records::{CellPoint, TripPoint};
    use pol_ais::types::{MarketSegment, Mmsi};
    use pol_geo::LatLon;
    use pol_hexgrid::{cell_at, Resolution};
    use pol_sketch::hash::FxHashMap;

    fn sample_inventory(n: usize, salt: u64) -> Inventory {
        let res = Resolution::new(6).unwrap();
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        for i in 0..n {
            let j = i as u64 + salt * 1000;
            let pos = LatLon::new(-40.0 + (j % 80) as f64, -100.0 + (j % 200) as f64).unwrap();
            let cell = cell_at(pos, res);
            let cp = CellPoint {
                point: TripPoint {
                    mmsi: Mmsi(100 + (j % 9) as u32),
                    timestamp: j as i64,
                    pos,
                    sog_knots: Some(8.0),
                    cog_deg: Some(90.0),
                    heading_deg: None,
                    segment: MarketSegment::from_id((j % 6) as u8).unwrap(),
                    trip_id: j % 12,
                    origin: (j % 4) as u16,
                    dest: (j % 5) as u16,
                    eto_secs: 60,
                    ata_secs: 60,
                },
                cell,
                next_cell: None,
            };
            for key in [
                GroupKey::Cell(cell),
                GroupKey::CellType(cell, cp.point.segment),
            ] {
                entries
                    .entry(key)
                    .or_insert_with(|| CellStats::new(0.02, 8))
                    .observe(&cp);
            }
        }
        Inventory::from_entries(res, entries, n as u64)
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pol-manifest-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry_for(dir: &Path, generation: u64, name: &str, inv: &Inventory) -> ManifestEntry {
        let bytes = columnar::to_bytes(inv);
        save_bytes(&bytes, &dir.join(name)).unwrap();
        ManifestEntry {
            generation,
            file_len: bytes.len() as u64,
            crc: crc64(&bytes),
            name: name.to_string(),
        }
    }

    #[test]
    fn manifest_round_trips() {
        let man = Manifest {
            entries: vec![
                ManifestEntry {
                    generation: 0,
                    file_len: 123,
                    crc: 7,
                    name: "base.pol3".into(),
                },
                ManifestEntry {
                    generation: 3,
                    file_len: 5,
                    crc: 9,
                    name: "delta-3.pol3".into(),
                },
            ],
        };
        assert_eq!(from_bytes(&to_bytes(&man)).unwrap(), man);
        // Deterministic bytes.
        assert_eq!(to_bytes(&man), to_bytes(&man));
    }

    #[test]
    fn rejects_structural_corruption() {
        assert!(matches!(
            from_bytes(b"not a manifest at all"),
            Err(CodecError::BadHeader)
        ));
        let man = Manifest {
            entries: vec![ManifestEntry {
                generation: 0,
                file_len: 1,
                crc: 2,
                name: "base.pol3".into(),
            }],
        };
        let bytes = to_bytes(&man);
        for cut in 0..bytes.len() - 1 {
            assert!(from_bytes(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1;
            assert!(
                from_bytes(&corrupt).is_err(),
                "bit flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn rejects_hostile_shapes() {
        // Escaping names.
        for name in ["../evil", "a/b", "", "..", "x\\y"] {
            let man = Manifest {
                entries: vec![ManifestEntry {
                    generation: 0,
                    file_len: 0,
                    crc: 0,
                    name: name.into(),
                }],
            };
            assert!(
                from_bytes(&to_bytes(&man)).is_err(),
                "name {name:?} accepted"
            );
        }
        // Non-zero base generation.
        let man = Manifest {
            entries: vec![ManifestEntry {
                generation: 1,
                file_len: 0,
                crc: 0,
                name: "b".into(),
            }],
        };
        assert!(from_bytes(&to_bytes(&man)).is_err());
        // Non-ascending delta generations.
        let man = Manifest {
            entries: vec![
                ManifestEntry {
                    generation: 0,
                    file_len: 0,
                    crc: 0,
                    name: "b".into(),
                },
                ManifestEntry {
                    generation: 2,
                    file_len: 0,
                    crc: 0,
                    name: "d2".into(),
                },
                ManifestEntry {
                    generation: 2,
                    file_len: 0,
                    crc: 0,
                    name: "d2b".into(),
                },
            ],
        };
        assert!(from_bytes(&to_bytes(&man)).is_err());
    }

    #[test]
    fn chain_load_merges_in_generation_order() {
        let dir = temp_dir("chain");
        let base = sample_inventory(60, 0);
        let d1 = sample_inventory(40, 1);
        let d2 = sample_inventory(30, 2);
        let man = Manifest {
            entries: vec![
                entry_for(&dir, 0, "base.pol3", &base),
                entry_for(&dir, 1, "delta-1.pol3", &d1),
                entry_for(&dir, 2, "delta-2.pol3", &d2),
            ],
        };
        let man_path = dir.join("chain.polman");
        save(&man, &man_path).unwrap();

        let (merged, info) = load_chain(&man_path).unwrap();
        assert_eq!(
            info,
            ChainInfo {
                generation: 2,
                chain_len: 3
            }
        );
        // `sample_inventory` is deterministic: rebuild the expected merge.
        let mut want = sample_inventory(60, 0);
        want.merge(&d1);
        want.merge(&d2);
        assert_eq!(columnar::to_bytes(&merged), columnar::to_bytes(&want));

        let report = verify_chain(&man_path).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.files.len(), 3);
        assert_eq!(report.merged_entries, merged.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chain_rejects_tampered_or_missing_files() {
        let dir = temp_dir("tamper");
        let base = sample_inventory(50, 0);
        let d1 = sample_inventory(20, 1);
        let man = Manifest {
            entries: vec![
                entry_for(&dir, 0, "base.pol3", &base),
                entry_for(&dir, 1, "delta-1.pol3", &d1),
            ],
        };
        let man_path = dir.join("chain.polman");
        save(&man, &man_path).unwrap();
        assert!(load_chain(&man_path).is_ok());

        // Swap the delta for a different (valid!) snapshot: the CRC in
        // the manifest catches it even though the file itself decodes.
        columnar::save(&sample_inventory(21, 9), &dir.join("delta-1.pol3")).unwrap();
        assert!(matches!(
            load_chain(&man_path),
            Err(CodecError::Checksum { .. }) | Err(CodecError::Wire(_))
        ));

        // Missing file.
        std::fs::remove_file(dir.join("delta-1.pol3")).unwrap();
        assert!(matches!(load_chain(&man_path), Err(CodecError::Io(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chain_base_may_be_v2() {
        let dir = temp_dir("v2base");
        let base = sample_inventory(30, 0);
        let bytes = super::super::to_bytes(&base);
        save_bytes(&bytes, &dir.join("base.pol")).unwrap();
        let man = Manifest {
            entries: vec![ManifestEntry {
                generation: 0,
                file_len: bytes.len() as u64,
                crc: crc64(&bytes),
                name: "base.pol".into(),
            }],
        };
        let man_path = dir.join("chain.polman");
        save(&man, &man_path).unwrap();
        let (merged, info) = load_chain(&man_path).unwrap();
        assert_eq!(
            info,
            ChainInfo {
                generation: 0,
                chain_len: 1
            }
        );
        assert_eq!(columnar::to_bytes(&merged), columnar::to_bytes(&base));
        std::fs::remove_dir_all(&dir).ok();
    }
}
