//! # pol-baselines — the clustering family the paper positions against
//!
//! §2 of the paper surveys the dominant approach to AIS pattern mining:
//! density-based clustering (DBSCAN/OPTICS — TREAD, Yan et al.), k-means
//! with map/reduce partitioning (Zissis et al. [32]), and cluster-hull
//! route models. The authors' own prior work [20] highlights DBSCAN's
//! sensitivity on density-skewed global AIS data — the motivation for the
//! grid-based inventory. To let the benches compare the two families on
//! identical workloads, this crate implements:
//!
//! * [`dbscan`] — DBSCAN with a uniform-grid neighbour index (the standard
//!   ε-grid acceleration),
//! * [`optics`] — OPTICS reachability ordering with flat-cluster
//!   extraction at any ε′ ≤ ε (the way-point discovery tool of [29]/[18]),
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding,
//! * [`routes`] — cluster-based route extraction: cluster the points of a
//!   port-pair's voyages, order cluster centroids along the voyage
//!   direction, model the route as the centroid polyline (the TREAD /
//!   convex-hull lineage, simplified).

#![deny(missing_docs)]

pub mod dbscan;
pub mod kmeans;
pub mod optics;
pub mod routes;

pub use dbscan::{dbscan, DbscanParams, Label};
pub use kmeans::{kmeans, KMeansResult};
pub use optics::{extract_clusters, optics, OpticsParams, OrderedPoint};
pub use routes::{extract_route, RouteModel};
