//! DBSCAN (Ester et al. 1996) with a uniform ε-grid neighbour index.
//!
//! Points live on the equal-area projection plane (km), so ε is a true
//! distance. The grid index buckets points into ε×ε squares; a
//! neighbourhood query scans the 3×3 surrounding buckets — O(1) for
//! bounded density, which is what makes the baseline competitive enough
//! for a fair comparison.

use pol_geo::project::{to_xy, WorldXY};
use pol_geo::LatLon;
use pol_sketch::hash::FxHashMap;

/// DBSCAN parameters.
#[derive(Clone, Copy, Debug)]
pub struct DbscanParams {
    /// Neighbourhood radius in km (plane distance).
    pub eps_km: f64,
    /// Minimum neighbours (inclusive of the point itself) for a core point.
    pub min_pts: usize,
}

/// Cluster assignment of one input point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Label {
    /// Sparse-region point.
    Noise,
    /// Member of cluster `id`.
    Cluster(u32),
}

/// Runs DBSCAN over geographic points; returns one label per input point
/// (input order preserved) plus the number of clusters found.
pub fn dbscan(points: &[LatLon], params: DbscanParams) -> (Vec<Label>, u32) {
    assert!(params.eps_km > 0.0, "eps must be positive");
    assert!(params.min_pts >= 1, "min_pts must be at least 1");
    let xy: Vec<WorldXY> = points.iter().map(|p| to_xy(*p)).collect();
    let index = GridIndex::build(&xy, params.eps_km);

    const UNVISITED: u32 = u32::MAX;
    const NOISE: u32 = u32::MAX - 1;
    let mut labels = vec![UNVISITED; xy.len()];
    let mut cluster = 0u32;
    let mut stack = Vec::new();
    let mut neighbours = Vec::new();

    for i in 0..xy.len() {
        if labels[i] != UNVISITED {
            continue;
        }
        index.query(&xy, i, params.eps_km, &mut neighbours);
        if neighbours.len() < params.min_pts {
            labels[i] = NOISE;
            continue;
        }
        // New cluster seeded at core point i.
        labels[i] = cluster;
        stack.clear();
        stack.extend(neighbours.iter().copied());
        while let Some(j) = stack.pop() {
            if labels[j] == NOISE {
                labels[j] = cluster; // border point adopted
            }
            if labels[j] != UNVISITED {
                continue;
            }
            labels[j] = cluster;
            index.query(&xy, j, params.eps_km, &mut neighbours);
            if neighbours.len() >= params.min_pts {
                stack.extend(neighbours.iter().copied());
            }
        }
        cluster += 1;
    }

    let labels = labels
        .into_iter()
        .map(|l| {
            if l == NOISE || l == UNVISITED {
                Label::Noise
            } else {
                Label::Cluster(l)
            }
        })
        .collect();
    (labels, cluster)
}

/// ε-grid over plane points.
struct GridIndex {
    cell_km: f64,
    buckets: FxHashMap<(i64, i64), Vec<usize>>,
}

impl GridIndex {
    fn build(points: &[WorldXY], cell_km: f64) -> GridIndex {
        let mut buckets: FxHashMap<(i64, i64), Vec<usize>> = FxHashMap::default();
        for (i, p) in points.iter().enumerate() {
            buckets.entry(Self::key(p, cell_km)).or_default().push(i);
        }
        GridIndex { cell_km, buckets }
    }

    #[inline]
    fn key(p: &WorldXY, cell_km: f64) -> (i64, i64) {
        (
            (p.x / cell_km).floor() as i64,
            (p.y / cell_km).floor() as i64,
        )
    }

    /// Collects indices within `eps` of point `i` (including `i`).
    fn query(&self, points: &[WorldXY], i: usize, eps: f64, out: &mut Vec<usize>) {
        out.clear();
        let p = points[i];
        let (kx, ky) = Self::key(&p, self.cell_km);
        let eps2 = eps * eps;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.buckets.get(&(kx + dx, ky + dy)) {
                    for &j in bucket {
                        let q = points[j];
                        let d2 = (q.x - p.x).powi(2) + (q.y - p.y).powi(2);
                        if d2 <= eps2 {
                            out.push(j);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64), n: usize, spread: f64, salt: u64) -> Vec<LatLon> {
        let mut rng = pol_fleetsim::Rng::new(1234 ^ salt);
        (0..n)
            .map(|_| {
                LatLon::new(
                    center.0 + rng.normal() * spread,
                    center.1 + rng.normal() * spread,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn two_blobs_two_clusters() {
        let mut pts = blob((50.0, 0.0), 100, 0.05, 1);
        pts.extend(blob((52.0, 3.0), 100, 0.05, 2));
        let (labels, n) = dbscan(
            &pts,
            DbscanParams {
                eps_km: 20.0,
                min_pts: 5,
            },
        );
        assert_eq!(n, 2);
        // Blob membership is homogeneous.
        let first = labels[0];
        assert!(labels[..100].iter().all(|l| *l == first));
        let second = labels[100];
        assert!(labels[100..].iter().all(|l| *l == second));
        assert_ne!(first, second);
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut pts = blob((50.0, 0.0), 50, 0.02, 3);
        pts.push(LatLon::new(10.0, 100.0).unwrap());
        pts.push(LatLon::new(-40.0, -100.0).unwrap());
        let (labels, n) = dbscan(
            &pts,
            DbscanParams {
                eps_km: 15.0,
                min_pts: 4,
            },
        );
        assert_eq!(n, 1);
        assert_eq!(labels[50], Label::Noise);
        assert_eq!(labels[51], Label::Noise);
    }

    #[test]
    fn all_noise_when_eps_tiny() {
        let pts = blob((50.0, 0.0), 30, 0.5, 4);
        let (labels, n) = dbscan(
            &pts,
            DbscanParams {
                eps_km: 0.001,
                min_pts: 3,
            },
        );
        assert_eq!(n, 0);
        assert!(labels.iter().all(|l| *l == Label::Noise));
    }

    #[test]
    fn single_cluster_when_eps_huge() {
        let pts = blob((50.0, 0.0), 60, 0.3, 5);
        let (labels, n) = dbscan(
            &pts,
            DbscanParams {
                eps_km: 10_000.0,
                min_pts: 3,
            },
        );
        assert_eq!(n, 1);
        assert!(labels.iter().all(|l| *l == Label::Cluster(0)));
    }

    #[test]
    fn empty_input() {
        let (labels, n) = dbscan(
            &[],
            DbscanParams {
                eps_km: 1.0,
                min_pts: 3,
            },
        );
        assert!(labels.is_empty());
        assert_eq!(n, 0);
    }

    #[test]
    fn border_points_adopted_not_noise() {
        // A dense core with a thin bridge point within eps of the core.
        let mut pts = blob((50.0, 0.0), 40, 0.01, 6);
        let edge = LatLon::new(50.05, 0.0).unwrap(); // ~5.5 km north
        pts.push(edge);
        let (labels, _) = dbscan(
            &pts,
            DbscanParams {
                eps_km: 8.0,
                min_pts: 10,
            },
        );
        assert!(
            matches!(labels[40], Label::Cluster(_)),
            "border point must join the cluster"
        );
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_bad_params() {
        let _ = dbscan(
            &[],
            DbscanParams {
                eps_km: 0.0,
                min_pts: 3,
            },
        );
    }

    #[test]
    fn density_skew_sensitivity() {
        // The property the paper's prior work [20] reports: one eps cannot
        // serve both a dense harbour and a sparse ocean lane. With eps
        // tuned for the harbour, the sparse lane fragments into noise.
        let mut pts = blob((51.0, 3.0), 200, 0.01, 7); // dense "harbour"
                                                       // sparse "lane": points every ~20 km
        for i in 0..30 {
            pts.push(LatLon::new(40.0, 10.0 + i as f64 * 0.25).unwrap());
        }
        let (labels, _) = dbscan(
            &pts,
            DbscanParams {
                eps_km: 5.0,
                min_pts: 4,
            },
        );
        let lane_noise = labels[200..].iter().filter(|l| **l == Label::Noise).count();
        assert!(
            lane_noise > 25,
            "sparse lane should fragment at harbour-tuned eps, got {lane_noise} noise"
        );
    }
}
