//! Lloyd's k-means with k-means++ seeding on the equal-area plane —
//! the clustering core of the map/reduce route modelling of Zissis et
//! al. [32], which the paper's methodology supersedes.

use pol_geo::project::{from_xy, to_xy, WorldXY};
use pol_geo::LatLon;
use pol_sketch::hash::mix64;

/// K-means output.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Cluster centroids (geographic).
    pub centroids: Vec<LatLon>,
    /// Per-input-point cluster assignment.
    pub assignment: Vec<usize>,
    /// Sum of squared plane distances to assigned centroids (km²).
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: u32,
}

/// Runs k-means (k-means++ init, Lloyd refinement) until assignment
/// convergence or `max_iters`. Deterministic given `seed`.
///
/// # Panics
/// When `k == 0` or `k > points.len()`.
pub fn kmeans(points: &[LatLon], k: usize, max_iters: u32, seed: u64) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(k <= points.len(), "k exceeds point count");
    let xy: Vec<WorldXY> = points.iter().map(|p| to_xy(*p)).collect();
    let mut centroids = plus_plus_seed(&xy, k, seed);
    let mut assignment = vec![0usize; xy.len()];
    let mut iterations = 0;
    for _ in 0..max_iters.max(1) {
        iterations += 1;
        // Assign.
        let mut changed = false;
        for (i, p) in xy.iter().enumerate() {
            let best = nearest(&centroids, p).0;
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
        for (i, p) in xy.iter().enumerate() {
            let s = &mut sums[assignment[i]];
            s.0 += p.x;
            s.1 += p.y;
            s.2 += 1;
        }
        for (c, s) in centroids.iter_mut().zip(&sums) {
            if s.2 > 0 {
                *c = WorldXY {
                    x: s.0 / s.2 as f64,
                    y: s.1 / s.2 as f64,
                };
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = xy
        .iter()
        .enumerate()
        .map(|(i, p)| dist2(p, &centroids[assignment[i]]))
        .sum();
    KMeansResult {
        centroids: centroids.iter().map(|c| from_xy(*c)).collect(),
        assignment,
        inertia,
        iterations,
    }
}

#[inline]
fn dist2(a: &WorldXY, b: &WorldXY) -> f64 {
    (a.x - b.x).powi(2) + (a.y - b.y).powi(2)
}

fn nearest(centroids: &[WorldXY], p: &WorldXY) -> (usize, f64) {
    let mut best = (0, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// k-means++ seeding (Arthur & Vassilvitskii 2007) with a deterministic
/// splitmix-based sampler.
fn plus_plus_seed(xy: &[WorldXY], k: usize, seed: u64) -> Vec<WorldXY> {
    let mut state = seed;
    let mut rand_f64 = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        (mix64(state) >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut centroids = Vec::with_capacity(k);
    let seed_pt = xy[(rand_f64() * xy.len() as f64) as usize % xy.len()];
    centroids.push(seed_pt);
    let mut d2: Vec<f64> = xy.iter().map(|p| dist2(p, &seed_pt)).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All mass at the chosen centroids; any point will do.
            xy[(rand_f64() * xy.len() as f64) as usize % xy.len()]
        } else {
            let mut target = rand_f64() * total;
            let mut pick = xy.len() - 1;
            for (i, w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            xy[pick]
        };
        centroids.push(next);
        for (p, d) in xy.iter().zip(d2.iter_mut()) {
            *d = d.min(dist2(p, &next));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<LatLon> {
        let mut rng = pol_fleetsim::Rng::new(77);
        let mut pts = Vec::new();
        for _ in 0..100 {
            pts.push(LatLon::new(50.0 + rng.normal() * 0.05, 0.0 + rng.normal() * 0.05).unwrap());
        }
        for _ in 0..100 {
            pts.push(LatLon::new(30.0 + rng.normal() * 0.05, 20.0 + rng.normal() * 0.05).unwrap());
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let r = kmeans(&pts, 2, 50, 9);
        assert_eq!(r.centroids.len(), 2);
        // Each blob maps to a single cluster.
        let a = r.assignment[0];
        assert!(r.assignment[..100].iter().all(|&x| x == a));
        let b = r.assignment[100];
        assert!(r.assignment[100..].iter().all(|&x| x == b));
        assert_ne!(a, b);
        // Centroids land near blob centres.
        let near = |lat: f64, lon: f64| {
            r.centroids
                .iter()
                .any(|c| pol_geo::haversine_km(*c, LatLon::new(lat, lon).unwrap()) < 30.0)
        };
        assert!(near(50.0, 0.0));
        assert!(near(30.0, 20.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, 3, 50, 42);
        let b = kmeans(&pts, 3, 50, 42);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn more_clusters_never_worse_inertia() {
        let pts = two_blobs();
        let i2 = kmeans(&pts, 2, 60, 5).inertia;
        let i8 = kmeans(&pts, 8, 60, 5).inertia;
        assert!(i8 <= i2 * 1.05, "k=8 {i8} vs k=2 {i2}");
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let pts: Vec<LatLon> = (0..5)
            .map(|i| LatLon::new(10.0 + i as f64, 10.0).unwrap())
            .collect();
        let r = kmeans(&pts, 5, 30, 1);
        assert!(r.inertia < 1e-6, "inertia {}", r.inertia);
    }

    #[test]
    #[should_panic(expected = "k exceeds point count")]
    fn rejects_k_too_large() {
        let pts = vec![LatLon::new(0.0, 0.0).unwrap()];
        let _ = kmeans(&pts, 2, 10, 1);
    }

    #[test]
    fn converges_and_reports_iterations() {
        let pts = two_blobs();
        let r = kmeans(&pts, 2, 100, 3);
        assert!(
            r.iterations < 100,
            "should converge early: {}",
            r.iterations
        );
    }
}
