//! Cluster-based route extraction — the TREAD / Zissis-et-al. lineage.
//!
//! Given the positional reports of one port pair's voyages, cluster the
//! points (k-means on the plane), order the cluster centroids by their
//! average along-voyage progress, and model the route as the resulting
//! centroid polyline. The benches compare this model's fidelity and cost
//! against the inventory's per-cell transition graph on identical
//! simulated lanes.

use crate::kmeans::kmeans;
use pol_geo::{haversine_km, LatLon};

/// A route extracted by clustering.
#[derive(Clone, Debug)]
pub struct RouteModel {
    /// Ordered waypoints (cluster centroids, origin side first).
    pub waypoints: Vec<LatLon>,
    /// Polyline length in km.
    pub length_km: f64,
}

impl RouteModel {
    /// Distance from a position to the modelled route (nearest polyline
    /// vertex distance — a conservative upper bound on segment distance).
    pub fn deviation_km(&self, pos: LatLon) -> f64 {
        self.waypoints
            .iter()
            .map(|w| haversine_km(*w, pos))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Extracts a route model from voyage tracks between one port pair.
///
/// `tracks` holds each voyage's time-ordered positions. `k` clusters are
/// placed over all points; each centroid is ordered by the mean normalised
/// progress (fraction of voyage elapsed) of its member points.
///
/// Returns `None` when there are fewer than `k` points in total.
pub fn extract_route(tracks: &[Vec<LatLon>], k: usize, seed: u64) -> Option<RouteModel> {
    let mut points = Vec::new();
    let mut progress = Vec::new();
    for track in tracks {
        let n = track.len();
        if n < 2 {
            continue;
        }
        for (i, p) in track.iter().enumerate() {
            points.push(*p);
            progress.push(i as f64 / (n - 1) as f64);
        }
    }
    if points.len() < k || k == 0 {
        return None;
    }
    let result = kmeans(&points, k, 60, seed);
    // Mean progress per cluster.
    let mut sums = vec![(0.0f64, 0usize); k];
    for (i, &c) in result.assignment.iter().enumerate() {
        sums[c].0 += progress[i];
        sums[c].1 += 1;
    }
    let mut order: Vec<(usize, f64)> = sums
        .iter()
        .enumerate()
        .filter(|(_, s)| s.1 > 0)
        .map(|(i, s)| (i, s.0 / s.1 as f64))
        .collect();
    order.sort_by(|a, b| a.1.total_cmp(&b.1));
    let waypoints: Vec<LatLon> = order.iter().map(|(i, _)| result.centroids[*i]).collect();
    let length_km = waypoints
        .iter()
        .zip(waypoints.iter().skip(1))
        .map(|(&a, &b)| haversine_km(a, b))
        .sum();
    Some(RouteModel {
        waypoints,
        length_km,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_geo::interpolate;

    /// Synthetic voyages along a great circle with cross-track noise.
    fn lane_tracks(n_voyages: usize, points_per: usize) -> (Vec<Vec<LatLon>>, LatLon, LatLon) {
        let a = LatLon::new(36.0, -6.0).unwrap(); // Gibraltar-ish
        let b = LatLon::new(31.4, 32.3).unwrap(); // Port Said-ish
        let mut rng = pol_fleetsim::Rng::new(99);
        let tracks = (0..n_voyages)
            .map(|_| {
                (0..points_per)
                    .map(|i| {
                        let f = i as f64 / (points_per - 1) as f64;
                        let p = interpolate(a, b, f);
                        pol_geo::destination(p, rng.range(0.0, 360.0), rng.f64() * 8.0)
                    })
                    .collect()
            })
            .collect();
        (tracks, a, b)
    }

    #[test]
    fn recovers_the_lane() {
        let (tracks, a, b) = lane_tracks(12, 40);
        let model = extract_route(&tracks, 10, 7).unwrap();
        assert_eq!(model.waypoints.len(), 10);
        // Ends near the endpoints.
        assert!(haversine_km(model.waypoints[0], a) < 300.0);
        assert!(haversine_km(*model.waypoints.last().unwrap(), b) < 300.0);
        // Length close to the direct lane length.
        let direct = haversine_km(a, b);
        assert!(
            (model.length_km - direct).abs() < direct * 0.25,
            "model {} vs direct {direct}",
            model.length_km
        );
        // Points on the lane are near the model.
        let mid = interpolate(a, b, 0.5);
        assert!(model.deviation_km(mid) < 250.0);
        // A point far off the lane is far from the model.
        let off = LatLon::new(50.0, 10.0).unwrap();
        assert!(model.deviation_km(off) > 800.0);
    }

    #[test]
    fn waypoints_ordered_by_progress() {
        let (tracks, a, _) = lane_tracks(8, 30);
        let model = extract_route(&tracks, 8, 3).unwrap();
        // Distance from origin grows along the waypoint order.
        let mut prev = -1.0;
        for w in &model.waypoints {
            let d = haversine_km(a, *w);
            assert!(d > prev - 150.0, "ordering violated: {d} after {prev}");
            prev = prev.max(d);
        }
    }

    #[test]
    fn too_few_points_returns_none() {
        let tracks = vec![vec![LatLon::new(0.0, 0.0).unwrap()]];
        assert!(extract_route(&tracks, 5, 1).is_none());
        assert!(extract_route(&[], 5, 1).is_none());
    }

    #[test]
    fn deterministic() {
        let (tracks, _, _) = lane_tracks(6, 25);
        let a = extract_route(&tracks, 6, 11).unwrap();
        let b = extract_route(&tracks, 6, 11).unwrap();
        let same = a
            .waypoints
            .iter()
            .zip(&b.waypoints)
            .all(|(x, y)| haversine_km(*x, *y) < 1e-9);
        assert!(same);
    }
}
