//! OPTICS (Ankerst et al. 1999) — the other density-based workhorse of the
//! paper's related work (§2 cites it for way-point/stop discovery in route
//! networks). Produces the reachability ordering; clusters are extracted
//! by thresholding reachability at `eps'`, which — unlike DBSCAN — lets
//! one run serve many density levels. The density-skew argument of the
//! paper's prior work applies to the *extraction* step instead of the run.

use pol_geo::project::{to_xy, WorldXY};
use pol_geo::LatLon;
use pol_sketch::hash::FxHashMap;

/// OPTICS parameters.
#[derive(Clone, Copy, Debug)]
pub struct OpticsParams {
    /// Maximum neighbourhood radius examined, km.
    pub max_eps_km: f64,
    /// Minimum neighbours (inclusive) for core-distance definition.
    pub min_pts: usize,
}

/// One entry of the OPTICS ordering.
#[derive(Clone, Copy, Debug)]
pub struct OrderedPoint {
    /// Index into the input slice.
    pub index: usize,
    /// Reachability distance (km); `f64::INFINITY` for ordering starts.
    pub reachability_km: f64,
    /// Core distance (km); `f64::INFINITY` for non-core points.
    pub core_km: f64,
}

/// Runs OPTICS and returns the cluster ordering.
pub fn optics(points: &[LatLon], params: OpticsParams) -> Vec<OrderedPoint> {
    assert!(params.max_eps_km > 0.0, "max_eps must be positive");
    assert!(params.min_pts >= 1, "min_pts must be at least 1");
    let xy: Vec<WorldXY> = points.iter().map(|p| to_xy(*p)).collect();
    let index = GridIndex::build(&xy, params.max_eps_km);

    let n = xy.len();
    let mut processed = vec![false; n];
    let mut reach = vec![f64::INFINITY; n];
    let mut order: Vec<OrderedPoint> = Vec::with_capacity(n);
    let mut neighbours: Vec<(usize, f64)> = Vec::new();

    // Seed list as a simple binary heap keyed on reachability.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut seeds: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let key = |d: f64| (d * 1e6) as u64;

    for start in 0..n {
        if processed[start] {
            continue;
        }
        // Begin a new ordering component.
        let mut current = Some(start);
        seeds.clear();
        while let Some(i) = current {
            if processed[i] {
                current = next_seed(&mut seeds, &processed);
                continue;
            }
            processed[i] = true;
            index.query(&xy, i, params.max_eps_km, &mut neighbours);
            let core = core_distance(&neighbours, params.min_pts);
            order.push(OrderedPoint {
                index: i,
                reachability_km: reach[i],
                core_km: core,
            });
            if core.is_finite() {
                for &(j, d) in &neighbours {
                    if processed[j] {
                        continue;
                    }
                    let new_reach = core.max(d);
                    if new_reach < reach[j] {
                        reach[j] = new_reach;
                        seeds.push(Reverse((key(new_reach), j)));
                    }
                }
            }
            current = next_seed(&mut seeds, &processed);
        }
    }
    order
}

fn next_seed(
    seeds: &mut std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    processed: &[bool],
) -> Option<usize> {
    while let Some(std::cmp::Reverse((_, j))) = seeds.pop() {
        if !processed[j] {
            return Some(j);
        }
    }
    None
}

/// Distance to the `min_pts`-th nearest neighbour (∞ when not core).
fn core_distance(neighbours: &[(usize, f64)], min_pts: usize) -> f64 {
    if neighbours.len() < min_pts {
        return f64::INFINITY;
    }
    let mut ds: Vec<f64> = neighbours.iter().map(|(_, d)| *d).collect();
    ds.sort_by(|a, b| a.total_cmp(b));
    ds[min_pts - 1]
}

/// Extracts DBSCAN-equivalent flat clusters from an OPTICS ordering at a
/// reachability threshold `eps'` ≤ the run's `max_eps`. Returns one label
/// per input point (same convention as [`crate::dbscan::Label`]).
pub fn extract_clusters(
    order: &[OrderedPoint],
    n_points: usize,
    eps_km: f64,
) -> (Vec<crate::dbscan::Label>, u32) {
    use crate::dbscan::Label;
    let mut labels = vec![Label::Noise; n_points];
    let mut cluster: i64 = -1;
    for p in order {
        if p.reachability_km > eps_km {
            if p.core_km <= eps_km {
                cluster += 1;
                labels[p.index] = Label::Cluster(cluster as u32);
            }
            // else noise (stays Noise)
        } else if cluster >= 0 {
            labels[p.index] = Label::Cluster(cluster as u32);
        }
    }
    (labels, (cluster + 1) as u32)
}

/// ε-grid neighbour index (shared shape with the DBSCAN one, but returning
/// distances too).
struct GridIndex {
    cell_km: f64,
    buckets: FxHashMap<(i64, i64), Vec<usize>>,
}

impl GridIndex {
    fn build(points: &[WorldXY], cell_km: f64) -> GridIndex {
        let mut buckets: FxHashMap<(i64, i64), Vec<usize>> = FxHashMap::default();
        for (i, p) in points.iter().enumerate() {
            buckets.entry(Self::key(p, cell_km)).or_default().push(i);
        }
        GridIndex { cell_km, buckets }
    }

    #[inline]
    fn key(p: &WorldXY, cell_km: f64) -> (i64, i64) {
        (
            (p.x / cell_km).floor() as i64,
            (p.y / cell_km).floor() as i64,
        )
    }

    fn query(&self, points: &[WorldXY], i: usize, eps: f64, out: &mut Vec<(usize, f64)>) {
        out.clear();
        let p = points[i];
        let (kx, ky) = Self::key(&p, self.cell_km);
        let eps2 = eps * eps;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.buckets.get(&(kx + dx, ky + dy)) {
                    for &j in bucket {
                        let q = points[j];
                        let d2 = (q.x - p.x).powi(2) + (q.y - p.y).powi(2);
                        if d2 <= eps2 {
                            out.push((j, d2.sqrt()));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::{dbscan, DbscanParams, Label};

    fn blob(center: (f64, f64), n: usize, spread: f64, salt: u64) -> Vec<LatLon> {
        let mut rng = pol_fleetsim::Rng::new(4321 ^ salt);
        (0..n)
            .map(|_| {
                LatLon::new(
                    center.0 + rng.normal() * spread,
                    center.1 + rng.normal() * spread,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn ordering_covers_every_point_once() {
        let mut pts = blob((40.0, 5.0), 80, 0.05, 1);
        pts.extend(blob((42.0, 9.0), 60, 0.05, 2));
        let order = optics(
            &pts,
            OpticsParams {
                max_eps_km: 50.0,
                min_pts: 5,
            },
        );
        assert_eq!(order.len(), pts.len());
        let mut seen = vec![false; pts.len()];
        for p in &order {
            assert!(!seen[p.index], "point visited twice");
            seen[p.index] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dense_points_have_small_reachability() {
        let pts = blob((40.0, 5.0), 100, 0.02, 3);
        let order = optics(
            &pts,
            OpticsParams {
                max_eps_km: 30.0,
                min_pts: 5,
            },
        );
        // All but the first point of the component are reachable cheaply.
        let finite: Vec<f64> = order
            .iter()
            .filter(|p| p.reachability_km.is_finite())
            .map(|p| p.reachability_km)
            .collect();
        assert!(finite.len() >= 95);
        let avg = finite.iter().sum::<f64>() / finite.len() as f64;
        assert!(avg < 5.0, "avg reachability {avg} km");
    }

    #[test]
    fn extraction_matches_dbscan_on_clean_blobs() {
        let mut pts = blob((40.0, 5.0), 80, 0.03, 4);
        pts.extend(blob((30.0, -20.0), 70, 0.03, 5));
        pts.push(LatLon::new(-50.0, 100.0).unwrap()); // lone noise point
        let eps = 15.0;
        let order = optics(
            &pts,
            OpticsParams {
                max_eps_km: 60.0,
                min_pts: 5,
            },
        );
        let (labels, k) = extract_clusters(&order, pts.len(), eps);
        let (dlabels, dk) = dbscan(
            &pts,
            DbscanParams {
                eps_km: eps,
                min_pts: 5,
            },
        );
        assert_eq!(k, dk, "same cluster count as DBSCAN at eps'");
        // Same noise set (cluster ids may permute).
        for (a, b) in labels.iter().zip(&dlabels) {
            assert_eq!(
                matches!(a, Label::Noise),
                matches!(b, Label::Noise),
                "noise sets must agree"
            );
        }
        assert_eq!(labels[pts.len() - 1], Label::Noise);
    }

    #[test]
    fn one_run_many_density_levels() {
        // The OPTICS selling point: a dense blob inside a sparse halo.
        let mut pts = blob((40.0, 5.0), 120, 0.01, 6); // dense core
        pts.extend(blob((40.0, 5.0), 60, 0.4, 7)); // sparse halo
        let order = optics(
            &pts,
            OpticsParams {
                max_eps_km: 120.0,
                min_pts: 5,
            },
        );
        let (tight, k_tight) = extract_clusters(&order, pts.len(), 4.0);
        let (loose, k_loose) = extract_clusters(&order, pts.len(), 80.0);
        assert!(k_tight >= 1);
        assert!(k_loose >= 1);
        let tight_members = tight.iter().filter(|l| **l != Label::Noise).count();
        let loose_members = loose.iter().filter(|l| **l != Label::Noise).count();
        assert!(
            loose_members > tight_members,
            "looser threshold must absorb the halo: {loose_members} vs {tight_members}"
        );
    }

    #[test]
    #[should_panic(expected = "max_eps must be positive")]
    fn rejects_bad_params() {
        let _ = optics(
            &[],
            OpticsParams {
                max_eps_km: 0.0,
                min_pts: 3,
            },
        );
    }

    #[test]
    fn empty_input() {
        let order = optics(
            &[],
            OpticsParams {
                max_eps_km: 10.0,
                min_pts: 3,
            },
        );
        assert!(order.is_empty());
        let (labels, k) = extract_clusters(&order, 0, 5.0);
        assert!(labels.is_empty());
        assert_eq!(k, 0);
    }
}
