//! The concurrent TCP query server.
//!
//! One accept thread admits connections onto a bounded
//! [`pol_engine::ThreadPool`]; each worker owns its connection for its
//! lifetime and speaks the length-prefixed protocol of [`crate::proto`].
//! Admission is capped at `worker_threads + max_pending`: a connection
//! over the cap is answered with a typed [`Response::Busy`] frame and
//! closed instead of queueing unboundedly — load sheds at the edge, it
//! does not pile up.
//!
//! Graceful shutdown: [`Server::shutdown`] raises a stop flag and pokes
//! the listener with a loopback connect to unblock `accept`. Connection
//! workers notice the flag at their next socket read timeout (the
//! read-timeout interval doubles as the shutdown poll granularity) and
//! drain; dropping the pool joins them.

use crate::mapped::MappedStore;
use crate::metrics::ServerMetrics;
use crate::proto::{
    decode_request, encode_response, write_frame, FrameAccumulator, ProtoError, Request, Response,
    DEFAULT_MAX_FRAME_BYTES,
};
use crate::store::{CacheKey, QueryCache, ShardedStore, StoreBackend};
use parking_lot::{Mutex, RwLock};
use pol_apps::destination::DestinationPredictor;
use pol_apps::eta::EtaEstimator;
use pol_core::codec::{CodecError, SnapshotFormat};
use pol_core::{Inventory, InventoryQuery};
use pol_engine::metrics::StageReport;
use pol_engine::ThreadPool;
use pol_geo::{BBox, LatLon};
use pol_hexgrid::cell_at;
use std::borrow::Cow;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Which serving core drives connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerCore {
    /// One pool worker owns each connection for its lifetime — the
    /// original thread-per-connection core. Simple, but open sockets are
    /// bounded by the admission cap.
    Threaded,
    /// One epoll event loop owns every socket and the pool only executes
    /// requests ([`crate::reactor`]): tens of thousands of mostly-idle
    /// connections cost no threads. On platforms without epoll this
    /// falls back to [`ServerCore::Threaded`] at startup.
    Reactor,
}

/// Tunables for [`Server::start`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Which serving core drives connections.
    pub core: ServerCore,
    /// Connection worker threads (each owns one connection at a time).
    pub worker_threads: usize,
    /// Admitted-but-unserved connections tolerated beyond the workers
    /// before new arrivals are shed with [`Response::Busy`].
    pub max_pending: usize,
    /// Hash shards for the read store.
    pub shards: usize,
    /// Aggregate-query cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Socket read timeout; also the shutdown-flag poll interval.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Per-frame size cap, both directions.
    pub max_frame_bytes: usize,
    /// How long a draining connection keeps serving after shutdown is
    /// requested. In-flight and already-buffered requests are answered
    /// until the connection goes idle at a frame boundary or this
    /// deadline passes — whichever comes first.
    pub drain_timeout: Duration,
    /// Open-socket ceiling for the reactor core (the threaded core's
    /// admission cap bounds its sockets already). Arrivals beyond it get
    /// a typed [`Response::Busy`] and a close.
    pub max_connections: usize,
    /// How long a frame may sit partially assembled before the
    /// connection is closed as stalled. The clock anchors to the frame's
    /// *first* byte, so a slow-loris peer dripping one byte per interval
    /// cannot keep resetting it. Both cores enforce it.
    pub stall_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            core: ServerCore::Reactor,
            worker_threads: 8,
            max_pending: 64,
            shards: 8,
            cache_capacity: 256,
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(5),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            drain_timeout: Duration::from_secs(2),
            max_connections: 50_000,
            stall_timeout: Duration::from_secs(30),
        }
    }
}

/// The query-execution core: a store backend (sharded heap or mapped
/// columnar), the aggregate cache, and the metrics sink. Shared by every
/// connection worker; also usable directly (without sockets) for
/// in-process querying and tests.
pub struct InventoryService {
    store: StoreBackend,
    cache: Mutex<QueryCache>,
    metrics: Arc<ServerMetrics>,
}

impl InventoryService {
    /// Builds the service, sharding `inventory` and recording the build
    /// as a `StageReport` on `metrics`.
    pub fn new(inventory: Inventory, config: &ServerConfig, metrics: Arc<ServerMetrics>) -> Self {
        let records = inventory.len() as u64;
        let started = Instant::now();
        let store = ShardedStore::new(inventory, config.shards.max(1));
        metrics.record_stage(StageReport {
            name: "shard-build".into(),
            input_records: records,
            output_records: store.len() as u64,
            shuffled_records: 0,
            wall: started.elapsed(),
        });
        InventoryService {
            store: StoreBackend::Sharded(store),
            cache: Mutex::new(QueryCache::new(config.cache_capacity)),
            metrics,
        }
    }

    /// Opens a snapshot file behind the right backend, sniffing its
    /// format: a POLINV3 file is memory-mapped zero-copy (validated, not
    /// deserialized — the cold-start win), a POLMAN1 delta-chain
    /// manifest is loaded base-plus-deltas into the sharded heap store
    /// (recording the chain lineage for the `STATS` freshness fields),
    /// and anything else goes through the full POLINV2 decode into the
    /// sharded heap store. Every path records its startup cost as a
    /// `StageReport`.
    pub fn open_snapshot(
        path: &Path,
        config: &ServerConfig,
        metrics: Arc<ServerMetrics>,
    ) -> Result<Self, CodecError> {
        match pol_core::codec::sniff_file(path)? {
            Some(SnapshotFormat::V3) => {
                let started = Instant::now();
                let store = MappedStore::open(path)?;
                metrics.record_stage(StageReport {
                    name: "mmap-open".into(),
                    input_records: store.total_records(),
                    output_records: store.len() as u64,
                    shuffled_records: 0,
                    wall: started.elapsed(),
                });
                metrics.set_chain(0, 1);
                Ok(InventoryService {
                    store: StoreBackend::Mapped(store),
                    cache: Mutex::new(QueryCache::new(config.cache_capacity)),
                    metrics,
                })
            }
            Some(SnapshotFormat::Manifest) => {
                let started = Instant::now();
                let (inventory, info) = pol_core::codec::manifest::load_chain(path)?;
                metrics.record_stage(StageReport {
                    name: "chain-load".into(),
                    input_records: info.chain_len,
                    output_records: inventory.len() as u64,
                    shuffled_records: 0,
                    wall: started.elapsed(),
                });
                metrics.set_chain(info.generation, info.chain_len);
                Ok(InventoryService::new(inventory, config, metrics))
            }
            _ => {
                let started = Instant::now();
                let inventory = pol_core::codec::load(path)?;
                metrics.record_stage(StageReport {
                    name: "snapshot-load".into(),
                    input_records: inventory.total_records(),
                    output_records: inventory.len() as u64,
                    shuffled_records: 0,
                    wall: started.elapsed(),
                });
                metrics.set_chain(0, 1);
                Ok(InventoryService::new(inventory, config, metrics))
            }
        }
    }

    /// The underlying store backend.
    pub fn store(&self) -> &StoreBackend {
        &self.store
    }

    /// Executes one request. Invalid arguments (out-of-range coordinates,
    /// inverted boxes) yield [`Response::Error`], never a transport
    /// failure.
    pub fn execute(&self, req: &Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::PointSummary { lat, lon } => match LatLon::new(*lat, *lon) {
                Some(pos) => {
                    let cell = cell_at(pos, self.store.resolution());
                    Response::Summary(self.store.summary(cell).map(Cow::into_owned))
                }
                None => Response::Error("coordinates out of range".into()),
            },
            Request::SegmentSummary { lat, lon, segment } => match LatLon::new(*lat, *lon) {
                Some(pos) => {
                    let cell = cell_at(pos, self.store.resolution());
                    Response::Summary(self.store.summary_for(cell, *segment).map(Cow::into_owned))
                }
                None => Response::Error("coordinates out of range".into()),
            },
            Request::RouteSummary {
                lat,
                lon,
                origin,
                dest,
                segment,
            } => match LatLon::new(*lat, *lon) {
                Some(pos) => {
                    let cell = cell_at(pos, self.store.resolution());
                    Response::Summary(
                        self.store
                            .summary_route(cell, *origin, *dest, *segment)
                            .map(Cow::into_owned),
                    )
                }
                None => Response::Error("coordinates out of range".into()),
            },
            Request::BboxScan {
                min_lat,
                min_lon,
                max_lat,
                max_lon,
            } => match BBox::new(*min_lat, *min_lon, *max_lat, *max_lon) {
                Some(bbox) => {
                    let key = CacheKey::Bbox([
                        min_lat.to_bits(),
                        min_lon.to_bits(),
                        max_lat.to_bits(),
                        max_lon.to_bits(),
                    ]);
                    let cells = self.cached(key, || {
                        self.store.cells_in(&bbox).iter().map(|c| c.raw()).collect()
                    });
                    Response::Cells(cells.to_vec())
                }
                None => Response::Error("invalid bounding box".into()),
            },
            Request::TopDestinationCells { dest, segment } => {
                let key = CacheKey::TopDest(*dest, segment.map(|s| s.id()));
                let cells = self.cached(key, || {
                    self.store
                        .cells_with_top_destination(*dest, *segment)
                        .iter()
                        .map(|c| c.raw())
                        .collect()
                });
                Response::Cells(cells.to_vec())
            }
            Request::Eta {
                lat,
                lon,
                segment,
                route,
            } => match LatLon::new(*lat, *lon) {
                Some(pos) => {
                    let estimator = EtaEstimator::new(&self.store);
                    Response::Eta(estimator.estimate(pos, *segment, *route))
                }
                None => Response::Error("coordinates out of range".into()),
            },
            Request::PredictDestination {
                segment,
                top_n,
                track,
            } => {
                let mut predictor = DestinationPredictor::new(&self.store, *segment);
                for (lat, lon) in track {
                    match LatLon::new(*lat, *lon) {
                        Some(pos) => {
                            predictor.observe(pos);
                        }
                        None => return Response::Error("track coordinate out of range".into()),
                    }
                }
                Response::Destinations(predictor.top(*top_n as usize))
            }
            Request::Stats => {
                // The metrics snapshot knows nothing about the store;
                // fill in the backend identity and its read counters.
                let mut report = self.metrics.snapshot();
                report.store = self.store.name().to_string();
                if let Some(c) = self.store.mapped_counters() {
                    report.mapped_lookups = c.lookups;
                    report.mapped_scan_entries = c.scan_entries;
                }
                Response::Stats(report)
            }
            Request::Health => Response::Health(self.metrics.health()),
            Request::Ready => Response::Ready(!self.metrics.is_draining()),
            Request::Batch(children) => {
                // One BATCH frame = one Endpoint::Batch latency sample
                // (recorded by the caller); the children are accounted in
                // the batched_requests counter, not double-counted under
                // their own endpoints.
                self.metrics.add_batched(children.len() as u64);
                Response::Batch(children.iter().map(|child| self.execute(child)).collect())
            }
        }
    }

    fn cached<F: FnOnce() -> Vec<u64>>(&self, key: CacheKey, compute: F) -> Arc<Vec<u64>> {
        if let Some(hit) = self.cache.lock().get(&key) {
            self.metrics.incr_cache_hit();
            return hit;
        }
        // Compute outside the lock: a slow scan must not serialize every
        // other aggregate query behind it (the race just recomputes).
        self.metrics.incr_cache_miss();
        let value = Arc::new(compute());
        self.cache.lock().put(key, Arc::clone(&value));
        value
    }
}

/// A running server. Dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    metrics: Arc<ServerMetrics>,
    service: Arc<RwLock<Arc<InventoryService>>>,
    config: ServerConfig,
}

impl Server {
    /// Loads `inventory` into a sharded service and starts serving on
    /// `addr` (use port 0 for an ephemeral port; the bound address is
    /// available from [`Server::local_addr`]).
    pub fn start<A: ToSocketAddrs>(
        inventory: Inventory,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let metrics = Arc::new(ServerMetrics::new());
        let service = InventoryService::new(inventory, &config, Arc::clone(&metrics));
        Server::start_with_service(service, metrics, addr, config)
    }

    /// Starts serving straight off a snapshot file, sniffing its format:
    /// POLINV3 is memory-mapped zero-copy (validate, don't deserialize),
    /// POLINV2 is fully decoded into the sharded heap store. This is the
    /// fast cold-start path `polinv serve` uses.
    pub fn start_snapshot<A: ToSocketAddrs>(
        path: &Path,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let metrics = Arc::new(ServerMetrics::new());
        let service = InventoryService::open_snapshot(path, &config, Arc::clone(&metrics))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Server::start_with_service(service, metrics, addr, config)
    }

    fn start_with_service<A: ToSocketAddrs>(
        service: InventoryService,
        metrics: Arc<ServerMetrics>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let service = Arc::new(RwLock::new(Arc::new(service)));
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_metrics = Arc::clone(&metrics);
        let accept_service = Arc::clone(&service);
        let accept_handle = thread::Builder::new()
            .name("pol-serve-accept".into())
            .spawn(move || match config.core {
                ServerCore::Reactor => crate::reactor::run(
                    listener,
                    accept_service,
                    config,
                    accept_stop,
                    accept_metrics,
                ),
                ServerCore::Threaded => accept_loop(
                    listener,
                    accept_service,
                    config,
                    accept_stop,
                    accept_metrics,
                ),
            })?;
        Ok(Server {
            addr: local,
            stop,
            accept_handle: Some(accept_handle),
            metrics,
            service,
            config,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's live counters.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Hot-swaps the served snapshot for `inventory` without dropping a
    /// single connection: the new inventory is sharded off to the side,
    /// then an atomic `Arc` swap makes it the live snapshot. Requests
    /// already executing finish on the old snapshot (their clone keeps
    /// it alive); every frame decoded after the swap sees the new one.
    /// The generation counter in `STATS`/`HEALTH` advances.
    pub fn reload(&self, inventory: Inventory) {
        let fresh = Arc::new(InventoryService::new(
            inventory,
            &self.config,
            Arc::clone(&self.metrics),
        ));
        *self.service.write() = fresh;
        self.metrics.set_chain(0, 1);
        self.metrics.reload_succeeded();
    }

    /// Hot-reloads the snapshot from an inventory file, sniffing its
    /// format like [`Server::start_snapshot`] (a POLINV3 file swaps in a
    /// fresh mapped store; a POLMAN1 manifest merges its base + delta
    /// chain and records the lineage in the `STATS` freshness fields;
    /// POLINV2 decodes into the heap store). A corrupt, truncated, or
    /// unreadable file — anywhere in a chain — is rejected by the
    /// codec's checksums *before* anything is swapped: the error is
    /// returned, `reloads_failed` advances, and the previous snapshot
    /// keeps serving untouched.
    pub fn reload_from(&self, path: &Path) -> Result<(), CodecError> {
        match InventoryService::open_snapshot(path, &self.config, Arc::clone(&self.metrics)) {
            Ok(service) => {
                *self.service.write() = Arc::new(service);
                self.metrics.reload_succeeded();
                Ok(())
            }
            Err(e) => {
                self.metrics.reload_failed();
                Err(e)
            }
        }
    }

    /// Stops accepting, drains in-flight connections, joins all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::Relaxed) {
            // Mark the server draining first so READY flips before the
            // listener goes away, then unblock the accept() call; the
            // loop re-checks the flag before handling whatever this
            // connect delivers.
            self.metrics.set_draining();
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Releases one admission slot when dropped. Holding the decrement in a
/// `Drop` guard (instead of a statement after `handle_connection`) keeps
/// the admission count honest even when a connection worker panics — an
/// injected `serve.worker.kill` fault unwinds through the pool's
/// `catch_unwind`, and without the guard every kill would leak a slot
/// until the cap starved the server into rejecting everyone. The
/// reactor core reuses it per *request* for the same reason: a killed
/// worker must still release its slot.
pub(crate) struct AdmitGuard(pub(crate) Arc<AtomicUsize>);

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

pub(crate) fn accept_loop(
    listener: TcpListener,
    service: Arc<RwLock<Arc<InventoryService>>>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
) {
    let workers = config.worker_threads.max(1);
    let pool = ThreadPool::new(workers);
    let admitted = Arc::new(AtomicUsize::new(0));
    let admit_cap = workers + config.max_pending;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                continue;
            }
        };
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if admitted.fetch_add(1, Ordering::Relaxed) >= admit_cap {
            admitted.fetch_sub(1, Ordering::Relaxed);
            metrics.incr_busy();
            reject_busy(stream, &config);
            continue;
        }
        let guard = AdmitGuard(Arc::clone(&admitted));
        metrics.incr_connections();
        let service = Arc::clone(&service);
        let conn_stop = Arc::clone(&stop);
        let conn_metrics = Arc::clone(&metrics);
        let submitted = pool.execute(move || {
            let _admitted = guard;
            handle_connection(stream, &service, &config, &conn_stop, &conn_metrics);
        });
        if submitted.is_err() {
            // Pool shut down underneath us (the rejected closure was
            // dropped, releasing its guard); stop accepting.
            break;
        }
    }
    // Dropping the pool joins the workers; they observe the stop flag at
    // their next read timeout and drain.
    drop(pool);
}

pub(crate) fn reject_busy(stream: TcpStream, config: &ServerConfig) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let payload = encode_response(&Response::Busy);
    let _ = write_frame(&mut stream, &payload);
    let _ = stream.flush();
}

/// Decrements the open-connection gauge when dropped, so the gauge
/// stays honest through every exit path including a chaos-killed worker
/// unwinding.
struct ConnGauge<'a>(&'a ServerMetrics);

impl Drop for ConnGauge<'_> {
    fn drop(&mut self) {
        self.0.conn_closed();
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &RwLock<Arc<InventoryService>>,
    config: &ServerConfig,
    stop: &AtomicBool,
    metrics: &ServerMetrics,
) {
    metrics.conn_opened();
    let _gauge = ConnGauge(metrics);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut acc = FrameAccumulator::new();
    // Once shutdown is requested the connection does not slam shut: it
    // keeps serving until it is idle at a frame boundary (a request the
    // server accepted gets its answer) or the drain deadline passes
    // (a peer streaming forever cannot hold shutdown hostage).
    let mut drain_deadline: Option<Instant> = None;
    // Frame-assembly deadline: anchored to the first byte of the frame
    // in progress, never refreshed by later drips, so a slow-loris peer
    // cannot stretch one frame forever (same rule as the reactor core).
    let mut frame_started: Option<Instant> = None;
    loop {
        if stop.load(Ordering::Relaxed) && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + config.drain_timeout);
        }
        if drain_deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        if frame_started.is_some_and(|t| t.elapsed() > config.stall_timeout) {
            break;
        }
        if pol_chaos::fire("serve.conn.read_delay") {
            // An Err action models the transport dying under the reader.
            break;
        }
        match acc.poll(&mut reader, config.max_frame_bytes) {
            Ok(Some(payload)) => {
                frame_started = None;
                // The snapshot is resolved per frame: a hot reload swaps
                // the Arc between requests, never under one.
                let snapshot = Arc::clone(&service.read());
                if !serve_frame(&payload, &snapshot, &mut writer, metrics) {
                    break;
                }
            }
            Ok(None) => {
                if frame_started.is_none() && acc.is_partial() {
                    frame_started = Some(Instant::now());
                }
            }
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Read timeout: no bytes lost (the accumulator keeps its
                // partial frame); loop around to poll the stop flag. A
                // draining connection that hits a timeout with no frame
                // in progress is idle — safe to close.
                if frame_started.is_none() && acc.is_partial() {
                    frame_started = Some(Instant::now());
                }
                if drain_deadline.is_some() && !acc.is_partial() {
                    break;
                }
            }
            Err(ProtoError::FrameTooLarge(n)) => {
                metrics.incr_malformed();
                let resp = Response::Error(format!("frame of {n} bytes exceeds cap"));
                let _ = write_response(&mut writer, &resp);
                break;
            }
            Err(_) => break,
        }
    }
}

/// Decodes, executes, and answers one frame. Returns `false` when the
/// connection should close (malformed input or a dead peer).
fn serve_frame<W: Write>(
    payload: &[u8],
    service: &InventoryService,
    writer: &mut W,
    metrics: &ServerMetrics,
) -> bool {
    let started = Instant::now();
    if pol_chaos::fire("serve.worker.kill") {
        // Err action: the worker aborts this connection without a reply
        // (the Kill action panics inside `fire` instead and is contained
        // by the pool's catch_unwind; either way no locks are held here).
        return false;
    }
    match decode_request(payload) {
        Ok(req) => {
            let endpoint = req.endpoint();
            let resp = service.execute(&req);
            let ok = write_response(writer, &resp);
            metrics.record(endpoint, started.elapsed());
            ok
        }
        Err(e) => {
            // A peer that cannot frame a request correctly gets one typed
            // error, then the socket: resynchronising a corrupt binary
            // stream is not worth the attack surface.
            metrics.incr_malformed();
            let _ = write_response(writer, &Response::Error(e.to_string()));
            false
        }
    }
}

fn write_response<W: Write>(writer: &mut W, resp: &Response) -> bool {
    let payload = encode_response(resp);
    write_frame(writer, &payload)
        .and_then(|()| writer.flush())
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_core::features::{CellStats, GroupKey};
    use pol_sketch::hash::FxHashMap;

    fn empty_inventory() -> Inventory {
        let entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        Inventory::from_entries(pol_hexgrid::Resolution::new(6).unwrap(), entries, 0)
    }

    #[test]
    fn invalid_arguments_yield_typed_errors() {
        let cfg = ServerConfig::default();
        let svc = InventoryService::new(empty_inventory(), &cfg, Arc::new(ServerMetrics::new()));
        for req in [
            Request::PointSummary {
                lat: 95.0,
                lon: 0.0,
            },
            Request::BboxScan {
                min_lat: 10.0,
                min_lon: 0.0,
                max_lat: -10.0,
                max_lon: 5.0,
            },
            Request::Eta {
                lat: 0.0,
                lon: 999.0,
                segment: None,
                route: None,
            },
            Request::PredictDestination {
                segment: None,
                top_n: 1,
                track: vec![(200.0, 0.0)],
            },
        ] {
            assert!(
                matches!(svc.execute(&req), Response::Error(_)),
                "{req:?} should be rejected"
            );
        }
    }

    #[test]
    fn aggregate_queries_hit_the_cache_on_repeat() {
        let cfg = ServerConfig::default();
        let metrics = Arc::new(ServerMetrics::new());
        let svc = InventoryService::new(empty_inventory(), &cfg, Arc::clone(&metrics));
        let req = Request::TopDestinationCells {
            dest: 7,
            segment: None,
        };
        svc.execute(&req);
        svc.execute(&req);
        let snap = metrics.snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, 1);
    }

    #[test]
    fn stats_request_reports_stage_accounting() {
        let cfg = ServerConfig::default();
        let metrics = Arc::new(ServerMetrics::new());
        let svc = InventoryService::new(empty_inventory(), &cfg, Arc::clone(&metrics));
        match svc.execute(&Request::Stats) {
            Response::Stats(report) => assert!(report.stages.contains("shard-build")),
            other => panic!("expected stats, got {other:?}"),
        }
    }
}
