//! A minimal, safe, read-only memory-map wrapper.
//!
//! `MappedFile::open` maps a file `PROT_READ`/`MAP_PRIVATE` and exposes
//! it as `&[u8]`. No external crate: the two libc calls (`mmap`,
//! `munmap`) are declared here directly — std already links libc on
//! every unix target. On non-unix targets, on zero-length files, and on
//! any mmap failure the wrapper transparently falls back to reading the
//! file into a heap buffer, so callers never branch on platform.
//!
//! ## Why the `&[u8]` view is sound
//!
//! A memory map is only as immutable as the file behind it. This repo's
//! snapshot writers ([`pol_core::codec::save_bytes`]) never mutate a
//! published snapshot in place: bytes go to a temp sibling which is
//! fsynced and atomically *renamed* over the destination, so the inode a
//! reader mapped keeps its old, complete contents for as long as the map
//! holds it open. Combined with validation running *on the mapped bytes
//! themselves* (no read-then-remap TOCTOU window) and every reader being
//! panic-free on arbitrary bytes (checked by the corruption proptests),
//! an external writer violating the discipline can at worst make queries
//! return typed errors or `None`, never undefined behaviour from Rust
//! code — the `unsafe` here is confined to the two FFI calls and the
//! slice construction over the kernel-owned pages.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    pub(super) const PROT_READ: c_int = 1;
    pub(super) const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub(super) fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub(super) fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub(super) fn map_failed(ptr: *mut c_void) -> bool {
        ptr.is_null() || ptr as usize == usize::MAX
    }
}

enum Backing {
    /// Kernel-owned pages from a successful `mmap`.
    #[cfg(unix)]
    Mapped {
        ptr: std::ptr::NonNull<u8>,
        len: usize,
    },
    /// Plain heap bytes (non-unix, empty file, or mmap failure).
    Heap(Vec<u8>),
}

/// A read-only view of a file's bytes, memory-mapped when possible.
pub struct MappedFile {
    backing: Backing,
}

// SAFETY: the mapping is PROT_READ and never mutated through this type;
// a shared `&[u8]` over immutable pages is as thread-safe as any other
// shared slice. The heap variant is a plain Vec;
// tested by: unix_files_actually_map, concurrent_responses_equal_direct_inventory_queries.
unsafe impl Send for MappedFile {}
// SAFETY: see the Send impl — all access is read-only;
// tested by: unix_files_actually_map, concurrent_responses_equal_direct_inventory_queries.
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Opens `path` read-only and maps it. Falls back to a heap read on
    /// any platform or syscall obstacle — the caller always gets bytes.
    pub fn open(path: &Path) -> io::Result<MappedFile> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        #[cfg(unix)]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            // A MAP_FAILED return is checked before the pointer is used.
            // SAFETY: fd is a valid open descriptor for the whole call;
            // len is the file's current size and non-zero; PROT_READ +
            // MAP_PRIVATE cannot alias writable memory;
            // tested by: unix_files_actually_map, maps_file_bytes_exactly.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if !sys::map_failed(ptr) {
                if let Some(nn) = std::ptr::NonNull::new(ptr as *mut u8) {
                    return Ok(MappedFile {
                        backing: Backing::Mapped { ptr: nn, len },
                    });
                }
            }
            // fall through to the heap read
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(MappedFile {
            backing: Backing::Heap(buf),
        })
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                // The pages are never written through this type.
                // SAFETY: ptr/len describe a live PROT_READ mapping that
                // outlives this borrow (unmapped only in Drop), so the
                // aliasing rules for &[u8] hold;
                // tested by: maps_file_bytes_exactly, view_survives_rename_over_original.
                unsafe { std::slice::from_raw_parts(ptr.as_ptr(), *len) }
            }
            Backing::Heap(buf) => buf,
        }
    }

    /// Whether the bytes come from a live memory map (as opposed to the
    /// heap fallback) — surfaced in server metrics.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Heap(_) => false,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                // SAFETY: exactly the region returned by mmap in open();
                // dropped once (Drop runs once), and no borrow of the
                // slice can outlive self;
                // tested by: view_survives_rename_over_original.
                unsafe {
                    sys::munmap(ptr.as_ptr() as *mut std::ffi::c_void, *len);
                }
            }
            Backing::Heap(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pol-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn maps_file_bytes_exactly() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("exact.bin", &payload);
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_yields_empty_view() {
        let path = temp_file("empty.bin", b"");
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped(), "empty files use the heap fallback");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = std::env::temp_dir().join("pol-mmap-test");
        assert!(MappedFile::open(&dir.join("does-not-exist.bin")).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn unix_files_actually_map() {
        let path = temp_file("mapped.bin", b"mapped bytes");
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_mapped());
        assert_eq!(map.bytes(), b"mapped bytes");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn view_survives_rename_over_original() {
        // The atomic-rename discipline: a reader's map must keep the old
        // bytes when a new snapshot is renamed over the path.
        let path = temp_file("renamed.bin", b"old contents");
        let map = MappedFile::open(&path).unwrap();
        let replacement = temp_file("replacement.bin", b"new contents!");
        std::fs::rename(&replacement, &path).unwrap();
        assert_eq!(map.bytes(), b"old contents");
        std::fs::remove_file(&path).ok();
    }
}
