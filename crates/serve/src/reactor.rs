//! `serve::reactor` — the std-only epoll event-driven server core.
//!
//! One reactor thread owns every socket. `epoll_wait` reports readiness;
//! the loop accepts nonblocking connections, feeds readable sockets
//! through their [`ConnState`] frame machines, and hands every decoded
//! request to the bounded worker pool. Workers never touch sockets: they
//! execute the query against a per-frame-pinned snapshot, then push the
//! encoded response onto a completion queue and ring an `eventfd` — the
//! loop wakes, moves the bytes into the connection's write buffer, and
//! flushes with `EPOLLOUT` re-arming, so a peer that stops reading slows
//! only itself.
//!
//! Backpressure is load-shedding *at the loop*: before a request is
//! enqueued the loop takes an admission slot (the same
//! `worker_threads + max_pending` arithmetic the threaded core applies
//! per connection); when the slots are gone the request is answered with
//! an immediate typed `Busy` frame and never queued. [`AdmitGuard`]
//! releases the slot on drop, so a worker killed mid-request (the
//! `serve.worker.kill` chaos fault) cannot leak one, and the
//! `CompletionGuard` below pushes a close-the-connection completion from
//! its own drop, so a killed request cannot wedge its connection either.
//!
//! Shutdown ordering is the threaded core's, re-expressed: `READY` flips
//! (the `Server` marks draining before raising the stop flag), the loop
//! drops the listener, in-flight and already-buffered requests are
//! answered, idle-at-a-frame-boundary connections close, and the drain
//! deadline bounds a peer that streams forever.
//!
//! The epoll/eventfd bindings are declared `extern "C"` in the style of
//! [`crate::mmap`] — std already links libc on every unix target. On
//! non-Linux targets (or if epoll setup fails at runtime) the server
//! falls back to the legacy threaded core transparently.

use crate::conn::{ConnState, ReadEvent};
use crate::metrics::ServerMetrics;
use crate::proto::{decode_request, encode_response, Response};
use crate::server::{AdmitGuard, InventoryService, ServerConfig};
use parking_lot::{Mutex, RwLock};
use pol_engine::ThreadPool;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Runs the event-driven core on `listener` until `stop` is raised and
/// the drain completes. Falls back to the legacy threaded accept loop on
/// platforms without epoll or when epoll setup fails, so a
/// [`crate::server::ServerCore::Reactor`] config is safe everywhere.
pub(crate) fn run(
    listener: TcpListener,
    service: Arc<RwLock<Arc<InventoryService>>>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
) {
    #[cfg(target_os = "linux")]
    {
        match linux::EventLoop::new(listener, service, config, stop, metrics) {
            Ok(event_loop) => event_loop.run(),
            Err(init) => {
                let (listener, service, stop, metrics, _err) = *init;
                crate::server::accept_loop(listener, service, config, stop, metrics);
            }
        }
    }
    #[cfg(not(target_os = "linux"))]
    crate::server::accept_loop(listener, service, config, stop, metrics);
}

/// One finished request, handed from a worker back to the loop.
struct Completion {
    /// Which connection asked.
    token: u64,
    /// Encoded response payload; `None` aborts the connection without a
    /// reply (a killed worker), exactly like the threaded core's break.
    reply: Option<Vec<u8>>,
    /// Close once the reply has flushed (malformed peer).
    close_after: bool,
}

/// State shared between the loop and the pool workers.
struct LoopShared {
    /// Finished requests awaiting the loop. Leaf lock in the declared
    /// `lock_order`: nothing is ever acquired while it is held.
    completions: Mutex<Vec<Completion>>,
    /// Rings the loop's eventfd; `None` outside Linux (unused — workers
    /// only exist under a running event loop).
    #[cfg(target_os = "linux")]
    wake: linux::WakeFd,
}

impl LoopShared {
    /// Queues one completion and wakes the loop.
    fn complete(&self, completion: Completion) {
        self.completions.lock().push(completion);
        #[cfg(target_os = "linux")]
        self.wake.wake();
    }
}

/// Guarantees the loop hears about every dispatched request exactly
/// once. Constructed at the top of the worker job with an empty reply;
/// on a normal return the job has filled in the outcome, and on a panic
/// (the `serve.worker.kill` chaos fault unwinding through the pool's
/// `catch_unwind`) the drop still runs and the default outcome —
/// no reply, close the connection — reaches the loop, so an in-flight
/// marker can never wedge a connection.
struct CompletionGuard {
    shared: Arc<LoopShared>,
    token: u64,
    reply: Option<Vec<u8>>,
    close_after: bool,
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        self.shared.complete(Completion {
            token: self.token,
            reply: self.reply.take(),
            close_after: self.close_after,
        });
    }
}

/// The worker-side of one request: decode, execute against a pinned
/// snapshot, encode — never touching a socket. Mirrors the threaded
/// core's `serve_frame` decision-for-decision (chaos kill point before
/// decode, one typed error then close for malformed frames, per-frame
/// snapshot pinning for hot-reload atomicity).
fn execute_job(
    payload: Vec<u8>,
    token: u64,
    service: &RwLock<Arc<InventoryService>>,
    metrics: &ServerMetrics,
    shared: Arc<LoopShared>,
) {
    let started = std::time::Instant::now();
    let mut done = CompletionGuard {
        shared,
        token,
        reply: None,
        close_after: true,
    };
    if pol_chaos::fire("serve.worker.kill") {
        // Err action: abort this connection without a reply (the Kill
        // action panics inside `fire` and unwinds through the pool's
        // catch_unwind; either way the guard reports the abort).
        return;
    }
    match decode_request(&payload) {
        Ok(req) => {
            let endpoint = req.endpoint();
            // The snapshot is resolved per frame: a hot reload swaps the
            // Arc between requests, never under one.
            let snapshot = Arc::clone(&service.read());
            let resp = snapshot.execute(&req);
            done.reply = Some(encode_response(&resp));
            done.close_after = false;
            metrics.record(endpoint, started.elapsed());
        }
        Err(e) => {
            // One typed error, then the socket — same resynchronisation
            // refusal as the threaded core.
            metrics.incr_malformed();
            done.reply = Some(encode_response(&Response::Error(e.to_string())));
            done.close_after = true;
        }
    }
}

#[cfg(target_os = "linux")]
mod linux {
    use super::*;
    use std::collections::HashMap;
    use std::io;
    use std::net::TcpStream;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::{Duration, Instant};

    mod sys {
        use std::ffi::c_void;
        use std::os::raw::c_int;

        pub(super) const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub(super) const EPOLL_CTL_ADD: c_int = 1;
        pub(super) const EPOLL_CTL_DEL: c_int = 2;
        pub(super) const EPOLL_CTL_MOD: c_int = 3;
        pub(super) const EPOLLIN: u32 = 0x001;
        pub(super) const EPOLLOUT: u32 = 0x004;
        pub(super) const EPOLLERR: u32 = 0x008;
        pub(super) const EPOLLHUP: u32 = 0x010;
        pub(super) const EPOLLRDHUP: u32 = 0x2000;
        pub(super) const EFD_CLOEXEC: c_int = 0o2000000;
        pub(super) const EFD_NONBLOCK: c_int = 0o4000;

        /// Mirror of the kernel's `struct epoll_event`. x86-64 packs it
        /// (a quirk of the original 32/64-bit ABI compatibility); every
        /// other architecture uses natural alignment.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub(super) struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub(super) fn epoll_create1(flags: c_int) -> c_int;
            pub(super) fn epoll_ctl(
                epfd: c_int,
                op: c_int,
                fd: c_int,
                event: *mut EpollEvent,
            ) -> c_int;
            pub(super) fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub(super) fn eventfd(initval: u32, flags: c_int) -> c_int;
            pub(super) fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
            pub(super) fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        }
    }

    /// Loop tokens 0 and 1 are the listener and the wake eventfd;
    /// connections count up from [`FIRST_CONN_TOKEN`] and are never
    /// reused (a u64 cannot wrap in practice), so a stale event cannot
    /// alias a new connection.
    const TOKEN_LISTENER: u64 = 0;
    const TOKEN_WAKE: u64 = 1;
    const FIRST_CONN_TOKEN: u64 = 2;

    /// Readiness events drained per `epoll_wait` call.
    const EVENT_BATCH: usize = 256;

    /// An owned `epoll` instance.
    struct Epoll {
        fd: OwnedFd,
    }

    impl Epoll {
        fn new() -> io::Result<Epoll> {
            // The return value is validated before ownership is claimed.
            // SAFETY: epoll_create1 takes no pointers; a non-negative
            // return is a fresh descriptor owned exclusively here;
            // tested by: reactor_core_event_counters_are_live, concurrent_responses_equal_direct_inventory_queries.
            let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: fd is a valid, just-created descriptor no one else
            // owns, which is exactly OwnedFd's contract;
            // tested by: reactor_core_event_counters_are_live.
            let fd = unsafe { OwnedFd::from_raw_fd(fd) };
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events,
                data: token,
            };
            // SAFETY: self.fd and fd are live descriptors for the whole
            // call; `ev` outlives the call (the kernel copies it before
            // returning, even for DEL where it is ignored);
            // tested by: reactor_core_event_counters_are_live, pipelined_responses_survive_a_lazy_reader.
            let rc = unsafe { sys::epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
        }

        fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
        }

        fn del(&self, fd: RawFd) {
            let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Waits for readiness, retrying `EINTR`, returning how many
        /// entries of `events` were filled.
        fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                // SAFETY: the events pointer/len describe a live mutable
                // slice for the whole call and maxevents never exceeds
                // its capacity, so the kernel writes stay in bounds;
                // tested by: reactor_core_event_counters_are_live, delta_chain_hot_reload_under_load_loses_no_query.
                let n = unsafe {
                    sys::epoll_wait(
                        self.fd.as_raw_fd(),
                        events.as_mut_ptr(),
                        events.len() as i32,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    return Ok(n as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    /// A nonblocking `eventfd`: workers `wake()` it from any thread, the
    /// loop registers it in epoll and `drain()`s it on readiness.
    pub(super) struct WakeFd {
        fd: OwnedFd,
    }

    impl WakeFd {
        fn new() -> io::Result<WakeFd> {
            // The return value is validated before ownership is claimed.
            // SAFETY: eventfd takes no pointers; a non-negative return
            // is a fresh descriptor owned exclusively here;
            // tested by: reactor_core_event_counters_are_live.
            let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: fd is a valid, just-created descriptor no one else
            // owns, which is exactly OwnedFd's contract;
            // tested by: reactor_core_event_counters_are_live.
            let fd = unsafe { OwnedFd::from_raw_fd(fd) };
            Ok(WakeFd { fd })
        }

        /// Adds 1 to the eventfd counter, making it epoll-readable. An
        /// `EAGAIN` (counter saturated) is ignored: a wakeup is already
        /// pending, which is all a wake needs to guarantee.
        pub(super) fn wake(&self) {
            let one = 1u64.to_ne_bytes();
            // SAFETY: the buffer is a live 8-byte local for the whole
            // call (eventfd writes must be exactly 8 bytes) and the fd
            // is owned by self;
            // tested by: reactor_core_event_counters_are_live, batched_requests_equal_single_requests.
            let _ = unsafe { sys::write(self.fd.as_raw_fd(), one.as_ptr().cast(), one.len()) };
        }

        /// Clears the counter so the next wake is a fresh edge.
        fn drain(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: the buffer is a live 8-byte mutable local for the
            // whole call and the fd is owned by self; EFD_NONBLOCK makes
            // the read return -1/EAGAIN once the counter is empty;
            // tested by: reactor_core_event_counters_are_live.
            let _ = unsafe { sys::read(self.fd.as_raw_fd(), buf.as_mut_ptr().cast(), buf.len()) };
        }
    }

    /// One registered connection: the socket, its frame machine, and the
    /// epoll interest currently armed for it.
    struct ConnEntry {
        stream: TcpStream,
        state: ConnState,
        interest: u32,
    }

    const READ_INTEREST: u32 = sys::EPOLLIN | sys::EPOLLRDHUP;

    pub(super) struct EventLoop {
        epoll: Epoll,
        listener: Option<TcpListener>,
        shared: Arc<LoopShared>,
        conns: HashMap<u64, ConnEntry>,
        next_token: u64,
        pool: ThreadPool,
        admitted: Arc<AtomicUsize>,
        admit_cap: usize,
        service: Arc<RwLock<Arc<InventoryService>>>,
        config: ServerConfig,
        stop: Arc<AtomicBool>,
        metrics: Arc<ServerMetrics>,
        drain_deadline: Option<Instant>,
        last_sweep: Instant,
    }

    type InitError = (
        TcpListener,
        Arc<RwLock<Arc<InventoryService>>>,
        Arc<AtomicBool>,
        Arc<ServerMetrics>,
        io::Error,
    );

    impl EventLoop {
        /// Builds the loop. On failure every moved-in handle is returned
        /// so the caller can fall back to the threaded core.
        pub(super) fn new(
            listener: TcpListener,
            service: Arc<RwLock<Arc<InventoryService>>>,
            config: ServerConfig,
            stop: Arc<AtomicBool>,
            metrics: Arc<ServerMetrics>,
        ) -> Result<EventLoop, Box<InitError>> {
            let built = (|| -> io::Result<(Epoll, WakeFd)> {
                listener.set_nonblocking(true)?;
                let epoll = Epoll::new()?;
                let wake = WakeFd::new()?;
                epoll.add(listener.as_raw_fd(), READ_INTEREST, TOKEN_LISTENER)?;
                epoll.add(wake.fd.as_raw_fd(), sys::EPOLLIN, TOKEN_WAKE)?;
                Ok((epoll, wake))
            })();
            let (epoll, wake) = match built {
                Ok(pair) => pair,
                Err(e) => {
                    // Undo nonblocking so the fallback accept loop blocks
                    // as it expects to.
                    let _ = listener.set_nonblocking(false);
                    return Err(Box::new((listener, service, stop, metrics, e)));
                }
            };
            let workers = config.worker_threads.max(1);
            Ok(EventLoop {
                epoll,
                listener: Some(listener),
                shared: Arc::new(LoopShared {
                    completions: Mutex::new(Vec::new()),
                    wake,
                }),
                conns: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
                pool: ThreadPool::new(workers),
                admitted: Arc::new(AtomicUsize::new(0)),
                admit_cap: workers + config.max_pending,
                service,
                config,
                stop,
                metrics,
                drain_deadline: None,
                last_sweep: Instant::now(),
            })
        }

        pub(super) fn run(mut self) {
            let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
            loop {
                let n = match self.epoll.wait(&mut events, self.tick_ms()) {
                    Ok(n) => n,
                    Err(_) => break,
                };
                if n > 0 {
                    self.metrics.add_ready_events(n as u64);
                }
                for ev in events.iter().take(n) {
                    // Copy out of the (possibly packed) kernel struct
                    // before use.
                    let token = ev.data;
                    let bits = ev.events;
                    match token {
                        TOKEN_LISTENER => self.accept_ready(),
                        TOKEN_WAKE => {
                            self.shared.wake.drain();
                            self.metrics.incr_wakeup();
                        }
                        _ => self.conn_ready(token, bits),
                    }
                }
                self.apply_completions();
                if self.stop.load(Ordering::Relaxed) && self.drain_deadline.is_none() {
                    self.begin_drain();
                }
                self.sweep();
                if let Some(deadline) = self.drain_deadline {
                    if self.conns.is_empty() || Instant::now() >= deadline {
                        break;
                    }
                }
            }
            // Teardown: sockets first (peers see EOF), then the pool —
            // dropping it joins the workers after the queue drains; any
            // late completions land in the queue and are simply dropped
            // with it.
            self.conns.drain().for_each(|(_, entry)| {
                self.metrics.conn_closed();
                drop(entry);
            });
            // (pool dropped with self)
        }

        /// epoll timeout for this iteration: the read-timeout tick (the
        /// shutdown/stall poll granularity, as on the threaded core),
        /// tightened while draining so the exit condition is prompt.
        fn tick_ms(&self) -> i32 {
            let base = self
                .config
                .read_timeout
                .min(Duration::from_millis(100))
                .as_millis()
                .max(1) as i32;
            if self.drain_deadline.is_some() {
                base.min(10)
            } else {
                base
            }
        }

        fn accept_ready(&mut self) {
            loop {
                let Some(listener) = self.listener.as_ref() else {
                    return;
                };
                match listener.accept() {
                    Ok((stream, _)) => {
                        if self.stop.load(Ordering::Relaxed) {
                            // Draining: new arrivals are turned away (the
                            // listener is about to close).
                            continue;
                        }
                        self.register_conn(stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    // EMFILE and friends: back off until the next tick
                    // rather than spinning on a hot error.
                    Err(_) => return,
                }
            }
        }

        fn register_conn(&mut self, stream: TcpStream) {
            if self.conns.len() >= self.config.max_connections {
                // The fd budget is the one resource admission cannot
                // defer: turn the connection away with a typed Busy.
                self.metrics.incr_busy();
                reject_busy_nonblocking(stream);
                return;
            }
            if stream.set_nonblocking(true).is_err() {
                return;
            }
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            if self
                .epoll
                .add(stream.as_raw_fd(), READ_INTEREST, token)
                .is_err()
            {
                return;
            }
            self.metrics.incr_connections();
            self.metrics.conn_opened();
            self.conns.insert(
                token,
                ConnEntry {
                    stream,
                    state: ConnState::new(Instant::now()),
                    interest: READ_INTEREST,
                },
            );
        }

        fn conn_ready(&mut self, token: u64, bits: u32) {
            if bits & sys::EPOLLERR != 0 {
                self.close_conn(token);
                return;
            }
            if bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0 {
                if pol_chaos::fire("serve.conn.read_delay") {
                    // Err action: the transport dies under the reader,
                    // as in the threaded core's poll loop.
                    self.close_conn(token);
                    return;
                }
                let mut frames = Vec::new();
                let event = {
                    let Some(entry) = self.conns.get_mut(&token) else {
                        return;
                    };
                    entry.state.read_ready(
                        &mut entry.stream,
                        self.config.max_frame_bytes,
                        &mut frames,
                    )
                };
                for payload in frames {
                    self.enqueue_frame(token, payload);
                }
                match event {
                    ReadEvent::Open => {}
                    ReadEvent::PeerClosed => {
                        if let Some(entry) = self.conns.get_mut(&token) {
                            entry.state.peer_closed = true;
                        }
                    }
                    ReadEvent::FrameTooLarge(n) => {
                        self.metrics.incr_malformed();
                        if let Some(entry) = self.conns.get_mut(&token) {
                            let resp = Response::Error(format!("frame of {n} bytes exceeds cap"));
                            entry.state.outbox.push_frame(&encode_response(&resp));
                            entry.state.close_after_flush = true;
                        }
                    }
                    ReadEvent::Failed => {
                        self.close_conn(token);
                        return;
                    }
                }
            }
            self.flush_conn(token);
        }

        /// Queues or dispatches one decoded frame. Responses must leave
        /// in request order and the protocol has no request ids, so a
        /// connection has at most one request in the pool at a time;
        /// later frames wait in its pending queue.
        fn enqueue_frame(&mut self, token: u64, payload: Vec<u8>) {
            let Some(entry) = self.conns.get_mut(&token) else {
                return;
            };
            if entry.state.close_after_flush {
                return; // already condemned: don't take new work
            }
            if entry.state.in_flight || !entry.state.pending.is_empty() {
                entry.state.pending.push_back(payload);
            } else {
                self.dispatch(token, payload);
            }
        }

        /// Admission check + hand-off to the pool: the loop-level
        /// expression of the typed Busy backpressure. Returns whether the
        /// request is now in flight on the pool; `false` means it was
        /// answered (shed with Busy) or the connection is gone, so the
        /// caller may feed the next pending frame through immediately.
        fn dispatch(&mut self, token: u64, payload: Vec<u8>) -> bool {
            if self.admitted.fetch_add(1, Ordering::Relaxed) >= self.admit_cap {
                self.admitted.fetch_sub(1, Ordering::Relaxed);
                self.metrics.incr_busy();
                self.metrics.incr_shed_at_loop();
                if let Some(entry) = self.conns.get_mut(&token) {
                    // Shed *this request*, keep the connection: an
                    // immediate Busy frame, never a queue slot.
                    entry
                        .state
                        .outbox
                        .push_frame(&encode_response(&Response::Busy));
                }
                return false;
            }
            let guard = AdmitGuard(Arc::clone(&self.admitted));
            if let Some(entry) = self.conns.get_mut(&token) {
                entry.state.in_flight = true;
            }
            let service = Arc::clone(&self.service);
            let metrics = Arc::clone(&self.metrics);
            let shared = Arc::clone(&self.shared);
            let submitted = self.pool.execute(move || {
                let _admitted = guard;
                execute_job(payload, token, &service, &metrics, shared);
                // Chaos: keep holding the admission slot after the
                // completion has been posted — the window where a
                // pipelined connection's next pending frame meets a full
                // cap at pop time and must be shed, not stranded.
                pol_chaos::fire("serve.worker.slot_hold");
            });
            if submitted.is_err() {
                // Pool shut down underneath us (closure dropped unrun;
                // its AdmitGuard released on the way out). The request
                // can never be answered: close the connection.
                self.close_conn(token);
                return false;
            }
            true
        }

        /// Moves worker results into their connections' write buffers
        /// and feeds each connection's next pending frame through
        /// admission.
        fn apply_completions(&mut self) {
            let done = std::mem::take(&mut *self.shared.completions.lock());
            for completion in done {
                let token = completion.token;
                let Some(entry) = self.conns.get_mut(&token) else {
                    continue; // connection died while the request ran
                };
                entry.state.in_flight = false;
                match completion.reply {
                    Some(bytes) => {
                        entry.state.outbox.push_frame(&bytes);
                        if completion.close_after {
                            entry.state.close_after_flush = true;
                            entry.state.pending.clear();
                        } else {
                            // Keep the pipeline moving even when
                            // admission sheds: a shed answers its frame
                            // with Busy but leaves in_flight false, so
                            // stopping here would strand the rest of the
                            // queue with no completion to ever pop it.
                            // Drain until a dispatch is admitted (the
                            // next completion resumes) or the queue is
                            // empty — every popped frame gets an answer.
                            while let Some(next) = self
                                .conns
                                .get_mut(&token)
                                .and_then(|entry| entry.state.pending.pop_front())
                            {
                                if self.dispatch(token, next) {
                                    break;
                                }
                            }
                        }
                    }
                    None => {
                        // Killed worker: abort without a reply, exactly
                        // like the threaded core.
                        self.close_conn(token);
                        continue;
                    }
                }
                self.flush_conn(token);
            }
        }

        /// Flushes a connection's outbox as far as the socket allows and
        /// re-arms epoll interest: `EPOLLOUT` only while bytes are owed.
        fn flush_conn(&mut self, token: u64) {
            let Some(entry) = self.conns.get_mut(&token) else {
                return;
            };
            if !entry.state.outbox.is_empty() {
                match entry.state.outbox.flush_to(&mut entry.stream) {
                    Ok(n) => {
                        if n > 0 {
                            entry.state.last_write = Instant::now();
                        }
                    }
                    Err(_) => {
                        self.close_conn(token);
                        return;
                    }
                }
                self.metrics
                    .observe_write_buffer(entry.state.outbox.high_water() as u64);
            }
            let drained = entry.state.outbox.is_empty();
            let done = drained
                && (entry.state.close_after_flush
                    || (entry.state.peer_closed
                        && !entry.state.in_flight
                        && entry.state.pending.is_empty()));
            if done {
                self.close_conn(token);
                return;
            }
            // Interest re-arming: EPOLLOUT only while bytes are owed,
            // and EPOLLIN (with RDHUP — also level-triggered) only while
            // the pending pipeline has room, so a full queue applies
            // kernel-buffer backpressure instead of spinning the loop on
            // a socket we refuse to read. EPOLLERR/EPOLLHUP are always
            // reported regardless of the interest mask.
            let mut want = if drained { 0 } else { sys::EPOLLOUT };
            if !entry.state.read_paused() {
                want |= READ_INTEREST;
            }
            if entry.interest != want {
                let fd = entry.stream.as_raw_fd();
                if self.epoll.modify(fd, want, token).is_ok() {
                    if let Some(entry) = self.conns.get_mut(&token) {
                        entry.interest = want;
                    }
                }
            }
        }

        /// Periodic pass over all connections: slow-loris frame
        /// deadlines, slow-reader write stalls, and drain-idle closes.
        /// Runs at the read-timeout tick, not per event batch, so a busy
        /// loop does not pay O(connections) per wakeup.
        fn sweep(&mut self) {
            let draining = self.drain_deadline.is_some();
            let tick = self.config.read_timeout.min(Duration::from_millis(100));
            if !draining && self.last_sweep.elapsed() < tick {
                return;
            }
            self.last_sweep = Instant::now();
            let now = self.last_sweep;
            let stall = self.config.stall_timeout;
            let write_stall = self.config.write_timeout;
            let mut doomed: Vec<u64> = Vec::new();
            for (token, entry) in &self.conns {
                let read_stalled = entry.state.frame_stalled(stall, now);
                let write_stalled = !entry.state.outbox.is_empty()
                    && now.duration_since(entry.state.last_write) > write_stall;
                let drain_idle = draining && entry.state.idle();
                let peer_done = entry.state.peer_closed
                    && !entry.state.in_flight
                    && entry.state.pending.is_empty()
                    && entry.state.outbox.is_empty();
                if read_stalled || write_stalled || drain_idle || peer_done {
                    doomed.push(*token);
                }
            }
            for token in doomed {
                self.close_conn(token);
            }
        }

        /// Stops accepting: drop the listener (new connects get RST),
        /// then let the drain deadline bound the rest. `READY` already
        /// flipped — `Server::shutdown` marks draining before raising
        /// the stop flag, and workers answer `READY` from metrics.
        fn begin_drain(&mut self) {
            self.drain_deadline = Some(Instant::now() + self.config.drain_timeout);
            if let Some(listener) = self.listener.take() {
                self.epoll.del(listener.as_raw_fd());
            }
        }

        fn close_conn(&mut self, token: u64) {
            if let Some(entry) = self.conns.remove(&token) {
                self.epoll.del(entry.stream.as_raw_fd());
                self.metrics.conn_closed();
            }
        }
    }

    /// Best-effort Busy rejection for the reactor thread: one
    /// nonblocking write of the framed response, dropped on
    /// `WouldBlock`. The frame is a handful of bytes, so it fits a
    /// fresh socket's send buffer in practice; when it does not, losing
    /// the courtesy frame beats stalling the event loop — the threaded
    /// core's blocking [`crate::server::reject_busy`] can wait out a full write
    /// timeout, which is fine on a per-connection worker but would
    /// freeze every other connection here. The peer still observes the
    /// close either way.
    fn reject_busy_nonblocking(stream: TcpStream) {
        use std::io::Write;
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let payload = encode_response(&Response::Busy);
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let _ = (&stream).write(&frame);
    }
}
