//! Per-endpoint serving metrics: request counters and latency
//! histograms, exposed through the `STATS` endpoint.
//!
//! Latency is tracked per endpoint in a fixed-width
//! [`pol_sketch::Histogram`] over microseconds (the same machinery the
//! inventory uses for its 30°-bin course histograms), with a
//! [`pol_sketch::Welford`] alongside for exact max. Startup work (load,
//! shard build) is accounted as [`pol_engine::metrics::StageReport`]s in
//! a [`JobMetrics`], so `STATS` shows the server's build stages in the
//! same rendering as a pipeline run.

use parking_lot::Mutex;
use pol_engine::metrics::{JobMetrics, StageReport};
use pol_sketch::{Histogram, Welford};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Upper edge of the latency histograms, microseconds. Slower requests
/// land in the overflow counter and report as `HIST_MAX_US`.
pub const HIST_MAX_US: f64 = 10_000.0;

/// Histogram bin count (10 µs granularity over `0..HIST_MAX_US`).
pub const HIST_BINS: usize = 1000;

/// A served endpoint, used for routing metrics and in `STATS` replies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Liveness probe.
    Ping,
    /// All-traffic point summary.
    PointSummary,
    /// Per-vessel-type point summary.
    SegmentSummary,
    /// Per-route point summary.
    RouteSummary,
    /// Bounding-box occupied-cell scan.
    BboxScan,
    /// Figure-6 top-destination cell filter.
    TopDestinationCells,
    /// ETA estimation.
    Eta,
    /// Streaming destination prediction.
    PredictDestination,
    /// The stats endpoint itself.
    Stats,
    /// Health probe (process alive, snapshot generation, drain state).
    Health,
    /// Readiness probe (accepting and serving traffic).
    Ready,
    /// A protocol-v3 batch frame (children are *not* double-counted
    /// under their own endpoints; the whole frame is one batch request).
    Batch,
}

impl Endpoint {
    /// Every endpoint, in wire-id order.
    pub const ALL: [Endpoint; 12] = [
        Endpoint::Ping,
        Endpoint::PointSummary,
        Endpoint::SegmentSummary,
        Endpoint::RouteSummary,
        Endpoint::BboxScan,
        Endpoint::TopDestinationCells,
        Endpoint::Eta,
        Endpoint::PredictDestination,
        Endpoint::Stats,
        Endpoint::Health,
        Endpoint::Ready,
        Endpoint::Batch,
    ];

    /// Stable wire id.
    pub fn id(self) -> u8 {
        match self {
            Endpoint::Ping => 0,
            Endpoint::PointSummary => 1,
            Endpoint::SegmentSummary => 2,
            Endpoint::RouteSummary => 3,
            Endpoint::BboxScan => 4,
            Endpoint::TopDestinationCells => 5,
            Endpoint::Eta => 6,
            Endpoint::PredictDestination => 7,
            Endpoint::Stats => 8,
            Endpoint::Health => 9,
            Endpoint::Ready => 10,
            Endpoint::Batch => 11,
        }
    }

    /// Inverse of [`Endpoint::id`].
    pub fn from_id(id: u8) -> Option<Endpoint> {
        Endpoint::ALL.get(id as usize).copied()
    }

    /// Human-readable name used in `BENCH_serve.json` and log lines.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Ping => "ping",
            Endpoint::PointSummary => "point_summary",
            Endpoint::SegmentSummary => "segment_summary",
            Endpoint::RouteSummary => "route_summary",
            Endpoint::BboxScan => "bbox_scan",
            Endpoint::TopDestinationCells => "top_destination_cells",
            Endpoint::Eta => "eta",
            Endpoint::PredictDestination => "predict_destination",
            Endpoint::Stats => "stats",
            Endpoint::Health => "health",
            Endpoint::Ready => "ready",
            Endpoint::Batch => "batch",
        }
    }
}

/// The `HEALTH` endpoint's reply body: is the process serving, which
/// snapshot generation is live, and is the server draining for shutdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthReport {
    /// The server is up and executing queries.
    pub healthy: bool,
    /// Monotonic snapshot generation (bumped by every successful hot
    /// reload; starts at 1 for the boot snapshot).
    pub generation: u64,
    /// The server is draining connections ahead of shutdown; load
    /// balancers should route new traffic elsewhere.
    pub draining: bool,
}

/// One endpoint's row in a [`StatsReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct EndpointStats {
    /// Which endpoint.
    pub endpoint: Endpoint,
    /// Requests served.
    pub count: u64,
    /// Median latency, microseconds (histogram bin upper edge).
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Slowest observed request, microseconds (exact).
    pub max_us: f64,
}

/// A point-in-time snapshot of the server's counters — the `STATS`
/// endpoint's reply body.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReport {
    /// Requests decoded and executed (any endpoint).
    pub total_requests: u64,
    /// Connections rejected with [`crate::proto::Response::Busy`].
    pub busy_rejections: u64,
    /// Frames that failed to decode.
    pub malformed_frames: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Aggregate-query cache hits (bbox scans, top-destination filters).
    pub cache_hits: u64,
    /// Aggregate-query cache misses.
    pub cache_misses: u64,
    /// Live snapshot generation (see [`HealthReport::generation`]).
    pub generation: u64,
    /// Successful hot snapshot reloads.
    pub reloads_ok: u64,
    /// Rejected hot reloads (corrupt or unreadable file; the previous
    /// snapshot stayed live).
    pub reloads_failed: u64,
    /// Sub-requests carried inside protocol-v3 `BATCH` frames (each
    /// batch frame counts once under [`Endpoint::Batch`]; this counter
    /// accounts its children).
    pub batched_requests: u64,
    /// Point lookups the mapped store answered by binary search over the
    /// snapshot file (zero on the heap backend).
    pub mapped_lookups: u64,
    /// Section entries / lat-index rows the mapped store touched during
    /// scans (zero on the heap backend).
    pub mapped_scan_entries: u64,
    /// Newest delta generation merged into the live snapshot (0 when the
    /// snapshot was not loaded from a delta chain).
    pub delta_generation: u64,
    /// Files in the loaded delta chain, base included (1 for a plain
    /// snapshot, 0 when unknown).
    pub chain_len: u64,
    /// Whole seconds since the last successful hot reload (since process
    /// start if none happened yet) — the streaming-freshness signal.
    pub since_reload_secs: u64,
    /// Connections currently open on the server (reactor core tracks
    /// this exactly; the threaded core counts admitted connections).
    pub open_connections: u64,
    /// High-water mark of `open_connections` over the server's lifetime.
    pub peak_connections: u64,
    /// Readiness events delivered by `epoll_wait` to the reactor loop
    /// (zero on the threaded core).
    pub ready_events: u64,
    /// Cross-thread eventfd wakeups the reactor consumed — each one is a
    /// worker handing completed responses back to the loop.
    pub wakeups: u64,
    /// Requests shed with `Busy` by the event loop's admission check
    /// (a subset of `busy_rejections`; zero on the threaded core, which
    /// sheds whole connections at accept instead).
    pub shed_at_loop: u64,
    /// Largest per-connection write buffer observed, bytes — how far a
    /// slow reader ever got behind before `EPOLLOUT` caught it up.
    pub write_buffer_high_water: u64,
    /// The live store backend ("sharded-heap" or "mapped-columnar").
    pub store: String,
    /// Per-endpoint counters, in [`Endpoint::ALL`] order, endpoints with
    /// zero traffic omitted.
    pub endpoints: Vec<EndpointStats>,
    /// Startup stage accounting rendered by
    /// [`pol_engine::metrics::JobMetrics::render`].
    pub stages: String,
}

impl StatsReport {
    /// Renders the report as a human-readable table: the counter block,
    /// then one latency row per endpoint, then the startup stages — the
    /// `--stats` rendering used by `polinv serve` and `polload`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "store={} generation={} requests={} batched={} connections={}",
            self.store,
            self.generation,
            self.total_requests,
            self.batched_requests,
            self.connections
        );
        let _ = writeln!(
            out,
            "busy={} malformed={} cache_hit={} cache_miss={} reloads_ok={} reloads_failed={}",
            self.busy_rejections,
            self.malformed_frames,
            self.cache_hits,
            self.cache_misses,
            self.reloads_ok,
            self.reloads_failed
        );
        let _ = writeln!(
            out,
            "mapped_lookups={} mapped_scan_entries={}",
            self.mapped_lookups, self.mapped_scan_entries
        );
        let _ = writeln!(
            out,
            "delta_generation={} chain_len={} since_reload_secs={}",
            self.delta_generation, self.chain_len, self.since_reload_secs
        );
        let _ = writeln!(
            out,
            "open_connections={} peak_connections={} ready_events={} wakeups={} \
             shed_at_loop={} write_buffer_high_water={}",
            self.open_connections,
            self.peak_connections,
            self.ready_events,
            self.wakeups,
            self.shed_at_loop,
            self.write_buffer_high_water
        );
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>9} {:>9} {:>9} {:>9}",
            "endpoint", "count", "p50_us", "p95_us", "p99_us", "max_us"
        );
        for ep in &self.endpoints {
            let _ = writeln!(
                out,
                "{:<22} {:>10} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                ep.endpoint.name(),
                ep.count,
                ep.p50_us,
                ep.p95_us,
                ep.p99_us,
                ep.max_us
            );
        }
        if !self.stages.is_empty() {
            out.push_str(&self.stages);
        }
        out
    }
}

struct EndpointSlot {
    count: AtomicU64,
    lat: Mutex<(Histogram, Welford)>,
}

impl EndpointSlot {
    fn new() -> EndpointSlot {
        EndpointSlot {
            count: AtomicU64::new(0),
            lat: Mutex::new((Histogram::new(0.0, HIST_MAX_US, HIST_BINS), Welford::new())),
        }
    }
}

/// Shared, thread-safe serving counters. One instance per server.
pub struct ServerMetrics {
    slots: Vec<EndpointSlot>,
    busy_rejections: AtomicU64,
    malformed_frames: AtomicU64,
    connections: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    generation: AtomicU64,
    reloads_ok: AtomicU64,
    reloads_failed: AtomicU64,
    batched_requests: AtomicU64,
    delta_generation: AtomicU64,
    chain_len: AtomicU64,
    open_connections: AtomicU64,
    peak_connections: AtomicU64,
    ready_events: AtomicU64,
    wakeups: AtomicU64,
    shed_at_loop: AtomicU64,
    write_buffer_high_water: AtomicU64,
    /// Process-start anchor for the freshness clock.
    started: Instant,
    /// Milliseconds after `started` of the last successful reload
    /// (0 = never reloaded, so freshness counts from process start).
    last_reload_millis: AtomicU64,
    draining: AtomicBool,
    jobs: JobMetrics,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh zeroed counters.
    pub fn new() -> ServerMetrics {
        ServerMetrics {
            slots: Endpoint::ALL.iter().map(|_| EndpointSlot::new()).collect(),
            busy_rejections: AtomicU64::new(0),
            malformed_frames: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            generation: AtomicU64::new(1),
            reloads_ok: AtomicU64::new(0),
            reloads_failed: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            delta_generation: AtomicU64::new(0),
            chain_len: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            peak_connections: AtomicU64::new(0),
            ready_events: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            shed_at_loop: AtomicU64::new(0),
            write_buffer_high_water: AtomicU64::new(0),
            started: Instant::now(),
            last_reload_millis: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            jobs: JobMetrics::default(),
        }
    }

    /// Accounts one served request.
    pub fn record(&self, endpoint: Endpoint, wall: Duration) {
        if let Some(slot) = self.slots.get(endpoint.id() as usize) {
            slot.count.fetch_add(1, Ordering::Relaxed);
            let us = wall.as_secs_f64() * 1e6;
            let mut lat = slot.lat.lock();
            lat.0.add(us);
            lat.1.add(us);
        }
    }

    /// Accounts a startup stage (inventory load, shard build, …).
    pub fn record_stage(&self, report: StageReport) {
        self.jobs.record(report);
    }

    /// Counts a busy rejection.
    pub fn incr_busy(&self) {
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an undecodable frame.
    pub fn incr_malformed(&self) {
        self.malformed_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an accepted connection.
    pub fn incr_connections(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the open-connection gauge (and its high-water mark) by one.
    pub fn conn_opened(&self) {
        let now = self.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(now, Ordering::Relaxed);
    }

    /// Lowers the open-connection gauge by one.
    pub fn conn_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Accounts `n` readiness events delivered by one `epoll_wait`.
    pub fn add_ready_events(&self, n: u64) {
        self.ready_events.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one consumed cross-thread eventfd wakeup.
    pub fn incr_wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request shed with `Busy` by the event loop's admission
    /// check (callers also bump the shared busy counter via
    /// [`ServerMetrics::incr_busy`]).
    pub fn incr_shed_at_loop(&self) {
        self.shed_at_loop.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a per-connection write-buffer depth; keeps the maximum.
    pub fn observe_write_buffer(&self, bytes: u64) {
        self.write_buffer_high_water
            .fetch_max(bytes, Ordering::Relaxed);
    }

    /// The open-connection gauge, as served in `STATS`.
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Counts an aggregate-cache hit.
    pub fn incr_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an aggregate-cache miss.
    pub fn incr_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts `n` sub-requests carried by one `BATCH` frame.
    pub fn add_batched(&self, n: u64) {
        self.batched_requests.fetch_add(n, Ordering::Relaxed);
    }

    /// Accounts a successful hot reload: the generation advances so
    /// clients can observe which snapshot answered them, and the
    /// freshness clock restarts.
    pub fn reload_succeeded(&self) {
        self.reloads_ok.fetch_add(1, Ordering::Relaxed);
        self.generation.fetch_add(1, Ordering::Release);
        let millis = self.started.elapsed().as_millis() as u64;
        self.last_reload_millis.store(millis, Ordering::Relaxed);
    }

    /// Records the delta-chain lineage of the live snapshot: the newest
    /// merged delta generation and the chain length (base included).
    /// Called whenever a snapshot or chain is loaded or hot-reloaded.
    pub fn set_chain(&self, delta_generation: u64, chain_len: u64) {
        self.delta_generation
            .store(delta_generation, Ordering::Relaxed);
        self.chain_len.store(chain_len, Ordering::Relaxed);
    }

    /// Whole seconds since the last successful reload (since process
    /// start if none happened yet).
    pub fn since_reload_secs(&self) -> u64 {
        let now = self.started.elapsed().as_millis() as u64;
        let last = self.last_reload_millis.load(Ordering::Relaxed);
        now.saturating_sub(last) / 1000
    }

    /// Accounts a rejected hot reload (the old snapshot stayed live, so
    /// the generation does not move).
    pub fn reload_failed(&self) {
        self.reloads_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// The live snapshot generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Flags the server as draining (shutdown underway).
    pub fn set_draining(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Whether the server is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// The `HEALTH` endpoint's view of this server.
    pub fn health(&self) -> HealthReport {
        HealthReport {
            healthy: true,
            generation: self.generation(),
            draining: self.is_draining(),
        }
    }

    /// Requests served so far across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshots everything into a wire-encodable report.
    pub fn snapshot(&self) -> StatsReport {
        let mut endpoints = Vec::new();
        for ep in Endpoint::ALL {
            let Some(slot) = self.slots.get(ep.id() as usize) else {
                continue;
            };
            let count = slot.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let lat = slot.lat.lock();
            endpoints.push(EndpointStats {
                endpoint: ep,
                count,
                p50_us: histogram_quantile_us(&lat.0, 0.50),
                p95_us: histogram_quantile_us(&lat.0, 0.95),
                p99_us: histogram_quantile_us(&lat.0, 0.99),
                max_us: lat.1.max().unwrap_or(0.0),
            });
        }
        StatsReport {
            total_requests: self.total_requests(),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            generation: self.generation(),
            reloads_ok: self.reloads_ok.load(Ordering::Relaxed),
            reloads_failed: self.reloads_failed.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            delta_generation: self.delta_generation.load(Ordering::Relaxed),
            chain_len: self.chain_len.load(Ordering::Relaxed),
            since_reload_secs: self.since_reload_secs(),
            open_connections: self.open_connections.load(Ordering::Relaxed),
            peak_connections: self.peak_connections.load(Ordering::Relaxed),
            ready_events: self.ready_events.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            shed_at_loop: self.shed_at_loop.load(Ordering::Relaxed),
            write_buffer_high_water: self.write_buffer_high_water.load(Ordering::Relaxed),
            // The store identity and its counters live on the service,
            // not here; `InventoryService` fills them in before replying.
            mapped_lookups: 0,
            mapped_scan_entries: 0,
            store: String::new(),
            endpoints,
            stages: self.jobs.render(),
        }
    }
}

/// Reads quantile `q` off a latency histogram: the upper edge of the bin
/// where the cumulative count crosses `q·total` (≤ one bin width of
/// overestimate). Observations past the histogram range report as
/// [`HIST_MAX_US`].
pub fn histogram_quantile_us(h: &Histogram, q: f64) -> f64 {
    let total = h.total();
    if total == 0 {
        return 0.0;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut cum = h.underflow();
    if cum >= target {
        return 0.0;
    }
    for (_, hi, count) in h.bins() {
        cum += count;
        if cum >= target {
            return hi;
        }
    }
    HIST_MAX_US
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_ids_round_trip() {
        for ep in Endpoint::ALL {
            assert_eq!(Endpoint::from_id(ep.id()), Some(ep));
        }
        assert_eq!(Endpoint::from_id(200), None);
    }

    #[test]
    fn quantiles_from_histogram() {
        let mut h = Histogram::new(0.0, HIST_MAX_US, HIST_BINS);
        for i in 0..100 {
            h.add(i as f64 * 10.0); // 0, 10, …, 990 µs
        }
        let p50 = histogram_quantile_us(&h, 0.5);
        assert!((400.0..=600.0).contains(&p50), "p50 {p50}");
        let p99 = histogram_quantile_us(&h, 0.99);
        assert!((950.0..=1000.0).contains(&p99), "p99 {p99}");
        assert_eq!(
            histogram_quantile_us(&Histogram::new(0.0, 1.0, 2), 0.5),
            0.0
        );
    }

    #[test]
    fn overflow_reports_hist_max() {
        let mut h = Histogram::new(0.0, HIST_MAX_US, HIST_BINS);
        for _ in 0..10 {
            h.add(HIST_MAX_US * 5.0);
        }
        assert_eq!(histogram_quantile_us(&h, 0.5), HIST_MAX_US);
    }

    #[test]
    fn snapshot_reflects_recordings() {
        let m = ServerMetrics::new();
        m.record(Endpoint::PointSummary, Duration::from_micros(100));
        m.record(Endpoint::PointSummary, Duration::from_micros(300));
        m.record(Endpoint::Eta, Duration::from_micros(900));
        m.incr_busy();
        m.incr_cache_hit();
        m.incr_cache_miss();
        m.incr_connections();
        let snap = m.snapshot();
        assert_eq!(snap.total_requests, 3);
        assert_eq!(snap.busy_rejections, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.connections, 1);
        assert_eq!(snap.endpoints.len(), 2); // zero-traffic endpoints omitted
        let point = &snap.endpoints[0];
        assert_eq!(point.endpoint, Endpoint::PointSummary);
        assert_eq!(point.count, 2);
        assert!(point.max_us >= 300.0);
        assert!(point.p50_us > 0.0 && point.p50_us <= point.p99_us);
    }

    #[test]
    fn event_loop_counters_flow_into_snapshot() {
        let m = ServerMetrics::new();
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.add_ready_events(7);
        m.incr_wakeup();
        m.incr_shed_at_loop();
        m.observe_write_buffer(4096);
        m.observe_write_buffer(512); // smaller: high water must hold
        let snap = m.snapshot();
        assert_eq!(snap.open_connections, 1);
        assert_eq!(snap.peak_connections, 2);
        assert_eq!(snap.ready_events, 7);
        assert_eq!(snap.wakeups, 1);
        assert_eq!(snap.shed_at_loop, 1);
        assert_eq!(snap.write_buffer_high_water, 4096);
        let rendered = snap.render();
        assert!(rendered.contains("open_connections=1"), "{rendered}");
        assert!(rendered.contains("shed_at_loop=1"), "{rendered}");
        assert!(rendered.contains("ready_events=7"), "{rendered}");
    }

    #[test]
    fn stages_render_into_snapshot() {
        let m = ServerMetrics::new();
        m.record_stage(StageReport {
            name: "shard".into(),
            input_records: 10,
            output_records: 10,
            shuffled_records: 0,
            wall: Duration::from_millis(2),
        });
        assert!(m.snapshot().stages.contains("shard"));
    }
}
