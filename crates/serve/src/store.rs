//! The serving-side read store: a hash-sharded, read-only view of an
//! [`Inventory`] plus an LRU cache for the expensive aggregate queries.
//!
//! Sharding splits the single entry map into `n` smaller maps keyed by a
//! mix of the cell index. Point lookups touch exactly one shard (smaller
//! probe footprint, better cache residency under concurrent load);
//! whole-inventory scans (bbox, top-destination) fan out across shards
//! and merge. The split is loss-free: every query answers exactly as the
//! unsharded inventory would, which the loopback integration test
//! asserts endpoint by endpoint.

use crate::mapped::{MappedCounters, MappedStore};
use pol_ais::types::MarketSegment;
use pol_core::features::{CellStats, GroupKey};
use pol_core::{Inventory, InventoryQuery};
use pol_geo::BBox;
use pol_hexgrid::{CellIndex, Resolution};
use pol_sketch::hash::{mix64, FxHashMap};
use std::borrow::Cow;
use std::sync::Arc;

/// A read-only inventory split into cell-hash shards.
pub struct ShardedStore {
    resolution: Resolution,
    total_records: u64,
    entries: usize,
    shards: Vec<Inventory>,
}

impl ShardedStore {
    /// Splits an inventory into `n_shards` (at least 1) hash shards.
    pub fn new(inventory: Inventory, n_shards: usize) -> ShardedStore {
        let n = n_shards.max(1);
        let (resolution, entries, total_records) = inventory.into_entries();
        let entry_count = entries.len();
        let mut maps: Vec<FxHashMap<GroupKey, CellStats>> =
            (0..n).map(|_| FxHashMap::default()).collect();
        for (key, stats) in entries {
            let shard = shard_of(key.cell(), n);
            if let Some(map) = maps.get_mut(shard) {
                map.insert(key, stats);
            }
        }
        let shards = maps
            .into_iter()
            .map(|m| Inventory::from_entries(resolution, m, 0))
            .collect();
        ShardedStore {
            resolution,
            total_records,
            entries: entry_count,
            shards,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total group-identifier entries across all shards.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Records summarised by the underlying inventory.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    fn shard_for(&self, cell: CellIndex) -> &Inventory {
        let idx = shard_of(cell, self.shards.len());
        // shard_of is always < len; fall back to shard 0 defensively
        // rather than indexing (this crate is panic-free by lint).
        self.shards.get(idx).or(self.shards.first()).unwrap_or_else(
            // lint: allow(no_unwrap) — the constructor guarantees at
            // least one shard; an empty shard vector is unreachable.
            || unreachable!("ShardedStore built with zero shards"),
        )
    }

    /// Occupied cells whose centre falls inside a bounding box, merged
    /// across shards and sorted for a canonical reply.
    pub fn cells_in(&self, bbox: &BBox) -> Vec<CellIndex> {
        let mut cells: Vec<CellIndex> = self.shards.iter().flat_map(|s| s.cells_in(bbox)).collect();
        cells.sort_unstable();
        cells
    }

    /// Occupied cells whose most frequent destination is `dest`, merged
    /// across shards and sorted for a canonical reply.
    pub fn cells_with_top_destination(
        &self,
        dest: u16,
        segment: Option<MarketSegment>,
    ) -> Vec<CellIndex> {
        let mut cells: Vec<CellIndex> = self
            .shards
            .iter()
            .flat_map(|s| s.cells_with_top_destination(dest, segment))
            .collect();
        cells.sort_unstable();
        cells
    }
}

impl InventoryQuery for ShardedStore {
    fn resolution(&self) -> Resolution {
        self.resolution
    }

    fn summary(&self, cell: CellIndex) -> Option<Cow<'_, CellStats>> {
        self.shard_for(cell).summary(cell).map(Cow::Borrowed)
    }

    fn summary_for(&self, cell: CellIndex, segment: MarketSegment) -> Option<Cow<'_, CellStats>> {
        self.shard_for(cell)
            .summary_for(cell, segment)
            .map(Cow::Borrowed)
    }

    fn summary_route(
        &self,
        cell: CellIndex,
        origin: u16,
        dest: u16,
        segment: MarketSegment,
    ) -> Option<Cow<'_, CellStats>> {
        self.shard_for(cell)
            .summary_route(cell, origin, dest, segment)
            .map(Cow::Borrowed)
    }
}

fn shard_of(cell: CellIndex, n: usize) -> usize {
    (mix64(cell.raw()) % n.max(1) as u64) as usize
}

// ---------------------------------------------------------------------
// Backend dispatch
// ---------------------------------------------------------------------

/// The two read-store implementations a server can serve from: the heap
/// [`ShardedStore`] (any snapshot, built by full deserialize) and the
/// zero-copy [`MappedStore`] (POLINV3 snapshots, opened by mmap +
/// validation). An enum rather than a trait object because the scan
/// queries and counters are not part of [`InventoryQuery`], and the
/// dispatch cost of two arms is nil next to a query.
pub enum StoreBackend {
    /// Heap-resident hash shards (POLINV2 fallback / in-process builds).
    Sharded(ShardedStore),
    /// Memory-mapped columnar snapshot (POLINV3).
    Mapped(MappedStore),
}

impl StoreBackend {
    /// A short name for metrics and logs.
    pub fn name(&self) -> &'static str {
        match self {
            StoreBackend::Sharded(_) => "sharded-heap",
            StoreBackend::Mapped(_) => "mapped-columnar",
        }
    }

    /// Total group-identifier entries.
    pub fn len(&self) -> usize {
        match self {
            StoreBackend::Sharded(s) => s.len(),
            StoreBackend::Mapped(m) => m.len(),
        }
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records summarised by the underlying inventory.
    pub fn total_records(&self) -> u64 {
        match self {
            StoreBackend::Sharded(s) => s.total_records(),
            StoreBackend::Mapped(m) => m.total_records(),
        }
    }

    /// Occupied cells whose centre falls inside a bounding box, sorted
    /// by raw cell index — both backends reply in the same canonical
    /// order.
    pub fn cells_in(&self, bbox: &BBox) -> Vec<CellIndex> {
        match self {
            StoreBackend::Sharded(s) => s.cells_in(bbox),
            StoreBackend::Mapped(m) => m.cells_in(bbox),
        }
    }

    /// Occupied cells whose most frequent destination is `dest`, sorted
    /// by raw cell index.
    pub fn cells_with_top_destination(
        &self,
        dest: u16,
        segment: Option<MarketSegment>,
    ) -> Vec<CellIndex> {
        match self {
            StoreBackend::Sharded(s) => s.cells_with_top_destination(dest, segment),
            StoreBackend::Mapped(m) => m.cells_with_top_destination(dest, segment),
        }
    }

    /// The mapped store's work counters (`None` for the heap backend).
    pub fn mapped_counters(&self) -> Option<MappedCounters> {
        match self {
            StoreBackend::Sharded(_) => None,
            StoreBackend::Mapped(m) => Some(m.counters()),
        }
    }
}

impl InventoryQuery for StoreBackend {
    fn resolution(&self) -> Resolution {
        match self {
            StoreBackend::Sharded(s) => InventoryQuery::resolution(s),
            StoreBackend::Mapped(m) => InventoryQuery::resolution(m),
        }
    }

    fn summary(&self, cell: CellIndex) -> Option<Cow<'_, CellStats>> {
        match self {
            StoreBackend::Sharded(s) => s.summary(cell),
            StoreBackend::Mapped(m) => m.summary(cell),
        }
    }

    fn summary_for(&self, cell: CellIndex, segment: MarketSegment) -> Option<Cow<'_, CellStats>> {
        match self {
            StoreBackend::Sharded(s) => s.summary_for(cell, segment),
            StoreBackend::Mapped(m) => m.summary_for(cell, segment),
        }
    }

    fn summary_route(
        &self,
        cell: CellIndex,
        origin: u16,
        dest: u16,
        segment: MarketSegment,
    ) -> Option<Cow<'_, CellStats>> {
        match self {
            StoreBackend::Sharded(s) => s.summary_route(cell, origin, dest, segment),
            StoreBackend::Mapped(m) => m.summary_route(cell, origin, dest, segment),
        }
    }
}

// ---------------------------------------------------------------------
// Aggregate-query LRU cache
// ---------------------------------------------------------------------

/// Cache key for the two scan-shaped queries. Bbox edges are keyed by
/// their IEEE-754 bit patterns, so any byte-identical request hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// `BboxScan` edges as f64 bit patterns (min_lat, min_lon, max_lat,
    /// max_lon).
    Bbox([u64; 4]),
    /// `TopDestinationCells` arguments (dest, segment id).
    TopDest(u16, Option<u8>),
}

/// A small least-recently-used cache mapping scan queries to their reply
/// cell lists. Values are `Arc`-shared so concurrent hits clone a
/// pointer, not the list.
pub struct QueryCache {
    capacity: usize,
    tick: u64,
    map: FxHashMap<CacheKey, (Arc<Vec<u64>>, u64)>,
}

impl QueryCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity,
            tick: 0,
            map: FxHashMap::default(),
        }
    }

    /// Looks up a key, refreshing its recency on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Vec<u64>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, used)| {
            *used = tick;
            Arc::clone(v)
        })
    }

    /// Inserts a value, evicting the least-recently-used entry when full.
    pub fn put(&mut self, key: CacheKey, value: Arc<Vec<u64>>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Linear eviction scan: the cache is deliberately small
            // (hundreds of entries), so O(n) beats the bookkeeping cost
            // of an intrusive list at this size.
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_core::records::{CellPoint, TripPoint};
    use pol_geo::LatLon;
    use pol_hexgrid::cell_at;

    fn res() -> Resolution {
        Resolution::new(6).unwrap()
    }

    fn sample_inventory(n: usize) -> Inventory {
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        for i in 0..n {
            let pos = LatLon::new(-50.0 + (i % 100) as f64, (i % 160) as f64).unwrap();
            let cell = cell_at(pos, res());
            let cp = CellPoint {
                point: TripPoint {
                    mmsi: pol_ais::types::Mmsi(1 + (i % 7) as u32),
                    timestamp: i as i64,
                    pos,
                    sog_knots: Some(9.0 + (i % 12) as f64),
                    cog_deg: Some((i * 31 % 360) as f64),
                    heading_deg: Some((i * 29 % 360) as f64),
                    segment: MarketSegment::from_id((i % 6) as u8).unwrap(),
                    trip_id: (i % 11) as u64,
                    origin: (i % 5) as u16,
                    dest: (i % 7) as u16,
                    eto_secs: i as i64 * 30,
                    ata_secs: (n - i) as i64 * 30,
                },
                cell,
                next_cell: None,
            };
            for key in [
                GroupKey::Cell(cell),
                GroupKey::CellType(cell, cp.point.segment),
                GroupKey::CellRoute(cell, cp.point.origin, cp.point.dest, cp.point.segment),
            ] {
                entries
                    .entry(key)
                    .or_insert_with(|| CellStats::new(0.02, 8))
                    .observe(&cp);
            }
        }
        Inventory::from_entries(res(), entries, n as u64)
    }

    #[test]
    fn sharding_preserves_every_lookup() {
        let reference = sample_inventory(400);
        let store = ShardedStore::new(sample_inventory(400), 8);
        assert_eq!(store.n_shards(), 8);
        assert_eq!(store.len(), reference.len());
        assert_eq!(store.total_records(), reference.total_records());
        assert_eq!(
            InventoryQuery::resolution(&store),
            Inventory::resolution(&reference)
        );
        for (key, stats) in reference.iter() {
            let got = match key {
                GroupKey::Cell(c) => store.summary(*c),
                GroupKey::CellType(c, s) => store.summary_for(*c, *s),
                GroupKey::CellRoute(c, o, d, s) => store.summary_route(*c, *o, *d, *s),
            };
            let got = got.unwrap_or_else(|| panic!("missing {key:?}"));
            assert_eq!(got.records, stats.records);
            assert_eq!(got.top_destinations(3), stats.top_destinations(3));
        }
    }

    #[test]
    fn scans_match_unsharded_inventory() {
        let reference = sample_inventory(400);
        let store = ShardedStore::new(sample_inventory(400), 5);
        let bbox = BBox::new(-20.0, 10.0, 40.0, 120.0).unwrap();
        let mut want = reference.cells_in(&bbox);
        want.sort_unstable();
        assert_eq!(store.cells_in(&bbox), want);
        for dest in 0..7u16 {
            let mut want = reference.cells_with_top_destination(dest, None);
            want.sort_unstable();
            assert_eq!(store.cells_with_top_destination(dest, None), want, "{dest}");
        }
    }

    #[test]
    fn single_shard_degenerates_gracefully() {
        let store = ShardedStore::new(sample_inventory(50), 0); // clamped to 1
        assert_eq!(store.n_shards(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn cache_hits_and_lru_eviction() {
        let mut cache = QueryCache::new(2);
        let (a, b, c) = (
            CacheKey::TopDest(1, None),
            CacheKey::TopDest(2, None),
            CacheKey::Bbox([0, 1, 2, 3]),
        );
        cache.put(a, Arc::new(vec![1]));
        cache.put(b, Arc::new(vec![2]));
        assert_eq!(cache.get(&a).map(|v| v[0]), Some(1)); // refresh a
        cache.put(c, Arc::new(vec![3])); // evicts b (least recent)
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&c).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = QueryCache::new(0);
        cache.put(CacheKey::TopDest(1, None), Arc::new(vec![1]));
        assert!(cache.is_empty());
        assert!(cache.get(&CacheKey::TopDest(1, None)).is_none());
    }

    #[test]
    fn updating_existing_key_does_not_evict() {
        let mut cache = QueryCache::new(2);
        let (a, b) = (CacheKey::TopDest(1, None), CacheKey::TopDest(2, None));
        cache.put(a, Arc::new(vec![1]));
        cache.put(b, Arc::new(vec![2]));
        cache.put(a, Arc::new(vec![9])); // update in place
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&a).map(|v| v[0]), Some(9));
        assert!(cache.get(&b).is_some());
    }
}
