//! A blocking, self-healing client for the `pol-serve` wire protocol.
//!
//! One [`Client`] owns (at most) one connection and issues requests
//! synchronously; for concurrency, open one client per thread (the load
//! generator in `pol-bench` does exactly that). Server-side conditions
//! surface as typed errors: [`ClientError::ServerBusy`] for backpressure
//! shedding, [`ClientError::ServerError`] for rejected arguments.
//!
//! ## Failure model
//!
//! The connection is made with a bounded [`ClientConfig::connect_timeout`]
//! and carries write (and optionally read) timeouts, so no call blocks
//! forever on a wedged peer. When a request fails in a *retryable* way —
//! the transport died (connection reset, closed, timed out) or the server
//! shed load with `Busy` — and the request is idempotent
//! ([`Request::is_idempotent`]), the typed helpers transparently
//! reconnect and retry with exponential backoff and deterministic jitter,
//! bounded by [`RetryPolicy::max_attempts`] and a total
//! [`RetryPolicy::deadline`] budget. Non-idempotent requests (none exist
//! today; the gate is for future mutating endpoints) and non-retryable
//! errors (a typed `ServerError`, a protocol violation) surface
//! immediately. A retried request is sent on a **fresh** connection:
//! there is never a half-written frame to resynchronise.

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, ProtoError, Request, Response,
    DEFAULT_MAX_FRAME_BYTES,
};
use pol_ais::types::MarketSegment;
use pol_apps::eta::EtaEstimate;
use pol_core::CellStats;
use std::fmt;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Everything a request round-trip can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or protocol failure (after retries, if any applied).
    Proto(ProtoError),
    /// The server shed this connection under load (after retries).
    ServerBusy,
    /// The server rejected the request (message carried from the wire).
    ServerError(String),
    /// The server answered with a response type the request cannot
    /// produce.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Proto(e) => write!(f, "client protocol error: {e}"),
            Self::ServerBusy => write!(f, "server busy, retry later"),
            Self::ServerError(msg) => write!(f, "server rejected request: {msg}"),
            Self::Unexpected(what) => write!(f, "unexpected response type: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        Self::Proto(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Proto(ProtoError::Io(e))
    }
}

/// Automatic-retry tuning for idempotent requests.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total tries, including the first (1 disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Total wall-clock budget across all attempts and backoffs. Once a
    /// retry could not start before this deadline, the last error
    /// surfaces instead.
    pub deadline: Duration,
    /// Seed of the deterministic jitter stream (each backoff sleeps
    /// between half and the full computed value).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            deadline: Duration::from_secs(10),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Connection and resilience tuning for [`Client::connect_with`].
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout (a black-holed address fails in bounded time
    /// instead of the kernel's minutes-long default).
    pub connect_timeout: Duration,
    /// Socket read timeout for responses (`None`: wait indefinitely).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout for requests (`None`: wait indefinitely).
    pub write_timeout: Option<Duration>,
    /// Per-frame size cap, both directions.
    pub max_frame_bytes: usize,
    /// Retry behaviour for idempotent requests.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: None,
            write_timeout: Some(Duration::from_secs(5)),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            retry: RetryPolicy::default(),
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    /// Written directly (no `BufWriter`): every request is encoded to a
    /// complete frame first and pushed through [`send_framed`], which
    /// owns the short-write handling.
    writer: TcpStream,
}

/// A blocking connection to a `pol-serve` server that reconnects and
/// retries idempotent requests on transport failure.
pub struct Client {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    conn: Option<Conn>,
    jitter: u64,
}

impl Client {
    /// Connects with the default [`ClientConfig`] (5 s connect/write
    /// timeouts, retries on).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit tuning. The address is resolved once; a
    /// reconnect retries every resolved address in order.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Proto(ProtoError::Io(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            ))));
        }
        let mut client = Client {
            addrs,
            config,
            conn: None,
            jitter: config.retry.jitter_seed | 1,
        };
        client.reconnect()?;
        Ok(client)
    }

    /// Drops the current connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// Sets the socket read timeout for this and future connections.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.config.read_timeout = timeout;
        if let Some(conn) = &self.conn {
            conn.reader.get_ref().set_read_timeout(timeout)?;
        }
        Ok(())
    }

    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.conn = None;
        let mut last_err: Option<io::Error> = None;
        for addr in &self.addrs {
            match TcpStream::connect_timeout(addr, self.config.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(self.config.read_timeout)?;
                    stream.set_write_timeout(self.config.write_timeout)?;
                    let read_half = stream.try_clone()?;
                    self.conn = Some(Conn {
                        reader: BufReader::new(read_half),
                        writer: stream,
                    });
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .map(|e| ClientError::Proto(ProtoError::Io(e)))
            .unwrap_or(ClientError::Unexpected("no addresses to connect to")))
    }

    /// One request/response exchange on the current connection (lazily
    /// reconnecting if there is none). No retries: transport errors
    /// surface directly. [`Client::request`] adds the retry layer.
    pub fn request_once(&mut self, req: &Request) -> Result<Response, ClientError> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let conn = self
            .conn
            .as_mut()
            .ok_or(ClientError::Unexpected("not connected"))?;
        let write_budget = self.config.write_timeout.unwrap_or(Duration::from_secs(5));
        let result = (|| {
            // Encode the whole frame up front, then push it with the
            // explicit short-write loop: a momentarily full kernel
            // buffer (EAGAIN-style timeout mid-frame) retries within
            // the write budget instead of abandoning a half-written
            // frame and poisoning a connection that was merely slow.
            let payload = encode_request(req);
            let mut framed = Vec::with_capacity(payload.len() + 4);
            write_frame(&mut framed, &payload).map_err(ProtoError::Io)?;
            send_framed(&mut conn.writer, &framed, write_budget).map_err(ProtoError::Io)?;
            conn.writer.flush().map_err(ProtoError::Io)?;
            let reply = read_frame(&mut conn.reader, self.config.max_frame_bytes)?;
            decode_response(&reply)
        })();
        match result {
            Ok(resp) => Ok(resp),
            Err(e) => {
                // Whatever failed, the stream's framing state is now
                // unknowable; the connection is poisoned.
                self.conn = None;
                Err(e.into())
            }
        }
    }

    /// Sends one request and reads its response, retrying idempotent
    /// requests on transport failure or `Busy` shedding (each retry on a
    /// fresh connection, with exponential backoff and jitter, under the
    /// [`RetryPolicy::deadline`] budget). `Busy` and `Error` responses
    /// pass through raw once retries are exhausted; the typed helpers
    /// below turn them into [`ClientError`]s.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        if !req.is_idempotent() || self.config.retry.max_attempts <= 1 {
            return self.request_once(req);
        }
        let policy = self.config.retry;
        let deadline = Instant::now() + policy.deadline;
        let mut backoff = policy.base_backoff;
        let mut attempt = 1u32;
        loop {
            let retryable = match self.request_once(req) {
                // A Busy response arrives on a connection the server is
                // about to close; retry from a fresh one.
                Ok(Response::Busy) => {
                    self.conn = None;
                    None
                }
                Ok(resp) => return Ok(resp),
                Err(e @ ClientError::Proto(ProtoError::Io(_)))
                | Err(e @ ClientError::Proto(ProtoError::ConnectionClosed)) => Some(e),
                Err(e) => return Err(e),
            };
            let sleep = self.jittered(backoff);
            if attempt >= policy.max_attempts || Instant::now() + sleep >= deadline {
                return match retryable {
                    Some(e) => Err(e),
                    None => Ok(Response::Busy),
                };
            }
            std::thread::sleep(sleep);
            backoff = (backoff * 2).min(policy.max_backoff);
            attempt += 1;
        }
    }

    /// A deterministic jittered backoff in `[d/2, d]` — full-jitter
    /// halves, so a fleet of clients created with different seeds does
    /// not thunder back in lockstep.
    fn jittered(&mut self, d: Duration) -> Duration {
        let mut x = self.jitter;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        let half = nanos / 2;
        Duration::from_nanos(half + x.wrapping_mul(0x2545_F491_4F6C_DD1D) % half.max(1))
    }

    fn checked(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.request(req)? {
            Response::Busy => Err(ClientError::ServerBusy),
            Response::Error(msg) => Err(ClientError::ServerError(msg)),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("wanted Pong")),
        }
    }

    /// Server health: snapshot generation and drain state.
    pub fn health(&mut self) -> Result<crate::metrics::HealthReport, ClientError> {
        match self.checked(&Request::Health)? {
            Response::Health(h) => Ok(h),
            _ => Err(ClientError::Unexpected("wanted Health")),
        }
    }

    /// Readiness probe: `true` while the server accepts traffic.
    pub fn ready(&mut self) -> Result<bool, ClientError> {
        match self.checked(&Request::Ready)? {
            Response::Ready(r) => Ok(r),
            _ => Err(ClientError::Unexpected("wanted Ready")),
        }
    }

    /// All-traffic summary of the cell containing `(lat, lon)`.
    pub fn point_summary(&mut self, lat: f64, lon: f64) -> Result<Option<CellStats>, ClientError> {
        match self.checked(&Request::PointSummary { lat, lon })? {
            Response::Summary(s) => Ok(s),
            _ => Err(ClientError::Unexpected("wanted Summary")),
        }
    }

    /// Per-vessel-type summary of the cell containing `(lat, lon)`.
    pub fn segment_summary(
        &mut self,
        lat: f64,
        lon: f64,
        segment: MarketSegment,
    ) -> Result<Option<CellStats>, ClientError> {
        match self.checked(&Request::SegmentSummary { lat, lon, segment })? {
            Response::Summary(s) => Ok(s),
            _ => Err(ClientError::Unexpected("wanted Summary")),
        }
    }

    /// Per-route summary of the cell containing `(lat, lon)`.
    pub fn route_summary(
        &mut self,
        lat: f64,
        lon: f64,
        origin: u16,
        dest: u16,
        segment: MarketSegment,
    ) -> Result<Option<CellStats>, ClientError> {
        let req = Request::RouteSummary {
            lat,
            lon,
            origin,
            dest,
            segment,
        };
        match self.checked(&req)? {
            Response::Summary(s) => Ok(s),
            _ => Err(ClientError::Unexpected("wanted Summary")),
        }
    }

    /// Occupied cells (raw indices, sorted) inside a bounding box.
    pub fn bbox_scan(
        &mut self,
        min_lat: f64,
        min_lon: f64,
        max_lat: f64,
        max_lon: f64,
    ) -> Result<Vec<u64>, ClientError> {
        let req = Request::BboxScan {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        };
        match self.checked(&req)? {
            Response::Cells(cells) => Ok(cells),
            _ => Err(ClientError::Unexpected("wanted Cells")),
        }
    }

    /// Occupied cells (raw indices, sorted) whose top destination is
    /// `dest`.
    pub fn top_destination_cells(
        &mut self,
        dest: u16,
        segment: Option<MarketSegment>,
    ) -> Result<Vec<u64>, ClientError> {
        match self.checked(&Request::TopDestinationCells { dest, segment })? {
            Response::Cells(cells) => Ok(cells),
            _ => Err(ClientError::Unexpected("wanted Cells")),
        }
    }

    /// ETA estimate for a vessel at `(lat, lon)`.
    pub fn eta(
        &mut self,
        lat: f64,
        lon: f64,
        segment: Option<MarketSegment>,
        route: Option<(u16, u16)>,
    ) -> Result<Option<EtaEstimate>, ClientError> {
        let req = Request::Eta {
            lat,
            lon,
            segment,
            route,
        };
        match self.checked(&req)? {
            Response::Eta(e) => Ok(e),
            _ => Err(ClientError::Unexpected("wanted Eta")),
        }
    }

    /// Ranked destination predictions for a positional track (oldest
    /// first).
    pub fn predict_destination(
        &mut self,
        segment: Option<MarketSegment>,
        top_n: u8,
        track: Vec<(f64, f64)>,
    ) -> Result<Vec<(u16, f64)>, ClientError> {
        let req = Request::PredictDestination {
            segment,
            top_n,
            track,
        };
        match self.checked(&req)? {
            Response::Destinations(ranked) => Ok(ranked),
            _ => Err(ClientError::Unexpected("wanted Destinations")),
        }
    }

    /// Server counters and latency summaries.
    pub fn stats(&mut self) -> Result<crate::metrics::StatsReport, ClientError> {
        match self.checked(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            _ => Err(ClientError::Unexpected("wanted Stats")),
        }
    }

    /// Sends up to [`crate::proto::MAX_BATCH`] requests in one frame and
    /// returns their responses in order. A `Busy`/`Error` reply to the
    /// batch frame itself surfaces as a [`ClientError`]; per-child
    /// errors come back in the response vector for the caller to
    /// inspect. The whole batch retries as a unit when every child is
    /// idempotent.
    pub fn batch(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        if requests.len() > crate::proto::MAX_BATCH {
            return Err(ClientError::Unexpected("batch exceeds MAX_BATCH"));
        }
        match self.checked(&Request::Batch(requests.to_vec()))? {
            Response::Batch(children) => {
                if children.len() != requests.len() {
                    return Err(ClientError::Unexpected("batch response count mismatch"));
                }
                Ok(children)
            }
            _ => Err(ClientError::Unexpected("wanted Batch")),
        }
    }

    /// Route-level summaries for many positions in one round-trip — the
    /// multi-cell query the batching protocol exists for.
    pub fn route_summaries(
        &mut self,
        origin: u16,
        dest: u16,
        segment: MarketSegment,
        positions: &[(f64, f64)],
    ) -> Result<Vec<Option<CellStats>>, ClientError> {
        let reqs: Vec<Request> = positions
            .iter()
            .map(|&(lat, lon)| Request::RouteSummary {
                lat,
                lon,
                origin,
                dest,
                segment,
            })
            .collect();
        self.batch(&reqs)?
            .into_iter()
            .map(|resp| match resp {
                Response::Summary(s) => Ok(s),
                Response::Error(msg) => Err(ClientError::ServerError(msg)),
                _ => Err(ClientError::Unexpected("wanted Summary")),
            })
            .collect()
    }

    /// All-traffic summaries for many positions in one round-trip.
    pub fn point_summaries(
        &mut self,
        positions: &[(f64, f64)],
    ) -> Result<Vec<Option<CellStats>>, ClientError> {
        let reqs: Vec<Request> = positions
            .iter()
            .map(|&(lat, lon)| Request::PointSummary { lat, lon })
            .collect();
        self.batch(&reqs)?
            .into_iter()
            .map(|resp| match resp {
                Response::Summary(s) => Ok(s),
                Response::Error(msg) => Err(ClientError::ServerError(msg)),
                _ => Err(ClientError::Unexpected("wanted Summary")),
            })
            .collect()
    }
}

/// Writes one complete frame with explicit short-write handling:
/// `Interrupted` retries immediately; an EAGAIN-style
/// `WouldBlock`/`TimedOut` *after partial progress* keeps retrying
/// inside `budget` (abandoning a half-written frame would poison a
/// connection the kernel had merely throttled); the same error with
/// nothing yet written surfaces at once, because the retry layer can
/// safely resend an unsent frame on a fresh connection. A transport
/// accepting zero bytes surfaces as `WriteZero`, never a spin.
fn send_framed<W: Write>(w: &mut W, framed: &[u8], budget: Duration) -> io::Result<()> {
    let deadline = Instant::now() + budget;
    let mut written = 0;
    while written < framed.len() {
        match w.write(&framed[written..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer accepts no bytes",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if written == 0 || Instant::now() >= deadline {
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accepts at most `chunk` bytes per call, injecting `Interrupted`
    /// and `WouldBlock` on a schedule — a nonblocking socket at its
    /// legal worst.
    struct Fragmenting {
        sink: Vec<u8>,
        chunk: usize,
        calls: usize,
    }

    impl Write for Fragmenting {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.calls % 3 == 0 {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            if self.calls % 5 == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "eagain"));
            }
            let n = buf.len().min(self.chunk);
            self.sink.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn send_framed_survives_interrupts_and_partial_writes() {
        let payload = encode_request(&Request::PointSummary {
            lat: 12.5,
            lon: -34.25,
        });
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let mut t = Fragmenting {
            sink: Vec::new(),
            chunk: 2,
            calls: 0,
        };
        send_framed(&mut t, &framed, Duration::from_secs(1)).unwrap();
        assert_eq!(t.sink, framed, "bytes must arrive intact and in order");
    }

    #[test]
    fn send_framed_fails_fast_before_any_byte_is_written() {
        struct AlwaysBlocked;
        impl Write for AlwaysBlocked {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "eagain"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Nothing on the wire yet: surface immediately (the frame can be
        // resent on a fresh connection), do not burn the whole budget.
        let started = Instant::now();
        let err = send_framed(&mut AlwaysBlocked, b"abcd", Duration::from_secs(5)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn send_framed_mid_frame_timeout_respects_the_budget() {
        struct OneByteThenBlocked {
            wrote: bool,
        }
        impl Write for OneByteThenBlocked {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                if self.wrote {
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "eagain"))
                } else {
                    self.wrote = true;
                    Ok(1)
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // One byte escaped, then the transport wedged: the budget bounds
        // the retries and the timeout surfaces.
        let mut t = OneByteThenBlocked { wrote: false };
        let err = send_framed(&mut t, b"abcd", Duration::from_millis(20)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}
