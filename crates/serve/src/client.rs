//! A blocking client for the `pol-serve` wire protocol.
//!
//! One [`Client`] owns one connection and issues requests synchronously;
//! for concurrency, open one client per thread (the load generator in
//! `pol-bench` does exactly that). Server-side conditions surface as
//! typed errors: [`ClientError::ServerBusy`] for backpressure shedding,
//! [`ClientError::ServerError`] for rejected arguments.

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, ProtoError, Request, Response,
    DEFAULT_MAX_FRAME_BYTES,
};
use pol_ais::types::MarketSegment;
use pol_apps::eta::EtaEstimate;
use pol_core::CellStats;
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything a request round-trip can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or protocol failure.
    Proto(ProtoError),
    /// The server shed this connection under load; retry later.
    ServerBusy,
    /// The server rejected the request (message carried from the wire).
    ServerError(String),
    /// The server answered with a response type the request cannot
    /// produce.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Proto(e) => write!(f, "client protocol error: {e}"),
            Self::ServerBusy => write!(f, "server busy, retry later"),
            Self::ServerError(msg) => write!(f, "server rejected request: {msg}"),
            Self::Unexpected(what) => write!(f, "unexpected response type: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        Self::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Proto(ProtoError::Io(e))
    }
}

/// A blocking connection to a `pol-serve` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects with the default frame cap and no read timeout.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Sets a socket read timeout for subsequent requests.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads its response. `Busy` and `Error`
    /// responses pass through (some callers want to see them raw); the
    /// typed helpers below turn them into [`ClientError`]s.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let payload = encode_request(req);
        write_frame(&mut self.writer, &payload).map_err(ProtoError::Io)?;
        self.writer.flush().map_err(ProtoError::Io)?;
        let reply = read_frame(&mut self.reader, self.max_frame_bytes)?;
        Ok(decode_response(&reply)?)
    }

    fn checked(&mut self, req: &Request) -> Result<Response, ClientError> {
        match self.request(req)? {
            Response::Busy => Err(ClientError::ServerBusy),
            Response::Error(msg) => Err(ClientError::ServerError(msg)),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("wanted Pong")),
        }
    }

    /// All-traffic summary of the cell containing `(lat, lon)`.
    pub fn point_summary(&mut self, lat: f64, lon: f64) -> Result<Option<CellStats>, ClientError> {
        match self.checked(&Request::PointSummary { lat, lon })? {
            Response::Summary(s) => Ok(s),
            _ => Err(ClientError::Unexpected("wanted Summary")),
        }
    }

    /// Per-vessel-type summary of the cell containing `(lat, lon)`.
    pub fn segment_summary(
        &mut self,
        lat: f64,
        lon: f64,
        segment: MarketSegment,
    ) -> Result<Option<CellStats>, ClientError> {
        match self.checked(&Request::SegmentSummary { lat, lon, segment })? {
            Response::Summary(s) => Ok(s),
            _ => Err(ClientError::Unexpected("wanted Summary")),
        }
    }

    /// Per-route summary of the cell containing `(lat, lon)`.
    pub fn route_summary(
        &mut self,
        lat: f64,
        lon: f64,
        origin: u16,
        dest: u16,
        segment: MarketSegment,
    ) -> Result<Option<CellStats>, ClientError> {
        let req = Request::RouteSummary {
            lat,
            lon,
            origin,
            dest,
            segment,
        };
        match self.checked(&req)? {
            Response::Summary(s) => Ok(s),
            _ => Err(ClientError::Unexpected("wanted Summary")),
        }
    }

    /// Occupied cells (raw indices, sorted) inside a bounding box.
    pub fn bbox_scan(
        &mut self,
        min_lat: f64,
        min_lon: f64,
        max_lat: f64,
        max_lon: f64,
    ) -> Result<Vec<u64>, ClientError> {
        let req = Request::BboxScan {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        };
        match self.checked(&req)? {
            Response::Cells(cells) => Ok(cells),
            _ => Err(ClientError::Unexpected("wanted Cells")),
        }
    }

    /// Occupied cells (raw indices, sorted) whose top destination is
    /// `dest`.
    pub fn top_destination_cells(
        &mut self,
        dest: u16,
        segment: Option<MarketSegment>,
    ) -> Result<Vec<u64>, ClientError> {
        match self.checked(&Request::TopDestinationCells { dest, segment })? {
            Response::Cells(cells) => Ok(cells),
            _ => Err(ClientError::Unexpected("wanted Cells")),
        }
    }

    /// ETA estimate for a vessel at `(lat, lon)`.
    pub fn eta(
        &mut self,
        lat: f64,
        lon: f64,
        segment: Option<MarketSegment>,
        route: Option<(u16, u16)>,
    ) -> Result<Option<EtaEstimate>, ClientError> {
        let req = Request::Eta {
            lat,
            lon,
            segment,
            route,
        };
        match self.checked(&req)? {
            Response::Eta(e) => Ok(e),
            _ => Err(ClientError::Unexpected("wanted Eta")),
        }
    }

    /// Ranked destination predictions for a positional track (oldest
    /// first).
    pub fn predict_destination(
        &mut self,
        segment: Option<MarketSegment>,
        top_n: u8,
        track: Vec<(f64, f64)>,
    ) -> Result<Vec<(u16, f64)>, ClientError> {
        let req = Request::PredictDestination {
            segment,
            top_n,
            track,
        };
        match self.checked(&req)? {
            Response::Destinations(ranked) => Ok(ranked),
            _ => Err(ClientError::Unexpected("wanted Destinations")),
        }
    }

    /// Server counters and latency summaries.
    pub fn stats(&mut self) -> Result<crate::metrics::StatsReport, ClientError> {
        match self.checked(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            _ => Err(ClientError::Unexpected("wanted Stats")),
        }
    }
}
