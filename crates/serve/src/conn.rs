//! Per-connection state machine for the reactor core.
//!
//! A reactor connection is a pair of pumps over a nonblocking socket:
//! the *read side* feeds readiness-triggered bytes through a
//! [`FrameAccumulator`] and yields complete request payloads; the
//! *write side* drains a [`WriteBuffer`] that resumes cleanly from
//! partial writes (`EAGAIN` after `n` of `m` bytes), so a frame is
//! never interleaved with or truncated by a slow-draining peer.
//!
//! Everything here is transport-generic (`Read`/`Write` bounds, no
//! sockets), which is what makes the state machine unit-testable: the
//! tests below drive it over deliberately fragmenting transports that
//! return one byte at a time, inject `Interrupted`, and starve writes
//! with `WouldBlock` mid-frame.

use crate::proto::{FrameAccumulator, ProtoError};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::time::Instant;

/// Pending frames a single connection may queue behind its in-flight
/// request before the loop stops reading from it (kernel-buffer
/// backpressure: the bytes stay in the socket until the pipeline
/// drains).
pub const MAX_PENDING_FRAMES: usize = 32;

/// An outgoing byte queue that survives partial writes.
///
/// `push_frame` appends a length-prefixed frame; `flush_to` writes as
/// much as the transport accepts and remembers the cursor, so the next
/// readiness event resumes exactly where the last short write stopped.
/// This is the fix for the frame-interleaving hazard: a frame's bytes
/// are committed to the buffer atomically and leave it strictly in
/// order, no matter how the transport fragments them.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the transport.
    head: usize,
    /// Largest pending depth ever observed, bytes.
    high_water: usize,
}

impl WriteBuffer {
    /// An empty buffer.
    pub fn new() -> WriteBuffer {
        WriteBuffer::default()
    }

    /// Bytes still waiting to be written.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Whether everything pushed has been flushed.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Largest pending depth ever observed, bytes.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Appends one length-prefixed frame (the wire format of
    /// [`crate::proto::write_frame`]) as a single atomic unit.
    pub fn push_frame(&mut self, payload: &[u8]) {
        let len = payload.len() as u32;
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.high_water = self.high_water.max(self.pending());
    }

    /// Writes as much pending data as `w` accepts right now.
    ///
    /// Returns the bytes written by this call. `Interrupted` is retried
    /// in place; `WouldBlock`/`TimedOut` stop the flush without error
    /// (the caller re-arms for writability); any other error propagates.
    /// A transport that accepts zero bytes without erroring surfaces as
    /// `WriteZero` so a dead peer cannot spin the loop.
    pub fn flush_to<W: Write>(&mut self, w: &mut W) -> io::Result<usize> {
        let mut written = 0;
        while self.head < self.buf.len() {
            match w.write(&self.buf[self.head..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer accepts no bytes",
                    ))
                }
                Ok(n) => {
                    self.head += n;
                    written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    break
                }
                Err(e) => return Err(e),
            }
        }
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head > 4096 {
            // Compact occasionally so a long-lived slow reader does not
            // pin an ever-growing prefix of written bytes.
            self.buf.drain(..self.head);
            self.head = 0;
        }
        Ok(written)
    }
}

/// What one read-readiness pass produced.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadEvent {
    /// Connection stays open; frames (possibly none) were extracted.
    Open,
    /// Peer half-closed its write side (EOF); flush what is owed, then
    /// close.
    PeerClosed,
    /// Peer declared a frame beyond the cap — answer with one typed
    /// error, then close.
    FrameTooLarge(usize),
    /// Unrecoverable transport error; close immediately.
    Failed,
}

/// The per-connection state the reactor keeps per registered socket.
pub struct ConnState {
    acc: FrameAccumulator,
    /// Complete request payloads queued behind the in-flight one.
    pub pending: VecDeque<Vec<u8>>,
    /// A request from this connection is executing on the worker pool.
    pub in_flight: bool,
    /// Buffered response bytes awaiting socket writability.
    pub outbox: WriteBuffer,
    /// Close once the outbox drains (malformed peer, shed follow-up).
    pub close_after_flush: bool,
    /// Peer sent EOF; no more reads, close when idle.
    pub peer_closed: bool,
    /// When the partially assembled frame's first byte arrived. A frame
    /// must complete within the server's stall timeout of this instant —
    /// dripping one byte per poll cannot push the deadline out, which is
    /// what makes the timeout slow-loris-proof.
    pub frame_started: Option<Instant>,
    /// Last time the outbox made progress (slow-reader stall clock).
    pub last_write: Instant,
}

impl ConnState {
    /// Fresh state for a just-accepted connection.
    pub fn new(now: Instant) -> ConnState {
        ConnState {
            acc: FrameAccumulator::new(),
            pending: VecDeque::new(),
            in_flight: false,
            outbox: WriteBuffer::new(),
            close_after_flush: false,
            peer_closed: false,
            frame_started: None,
            last_write: now,
        }
    }

    /// Whether a request frame is partially assembled.
    pub fn mid_frame(&self) -> bool {
        self.acc.is_partial()
    }

    /// Whether the in-progress frame has been assembling for longer than
    /// `stall`: the slow-loris cut-off.
    pub fn frame_stalled(&self, stall: std::time::Duration, now: Instant) -> bool {
        self.frame_started
            .is_some_and(|t| now.duration_since(t) > stall)
    }

    /// Idle at a frame boundary with nothing owed: safe to close during
    /// drain.
    pub fn idle(&self) -> bool {
        !self.mid_frame() && !self.in_flight && self.pending.is_empty() && self.outbox.is_empty()
    }

    /// Whether the pipeline is full and reading should stop. While this
    /// holds the reactor drops `EPOLLIN` from the connection's interest
    /// — with level-triggered epoll, staying subscribed to a socket we
    /// refuse to read would re-report it on every `epoll_wait` and spin
    /// the loop hot exactly when the server is saturated. Unread bytes
    /// wait in the kernel buffer; interest is re-armed as completions
    /// shrink the queue.
    pub fn read_paused(&self) -> bool {
        self.pending.len() >= MAX_PENDING_FRAMES
    }

    /// Pumps the read side after a readiness event: feeds reads through
    /// the accumulator until the transport would block, the pending
    /// queue fills ([`MAX_PENDING_FRAMES`] — backpressure by not
    /// reading), or the connection ends. Extracted payloads are appended
    /// to `frames`.
    pub fn read_ready<R: Read>(
        &mut self,
        r: &mut R,
        max_frame_bytes: usize,
        frames: &mut Vec<Vec<u8>>,
    ) -> ReadEvent {
        loop {
            if self.pending.len() + frames.len() >= MAX_PENDING_FRAMES {
                return ReadEvent::Open;
            }
            match self.acc.poll(r, max_frame_bytes) {
                Ok(Some(payload)) => {
                    self.frame_started = None;
                    frames.push(payload);
                }
                Ok(None) => {
                    // Progress without a complete frame — more bytes may
                    // already be buffered, keep pulling. The deadline is
                    // anchored to the frame's *first* byte on purpose.
                    if self.frame_started.is_none() && self.acc.is_partial() {
                        self.frame_started = Some(Instant::now());
                    }
                }
                Err(ProtoError::Io(e))
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return ReadEvent::Open;
                }
                Err(ProtoError::Io(e)) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(ProtoError::ConnectionClosed) => return ReadEvent::PeerClosed,
                Err(ProtoError::FrameTooLarge(n)) => return ReadEvent::FrameTooLarge(n),
                Err(_) => return ReadEvent::Failed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{read_frame, write_frame};

    /// A transport that accepts at most `chunk` bytes per call and
    /// injects `Interrupted` and `WouldBlock` on a schedule — the
    /// nastiest legal behaviour of a nonblocking socket.
    struct Fragmenting {
        sink: Vec<u8>,
        chunk: usize,
        calls: usize,
        interrupt_every: usize,
        block_every: usize,
    }

    impl Fragmenting {
        fn new(chunk: usize) -> Fragmenting {
            Fragmenting {
                sink: Vec::new(),
                chunk,
                calls: 0,
                interrupt_every: 3,
                block_every: 5,
            }
        }
    }

    impl Write for Fragmenting {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.interrupt_every > 0 && self.calls % self.interrupt_every == 0 {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            if self.block_every > 0 && self.calls % self.block_every == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "eagain"));
            }
            let n = buf.len().min(self.chunk);
            self.sink.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Reads that hand out one byte at a time, then block.
    struct DripReader {
        data: Vec<u8>,
        pos: usize,
        per_call: usize,
    }

    impl Read for DripReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "dry"));
            }
            let n = buf.len().min(self.per_call).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn write_buffer_resumes_partial_writes_without_interleaving() {
        let mut wb = WriteBuffer::new();
        wb.push_frame(b"first frame payload");
        wb.push_frame(b"second");
        let mut t = Fragmenting::new(3);
        // Pump until drained; WouldBlock returns are re-entered like an
        // EPOLLOUT readiness event would.
        let mut guard = 0;
        while !wb.is_empty() {
            wb.flush_to(&mut t).unwrap();
            guard += 1;
            assert!(guard < 1000, "flush loop did not converge");
        }
        // The receiver sees two intact, in-order frames.
        let mut r = &t.sink[..];
        assert_eq!(read_frame(&mut r, 1 << 20).unwrap(), b"first frame payload");
        assert_eq!(read_frame(&mut r, 1 << 20).unwrap(), b"second");
        assert!(r.is_empty());
        assert!(wb.high_water() >= b"first frame payload".len() + b"second".len());
    }

    #[test]
    fn write_buffer_matches_write_frame_bytes_exactly() {
        // The buffer's framing must be byte-identical to the blocking
        // path's write_frame, or the two cores would diverge on the wire.
        let payload = b"identical bytes please";
        let mut direct = Vec::new();
        write_frame(&mut direct, payload).unwrap();
        let mut wb = WriteBuffer::new();
        wb.push_frame(payload);
        let mut sink = Vec::new();
        wb.flush_to(&mut sink).unwrap();
        assert_eq!(sink, direct);
    }

    #[test]
    fn write_zero_is_an_error_not_a_spin() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut wb = WriteBuffer::new();
        wb.push_frame(b"x");
        let err = wb.flush_to(&mut Dead).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn read_side_reassembles_one_byte_drip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"slow but valid").unwrap();
        write_frame(&mut wire, b"second frame").unwrap();
        let mut r = DripReader {
            data: wire,
            pos: 0,
            per_call: 1,
        };
        let mut conn = ConnState::new(Instant::now());
        let mut frames = Vec::new();
        // One readiness pass drains everything available (level-triggered
        // epoll re-reports anything left, but the drip reader blocks only
        // when dry).
        assert_eq!(
            conn.read_ready(&mut r, 1 << 20, &mut frames),
            ReadEvent::Open
        );
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], b"slow but valid");
        assert_eq!(frames[1], b"second frame");
        assert!(!conn.mid_frame());
    }

    #[test]
    fn oversized_frame_is_reported_and_peer_eof_detected() {
        let mut conn = ConnState::new(Instant::now());
        let mut frames = Vec::new();
        let huge = (1_000_000u32).to_le_bytes();
        let mut r = &huge[..];
        assert_eq!(
            conn.read_ready(&mut r, 1024, &mut frames),
            ReadEvent::FrameTooLarge(1_000_000)
        );
        let mut conn = ConnState::new(Instant::now());
        let empty: &[u8] = &[];
        let mut r = empty;
        assert_eq!(
            conn.read_ready(&mut r, 1024, &mut frames),
            ReadEvent::PeerClosed
        );
    }

    #[test]
    fn backpressure_stops_reading_at_the_pending_cap() {
        let mut wire = Vec::new();
        for i in 0..(MAX_PENDING_FRAMES + 10) {
            write_frame(&mut wire, format!("req {i}").as_bytes()).unwrap();
        }
        let mut r = DripReader {
            data: wire,
            pos: 0,
            per_call: 4096,
        };
        let mut conn = ConnState::new(Instant::now());
        let mut frames = Vec::new();
        assert_eq!(
            conn.read_ready(&mut r, 1 << 20, &mut frames),
            ReadEvent::Open
        );
        assert_eq!(frames.len(), MAX_PENDING_FRAMES, "cap must bound one pass");
        // The unread requests are still in the transport, not lost.
        assert!(r.pos < r.data.len());
    }

    #[test]
    fn frame_deadline_anchors_to_the_first_byte() {
        use std::time::Duration;
        let mut wire = Vec::new();
        write_frame(&mut wire, b"a slow frame").unwrap();
        let (first, rest) = wire.split_at(3);
        let mut conn = ConnState::new(Instant::now());
        let mut frames = Vec::new();
        let mut r = DripReader {
            data: first.to_vec(),
            pos: 0,
            per_call: 1,
        };
        conn.read_ready(&mut r, 1 << 20, &mut frames);
        let started = conn.frame_started.expect("mid-frame sets the anchor");
        assert!(conn.frame_stalled(Duration::ZERO, started + Duration::from_millis(1)));
        assert!(!conn.frame_stalled(Duration::from_secs(30), started + Duration::from_millis(1)));
        // More bytes arriving must NOT move the anchor…
        let mut r = DripReader {
            data: rest[..2].to_vec(),
            pos: 0,
            per_call: 1,
        };
        conn.read_ready(&mut r, 1 << 20, &mut frames);
        assert_eq!(
            conn.frame_started,
            Some(started),
            "drip must not reset the deadline"
        );
        // …and completing the frame clears it.
        let mut r = DripReader {
            data: rest[2..].to_vec(),
            pos: 0,
            per_call: 4096,
        };
        conn.read_ready(&mut r, 1 << 20, &mut frames);
        assert_eq!(frames.len(), 1);
        assert_eq!(conn.frame_started, None);
    }

    #[test]
    fn read_pauses_exactly_at_the_pending_cap() {
        let mut conn = ConnState::new(Instant::now());
        assert!(!conn.read_paused());
        for i in 0..MAX_PENDING_FRAMES {
            conn.pending.push_back(vec![i as u8]);
        }
        assert!(conn.read_paused(), "full pipeline must stop reading");
        conn.pending.pop_front();
        assert!(!conn.read_paused(), "one free slot must resume reading");
    }

    #[test]
    fn idle_reflects_every_obligation() {
        let mut conn = ConnState::new(Instant::now());
        assert!(conn.idle());
        conn.in_flight = true;
        assert!(!conn.idle());
        conn.in_flight = false;
        conn.outbox.push_frame(b"owed");
        assert!(!conn.idle());
        let mut sink = Vec::new();
        conn.outbox.flush_to(&mut sink).unwrap();
        assert!(conn.idle());
        conn.pending.push_back(b"queued".to_vec());
        assert!(!conn.idle());
    }
}
