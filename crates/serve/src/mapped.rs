//! The zero-copy read store over a memory-mapped POLINV3 snapshot.
//!
//! Where [`crate::store::ShardedStore`] deserializes a whole snapshot
//! into heap maps before the first query, `MappedStore` maps the file
//! ([`crate::mmap::MappedFile`]), validates the columnar layout once
//! ([`Layout::parse`] — CRCs, seal, sortedness; no sketch decoding),
//! and then answers:
//!
//! * point lookups by binary search over the sorted fixed-stride key
//!   column of the right grouping-set section, decoding exactly one
//!   summary from the stats blob;
//! * bbox scans by `partition_point` into the latitude-sorted cell
//!   index, exactly like the heap inventory's band scan;
//! * top-destination scans by binary search into the precomputed
//!   `(dest, segment, cell)` top-dest section — one contiguous run,
//!   no stats decoded.
//!
//! Cold start is the headline win: load-to-READY is the mmap + one
//! validation pass instead of decoding every sketch of every entry.
//! Every answer is bit-identical to the heap store's — both decode the
//! same canonical stats bytes — which the loopback and migration tests
//! pin.
//!
//! The store counts its work (`lookups`, `scan_entries`,
//! `decode_errors`) and surfaces the counters through the STATS
//! endpoint.

use crate::mmap::MappedFile;
use pol_ais::types::MarketSegment;
use pol_core::codec::columnar::{
    cell_key, cell_route_key, cell_type_key, GroupSpan, LatIndexReader, Layout, SectionReader,
    TopDestReader, TOP_DEST_ALL_SEGMENTS,
};
use pol_core::codec::CodecError;
use pol_core::features::CellStats;
use pol_core::InventoryQuery;
use pol_geo::{BBox, LatLon};
use pol_hexgrid::{CellIndex, Resolution};
use std::borrow::Cow;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters describing the work a [`MappedStore`] has done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MappedCounters {
    /// Point lookups answered by binary search over the mapped file.
    pub lookups: u64,
    /// Section entries / lat-index rows touched by scans.
    pub scan_entries: u64,
    /// Per-entry stats decodes that failed after CRC validation — always
    /// zero unless the encoder is buggy.
    pub decode_errors: u64,
}

/// A read-only query store backed by a validated, memory-mapped
/// POLINV3 snapshot.
pub struct MappedStore {
    file: MappedFile,
    layout: Layout,
    lookups: AtomicU64,
    scan_entries: AtomicU64,
    decode_errors: AtomicU64,
}

impl MappedStore {
    /// Maps `path` and validates the POLINV3 layout — seal, every
    /// section CRC, key sortedness — before any query can touch it.
    /// The validation reads the mapped bytes themselves, so there is no
    /// gap between what was checked and what is served.
    pub fn open(path: &Path) -> Result<MappedStore, CodecError> {
        let file = MappedFile::open(path)?;
        let layout = Layout::parse(file.bytes())?;
        Ok(MappedStore {
            file,
            layout,
            lookups: AtomicU64::new(0),
            scan_entries: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
        })
    }

    /// Whether the bytes are served from a live memory map (false on
    /// the heap fallback for platforms without mmap).
    pub fn is_mapped(&self) -> bool {
        self.file.is_mapped()
    }

    /// Total group-identifier entries across the grouping sections.
    pub fn len(&self) -> usize {
        self.layout.cell.count + self.layout.cell_type.count + self.layout.cell_route.count
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records summarised by the underlying inventory.
    pub fn total_records(&self) -> u64 {
        self.layout.total_records
    }

    /// The store's work counters (lookups, scan entries, decode errors).
    pub fn counters(&self) -> MappedCounters {
        MappedCounters {
            lookups: self.lookups.load(Ordering::Relaxed),
            scan_entries: self.scan_entries.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }

    fn reader(&self, span: &GroupSpan) -> Option<SectionReader<'_>> {
        SectionReader::new(self.file.bytes(), span)
    }

    /// One binary-searched point lookup + on-demand stats decode.
    fn lookup(&self, span: &GroupSpan, key: &[u8]) -> Option<CellStats> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let reader = self.reader(span)?;
        let i = reader.find(key)?;
        let stats = reader.decode_stats(i);
        if stats.is_none() {
            // CRC-validated bytes that fail to decode mean an encoder
            // bug, not corruption; count it, never panic.
            self.decode_errors.fetch_add(1, Ordering::Relaxed);
        }
        stats
    }

    /// Occupied cells whose centre falls inside a bounding box, sorted
    /// by raw cell index for a canonical reply (same order as
    /// [`crate::store::ShardedStore::cells_in`]).
    pub fn cells_in(&self, bbox: &BBox) -> Vec<CellIndex> {
        let Some(lat) = LatIndexReader::new(self.file.bytes(), &self.layout) else {
            return Vec::new();
        };
        let mut raws: Vec<u64> = Vec::new();
        let mut i = lat.lower_bound_lat(bbox.min_lat);
        let mut touched = 0u64;
        while let Some((la, lo, raw)) = lat.row(i) {
            if la > bbox.max_lat {
                break;
            }
            touched += 1;
            if let Some(center) = LatLon::new(la, lo) {
                if bbox.contains(center) {
                    raws.push(raw);
                }
            }
            i += 1;
        }
        self.scan_entries.fetch_add(touched, Ordering::Relaxed);
        raws.sort_unstable();
        raws.into_iter()
            .filter_map(|r| CellIndex::from_raw(r).ok())
            .collect()
    }

    /// Occupied cells whose most frequent destination is `dest`,
    /// optionally per segment — a binary search to the `(dest, segment)`
    /// prefix of the precomputed top-dest section, then one contiguous
    /// run in ascending cell order. No stats are decoded at query time:
    /// the encoder evaluated the same `top_destinations(1)` predicate
    /// per entry when the snapshot was written.
    pub fn cells_with_top_destination(
        &self,
        dest: u16,
        segment: Option<MarketSegment>,
    ) -> Vec<CellIndex> {
        let Some(reader) = TopDestReader::new(self.file.bytes(), &self.layout) else {
            return Vec::new();
        };
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let seg_byte = segment.map(|s| s.id()).unwrap_or(TOP_DEST_ALL_SEGMENTS);
        let raws = reader.cells_for(dest, seg_byte);
        self.scan_entries
            .fetch_add(raws.len() as u64, Ordering::Relaxed);
        // The section's rows ascend by (dest, segment, cell), so the run
        // is already in ascending cell order — the canonical reply.
        raws.into_iter()
            .filter_map(|r| CellIndex::from_raw(r).ok())
            .collect()
    }
}

impl InventoryQuery for MappedStore {
    fn resolution(&self) -> Resolution {
        self.layout.resolution
    }

    fn summary(&self, cell: CellIndex) -> Option<Cow<'_, CellStats>> {
        self.lookup(&self.layout.cell, &cell_key(cell))
            .map(Cow::Owned)
    }

    fn summary_for(&self, cell: CellIndex, segment: MarketSegment) -> Option<Cow<'_, CellStats>> {
        self.lookup(&self.layout.cell_type, &cell_type_key(cell, segment))
            .map(Cow::Owned)
    }

    fn summary_route(
        &self,
        cell: CellIndex,
        origin: u16,
        dest: u16,
        segment: MarketSegment,
    ) -> Option<Cow<'_, CellStats>> {
        self.lookup(
            &self.layout.cell_route,
            &cell_route_key(cell, origin, dest, segment),
        )
        .map(Cow::Owned)
    }
}
