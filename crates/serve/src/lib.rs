//! `pol-serve` — a concurrent TCP query server over a loaded inventory.
//!
//! The paper's inventory is an offline artefact; this crate puts it
//! online. A [`server::Server`] owns a hash-sharded read-only
//! [`store::ShardedStore`], answers point/route/bbox/top-destination
//! queries plus the `pol-apps` ETA and destination-prediction endpoints
//! over a versioned length-prefixed binary protocol ([`proto`]), caches
//! the expensive aggregate scans ([`store::QueryCache`]), and accounts
//! every request in per-endpoint latency histograms ([`metrics`]).
//!
//! Operational posture: bounded worker pool with typed
//! [`proto::Response::Busy`] backpressure instead of unbounded queueing,
//! per-frame size caps, socket read/write timeouts, hostile-input-safe
//! decoding, and clean shutdown on a control signal. The matching
//! [`client::Client`] and the `polload` load generator in `pol-bench`
//! drive it.

#![deny(missing_docs)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod store;

pub use client::{Client, ClientConfig, ClientError, RetryPolicy};
pub use metrics::{Endpoint, EndpointStats, HealthReport, ServerMetrics, StatsReport};
pub use proto::{ProtoError, Request, Response, PROTO_VERSION};
pub use server::{InventoryService, Server, ServerConfig};
pub use store::{QueryCache, ShardedStore};
