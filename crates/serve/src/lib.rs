//! `pol-serve` — a concurrent TCP query server over a loaded inventory.
//!
//! The paper's inventory is an offline artefact; this crate puts it
//! online. A [`server::Server`] owns a hash-sharded read-only
//! [`store::ShardedStore`], answers point/route/bbox/top-destination
//! queries plus the `pol-apps` ETA and destination-prediction endpoints
//! over a versioned length-prefixed binary protocol ([`proto`]), caches
//! the expensive aggregate scans ([`store::QueryCache`]), and accounts
//! every request in per-endpoint latency histograms ([`metrics`]).
//!
//! The zero-copy read path: a POLINV3 columnar snapshot can be served
//! straight off disk through a [`mapped::MappedStore`] — the file is
//! memory-mapped ([`mmap::MappedFile`]), validated once, and queried by
//! binary search without deserializing anything up front. The server
//! sniffs the snapshot format and picks the backend
//! ([`store::StoreBackend`]); protocol v3 adds request batching
//! ([`proto::Request::Batch`]) so one frame can carry many lookups.
//!
//! Two serving cores share that execution engine
//! ([`server::ServerCore`]): the original thread-per-connection core,
//! and the default epoll-based [`reactor`] — one event loop owning
//! every nonblocking socket, per-connection frame state machines
//! ([`conn::ConnState`]), and the worker pool reduced to pure request
//! execution, so tens of thousands of mostly-idle connections cost no
//! threads.
//!
//! Operational posture: bounded worker pool with typed
//! [`proto::Response::Busy`] backpressure instead of unbounded queueing
//! (the reactor sheds per *request* at the event loop, keeping the
//! connection), per-frame size caps, socket read/write timeouts, a
//! slow-loris frame-assembly deadline anchored to each frame's first
//! byte, hostile-input-safe decoding, and clean shutdown on a control
//! signal. The matching [`client::Client`] and the `polload` load
//! generator in `pol-bench` drive it.

#![deny(missing_docs)]

pub mod client;
pub mod conn;
pub mod mapped;
pub mod metrics;
pub mod mmap;
pub mod proto;
pub mod reactor;
pub mod server;
pub mod store;

pub use client::{Client, ClientConfig, ClientError, RetryPolicy};
pub use mapped::{MappedCounters, MappedStore};
pub use metrics::{Endpoint, EndpointStats, HealthReport, ServerMetrics, StatsReport};
pub use mmap::MappedFile;
pub use proto::{ProtoError, Request, Response, MAX_BATCH, PROTO_VERSION};
pub use server::{InventoryService, Server, ServerConfig, ServerCore};
pub use store::{QueryCache, ShardedStore, StoreBackend};
