//! The versioned, length-prefixed binary wire protocol.
//!
//! Every message travels as a *frame*: a little-endian `u32` payload
//! length followed by the payload. A payload opens with the protocol
//! version byte and a message tag, then the tag-specific body encoded
//! with the same primitives as the inventory file format (`pol-sketch`'s
//! varint/f64 wire helpers and `pol-core::codec`'s key/stats codecs), so
//! a summary travels over the network in exactly its on-disk encoding.
//!
//! Decoding is hostile-input safe: declared lengths and counts are
//! validated against the bytes that actually remain before any
//! allocation, and every failure is a typed [`ProtoError`] — the server
//! never trusts a frame further than its bytes go. Round-trips are
//! property-tested (`tests/proto_roundtrip.rs`).

use crate::metrics::{Endpoint, EndpointStats, HealthReport, StatsReport};
use pol_ais::types::MarketSegment;
use pol_apps::eta::EtaEstimate;
use pol_core::codec::{decode_cell_stats, encode_cell_stats};
use pol_core::CellStats;
use pol_sketch::wire::{get_f64, get_varint, put_f64, put_varint, WireError};
use std::fmt;
use std::io::{self, Read, Write};

/// Wire protocol version carried in every payload. Version 2 added the
/// `HEALTH`/`READY` probes and the snapshot-generation counters in
/// `STATS`; version 3 added request batching (`BATCH` frames) and the
/// read-path counters (`store`, batched/mapped counters, per-endpoint
/// p95) in `STATS`; version 4 added the streaming-freshness fields
/// (`delta_generation`, `chain_len`, `since_reload_secs`) in `STATS`;
/// version 5 added the event-loop pressure counters
/// (`open_connections`, `peak_connections`, `ready_events`, `wakeups`,
/// `shed_at_loop`, `write_buffer_high_water`) in `STATS`.
/// Decoders accept [`MIN_PROTO_VERSION`]`..=`[`PROTO_VERSION`].
pub const PROTO_VERSION: u8 = 5;

/// Oldest protocol version the decoders still accept. Version-2 peers
/// never send `BATCH`, and the only payload whose *shape* changed across
/// versions — `STATS` — is decoded against the version byte it carries
/// (fields a version does not encode default to zero/empty), so every
/// accepted version decodes with its own wire layout.
pub const MIN_PROTO_VERSION: u8 = 2;

/// Upper bound on sub-requests in one `BATCH` frame.
pub const MAX_BATCH: usize = 256;

/// Default per-frame size cap (requests *and* responses).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Upper bound on positions in one destination-prediction request.
pub const MAX_TRACK_POINTS: usize = 4096;

/// Upper bound on an error message carried in a response.
pub const MAX_ERROR_BYTES: usize = 512;

/// Everything that can go wrong speaking the protocol.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure.
    Io(io::Error),
    /// Structurally invalid payload.
    Wire(WireError),
    /// Peer declared a frame larger than the negotiated cap.
    FrameTooLarge(usize),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown message tag.
    BadTag(u8),
    /// The peer closed the connection at a frame boundary.
    ConnectionClosed,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "protocol io error: {e}"),
            Self::Wire(e) => write!(f, "protocol decode error: {e}"),
            Self::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::BadTag(t) => write!(f, "unknown message tag {t}"),
            Self::ConnectionClosed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// A query against the served inventory.
///
/// The variants cover the full existing `Inventory` query surface plus
/// the two `pol-apps` delegating endpoints (ETA, streaming destination
/// prediction) and the server's own `STATS` introspection endpoint.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// All-traffic summary of the cell containing a position.
    PointSummary {
        /// Latitude, degrees.
        lat: f64,
        /// Longitude, degrees.
        lon: f64,
    },
    /// Per-vessel-type summary of the cell containing a position.
    SegmentSummary {
        /// Latitude, degrees.
        lat: f64,
        /// Longitude, degrees.
        lon: f64,
        /// Market segment to narrow to.
        segment: MarketSegment,
    },
    /// Per-route summary of the cell containing a position.
    RouteSummary {
        /// Latitude, degrees.
        lat: f64,
        /// Longitude, degrees.
        lon: f64,
        /// Origin port id.
        origin: u16,
        /// Destination port id.
        dest: u16,
        /// Market segment of the route key.
        segment: MarketSegment,
    },
    /// All occupied cells whose centre falls inside a bounding box.
    BboxScan {
        /// Southern edge, degrees.
        min_lat: f64,
        /// Western edge, degrees.
        min_lon: f64,
        /// Northern edge, degrees.
        max_lat: f64,
        /// Eastern edge, degrees.
        max_lon: f64,
    },
    /// Occupied cells whose most frequent destination is `dest`.
    TopDestinationCells {
        /// Destination port id to filter on.
        dest: u16,
        /// Optional per-segment narrowing.
        segment: Option<MarketSegment>,
    },
    /// ETA estimate for a vessel at a position (delegates to `pol-apps`).
    Eta {
        /// Latitude, degrees.
        lat: f64,
        /// Longitude, degrees.
        lon: f64,
        /// Optional vessel segment.
        segment: Option<MarketSegment>,
        /// Optional `(origin, dest)` route narrowing.
        route: Option<(u16, u16)>,
    },
    /// Streaming destination prediction over a positional track
    /// (delegates to `pol-apps`).
    PredictDestination {
        /// Optional vessel segment.
        segment: Option<MarketSegment>,
        /// How many ranked destinations to return.
        top_n: u8,
        /// The track, oldest first, as `(lat, lon)` degrees.
        track: Vec<(f64, f64)>,
    },
    /// Server counters and latency histograms.
    Stats,
    /// Liveness/health probe: snapshot generation and drain state.
    Health,
    /// Readiness probe: is the server accepting and serving traffic.
    Ready,
    /// Up to [`MAX_BATCH`] sub-requests answered in one
    /// [`Response::Batch`] frame, in order. Batches do not nest.
    Batch(Vec<Request>),
}

impl Request {
    /// The metrics endpoint this request is accounted under.
    pub fn endpoint(&self) -> Endpoint {
        match self {
            Request::Ping => Endpoint::Ping,
            Request::PointSummary { .. } => Endpoint::PointSummary,
            Request::SegmentSummary { .. } => Endpoint::SegmentSummary,
            Request::RouteSummary { .. } => Endpoint::RouteSummary,
            Request::BboxScan { .. } => Endpoint::BboxScan,
            Request::TopDestinationCells { .. } => Endpoint::TopDestinationCells,
            Request::Eta { .. } => Endpoint::Eta,
            Request::PredictDestination { .. } => Endpoint::PredictDestination,
            Request::Stats => Endpoint::Stats,
            Request::Health => Endpoint::Health,
            Request::Ready => Endpoint::Ready,
            Request::Batch(_) => Endpoint::Batch,
        }
    }

    /// Whether retrying this request after a transport failure can be
    /// observed by anyone (the client's automatic-retry gate).
    ///
    /// Every current endpoint is a pure read over an immutable snapshot,
    /// so all are idempotent — but the match is exhaustive on purpose:
    /// adding a mutating endpoint forces the author to decide its retry
    /// semantics here, not inherit "retryable" silently.
    pub fn is_idempotent(&self) -> bool {
        match self {
            Request::Ping
            | Request::PointSummary { .. }
            | Request::SegmentSummary { .. }
            | Request::RouteSummary { .. }
            | Request::BboxScan { .. }
            | Request::TopDestinationCells { .. }
            | Request::Eta { .. }
            | Request::PredictDestination { .. }
            | Request::Stats
            | Request::Health
            | Request::Ready => true,
            // A batch is retryable exactly when every child is.
            Request::Batch(children) => children.iter().all(Request::is_idempotent),
        }
    }
}

/// A reply to one [`Request`].
#[derive(Clone, Debug)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// A cell summary (in its canonical `pol-core::codec` encoding on the
    /// wire), or `None` when the cell has no entry at the queried key.
    Summary(Option<CellStats>),
    /// Raw 64-bit cell indices, sorted ascending.
    Cells(Vec<u64>),
    /// An ETA estimate, or `None` when no nearby history exists.
    Eta(Option<EtaEstimate>),
    /// Ranked `(port id, normalised score)` destination predictions.
    Destinations(Vec<(u16, f64)>),
    /// Server counters and latency summaries.
    Stats(StatsReport),
    /// The server is at capacity; retry later. Sent instead of queueing
    /// unboundedly (the backpressure contract).
    Busy,
    /// The request was understood to be invalid, or could not be decoded.
    Error(String),
    /// Reply to [`Request::Health`].
    Health(HealthReport),
    /// Reply to [`Request::Ready`]: `true` when serving, `false` while
    /// draining for shutdown.
    Ready(bool),
    /// Reply to [`Request::Batch`]: one response per sub-request, in the
    /// same order. Batches do not nest.
    Batch(Vec<Response>),
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Incremental frame reader that survives short reads and read timeouts.
///
/// Sockets under a read timeout can deliver a frame in pieces with
/// `WouldBlock`/`TimedOut` errors in between; `std`'s `read_exact` cannot
/// resume after such an error. The accumulator keeps its partial state
/// across [`FrameAccumulator::poll`] calls, so the caller can interleave
/// timeout handling (e.g. a shutdown-flag check) with frame assembly.
#[derive(Default)]
pub struct FrameAccumulator {
    header: [u8; 4],
    filled: usize,
    body: Vec<u8>,
    body_len: Option<usize>,
}

impl FrameAccumulator {
    /// A fresh accumulator with no partial frame.
    pub fn new() -> FrameAccumulator {
        FrameAccumulator::default()
    }

    /// Whether a frame is partially assembled. A draining server uses
    /// this to distinguish "idle at a frame boundary, safe to close"
    /// from "mid-frame, the peer deserves its answer first".
    pub fn is_partial(&self) -> bool {
        self.filled > 0 || self.body_len.is_some()
    }

    /// Feeds at most one `read` call into the pending frame. Returns
    /// `Ok(Some(payload))` when a frame completed, `Ok(None)` when more
    /// bytes are needed. Timeouts surface as `Err(ProtoError::Io)` with
    /// kind `WouldBlock`/`TimedOut` and do **not** lose partial state.
    pub fn poll<R: Read>(
        &mut self,
        r: &mut R,
        max_bytes: usize,
    ) -> Result<Option<Vec<u8>>, ProtoError> {
        match self.body_len {
            None => {
                let n = r.read(&mut self.header[self.filled..])?;
                if n == 0 {
                    return Err(ProtoError::ConnectionClosed);
                }
                self.filled += n;
                if self.filled == 4 {
                    let len = u32::from_le_bytes(self.header) as usize;
                    if len == 0 || len > max_bytes {
                        return Err(ProtoError::FrameTooLarge(len));
                    }
                    self.body = vec![0; len];
                    self.body_len = Some(len);
                    self.filled = 0;
                }
                Ok(None)
            }
            Some(len) => {
                let n = r.read(&mut self.body[self.filled..])?;
                if n == 0 {
                    return Err(ProtoError::ConnectionClosed);
                }
                self.filled += n;
                if self.filled == len {
                    self.filled = 0;
                    self.body_len = None;
                    Ok(Some(std::mem::take(&mut self.body)))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

/// Blocking convenience: reads one full frame (clients; no timeouts).
pub fn read_frame<R: Read>(r: &mut R, max_bytes: usize) -> Result<Vec<u8>, ProtoError> {
    let mut acc = FrameAccumulator::new();
    loop {
        if let Some(payload) = acc.poll(r, max_bytes)? {
            return Ok(payload);
        }
    }
}

// ---------------------------------------------------------------------
// Primitive helpers
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    put_varint(out, v as u64);
}

fn get_u16(input: &mut &[u8]) -> Result<u16, WireError> {
    let v = get_varint(input)?;
    u16::try_from(v).map_err(|_| WireError("port id out of range"))
}

fn put_opt_segment(out: &mut Vec<u8>, seg: Option<MarketSegment>) {
    match seg {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            out.push(s.id());
        }
    }
}

fn get_byte(input: &mut &[u8]) -> Result<u8, WireError> {
    let (&b, rest) = input.split_first().ok_or(WireError("payload truncated"))?;
    *input = rest;
    Ok(b)
}

fn get_bool(input: &mut &[u8]) -> Result<bool, WireError> {
    match get_byte(input)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError("bad bool byte")),
    }
}

fn get_segment(input: &mut &[u8]) -> Result<MarketSegment, WireError> {
    MarketSegment::from_id(get_byte(input)?).ok_or(WireError("bad segment id"))
}

fn get_opt_segment(input: &mut &[u8]) -> Result<Option<MarketSegment>, WireError> {
    match get_byte(input)? {
        0 => Ok(None),
        1 => Ok(Some(get_segment(input)?)),
        _ => Err(WireError("bad option tag")),
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let take = bytes.len().min(MAX_ERROR_BYTES);
    // Truncate on a char boundary so the decode side stays valid UTF-8.
    let mut end = take;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    put_varint(out, end as u64);
    out.extend_from_slice(&bytes[..end]);
}

fn get_string(input: &mut &[u8], max: usize) -> Result<String, WireError> {
    let len = get_varint(input)? as usize;
    if len > max || len > input.len() {
        return Err(WireError("string exceeds buffer"));
    }
    let (bytes, rest) = input.split_at(len);
    *input = rest;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError("string not utf-8"))
}

// ---------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------

/// Tag byte of [`Request::Ping`].
pub const REQ_PING: u8 = 0;
/// Tag byte of [`Request::PointSummary`].
pub const REQ_POINT: u8 = 1;
/// Tag byte of [`Request::SegmentSummary`].
pub const REQ_SEGMENT: u8 = 2;
/// Tag byte of [`Request::RouteSummary`].
pub const REQ_ROUTE: u8 = 3;
/// Tag byte of [`Request::BboxScan`].
pub const REQ_BBOX: u8 = 4;
/// Tag byte of [`Request::TopDestinationCells`].
pub const REQ_TOP_DEST: u8 = 5;
/// Tag byte of [`Request::Eta`].
pub const REQ_ETA: u8 = 6;
/// Tag byte of [`Request::PredictDestination`].
pub const REQ_PREDICT: u8 = 7;
/// Tag byte of [`Request::Stats`].
pub const REQ_STATS: u8 = 8;
/// Tag byte of [`Request::Health`].
pub const REQ_HEALTH: u8 = 9;
/// Tag byte of [`Request::Ready`].
pub const REQ_READY: u8 = 10;
/// Tag byte of [`Request::Batch`] (protocol v3+).
pub const REQ_BATCH: u8 = 11;

/// Serializes a request payload (version byte + tag + body).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = vec![PROTO_VERSION];
    encode_request_body(req, &mut out);
    out
}

/// Writes a request's tag + body (no version byte) — shared between the
/// top-level payload codec and the per-child encoding inside a batch.
fn encode_request_body(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Ping => out.push(REQ_PING),
        Request::PointSummary { lat, lon } => {
            out.push(REQ_POINT);
            put_f64(out, *lat);
            put_f64(out, *lon);
        }
        Request::SegmentSummary { lat, lon, segment } => {
            out.push(REQ_SEGMENT);
            put_f64(out, *lat);
            put_f64(out, *lon);
            out.push(segment.id());
        }
        Request::RouteSummary {
            lat,
            lon,
            origin,
            dest,
            segment,
        } => {
            out.push(REQ_ROUTE);
            put_f64(out, *lat);
            put_f64(out, *lon);
            put_u16(out, *origin);
            put_u16(out, *dest);
            out.push(segment.id());
        }
        Request::BboxScan {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        } => {
            out.push(REQ_BBOX);
            for v in [min_lat, min_lon, max_lat, max_lon] {
                put_f64(out, *v);
            }
        }
        Request::TopDestinationCells { dest, segment } => {
            out.push(REQ_TOP_DEST);
            put_u16(out, *dest);
            put_opt_segment(out, *segment);
        }
        Request::Eta {
            lat,
            lon,
            segment,
            route,
        } => {
            out.push(REQ_ETA);
            put_f64(out, *lat);
            put_f64(out, *lon);
            put_opt_segment(out, *segment);
            match route {
                None => out.push(0),
                Some((o, d)) => {
                    out.push(1);
                    put_u16(out, *o);
                    put_u16(out, *d);
                }
            }
        }
        Request::PredictDestination {
            segment,
            top_n,
            track,
        } => {
            out.push(REQ_PREDICT);
            put_opt_segment(out, *segment);
            out.push(*top_n);
            put_varint(out, track.len() as u64);
            for (lat, lon) in track {
                put_f64(out, *lat);
                put_f64(out, *lon);
            }
        }
        Request::Stats => out.push(REQ_STATS),
        Request::Health => out.push(REQ_HEALTH),
        Request::Ready => out.push(REQ_READY),
        Request::Batch(children) => {
            out.push(REQ_BATCH);
            put_varint(out, children.len() as u64);
            for child in children {
                let mut body = Vec::new();
                encode_request_body(child, &mut body);
                put_varint(out, body.len() as u64);
                out.extend_from_slice(&body);
            }
        }
    }
}

/// Deserializes a request payload. Rejects unknown versions/tags, counts
/// that cannot fit the remaining bytes, and trailing garbage.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut input = payload;
    let version = get_byte(&mut input)?;
    if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
        return Err(ProtoError::BadVersion(version));
    }
    let req = decode_request_body(&mut input, true)?;
    if !input.is_empty() {
        return Err(ProtoError::Wire(WireError("trailing bytes")));
    }
    Ok(req)
}

/// Reads a request's tag + body (no version byte). `allow_batch` is
/// false inside a batch child, so batches cannot nest.
fn decode_request_body(input: &mut &[u8], allow_batch: bool) -> Result<Request, ProtoError> {
    let tag = get_byte(input)?;
    let req = match tag {
        REQ_PING => Request::Ping,
        REQ_POINT => Request::PointSummary {
            lat: get_f64(input)?,
            lon: get_f64(input)?,
        },
        REQ_SEGMENT => Request::SegmentSummary {
            lat: get_f64(input)?,
            lon: get_f64(input)?,
            segment: get_segment(input)?,
        },
        REQ_ROUTE => Request::RouteSummary {
            lat: get_f64(input)?,
            lon: get_f64(input)?,
            origin: get_u16(input)?,
            dest: get_u16(input)?,
            segment: get_segment(input)?,
        },
        REQ_BBOX => Request::BboxScan {
            min_lat: get_f64(input)?,
            min_lon: get_f64(input)?,
            max_lat: get_f64(input)?,
            max_lon: get_f64(input)?,
        },
        REQ_TOP_DEST => Request::TopDestinationCells {
            dest: get_u16(input)?,
            segment: get_opt_segment(input)?,
        },
        REQ_ETA => {
            let lat = get_f64(input)?;
            let lon = get_f64(input)?;
            let segment = get_opt_segment(input)?;
            let route = match get_byte(input)? {
                0 => None,
                1 => Some((get_u16(input)?, get_u16(input)?)),
                _ => return Err(ProtoError::Wire(WireError("bad option tag"))),
            };
            Request::Eta {
                lat,
                lon,
                segment,
                route,
            }
        }
        REQ_PREDICT => {
            let segment = get_opt_segment(input)?;
            let top_n = get_byte(input)?;
            let len = get_varint(input)? as usize;
            // Each track point is exactly 16 bytes; a count that cannot
            // fit the remaining payload is rejected before allocating.
            if len > MAX_TRACK_POINTS || len * 16 > input.len() {
                return Err(ProtoError::Wire(WireError("track exceeds buffer")));
            }
            let mut track = Vec::with_capacity(len);
            for _ in 0..len {
                track.push((get_f64(input)?, get_f64(input)?));
            }
            Request::PredictDestination {
                segment,
                top_n,
                track,
            }
        }
        REQ_STATS => Request::Stats,
        REQ_HEALTH => Request::Health,
        REQ_READY => Request::Ready,
        REQ_BATCH if allow_batch => Request::Batch(decode_batch(input, decode_request_body)?),
        other => return Err(ProtoError::BadTag(other)),
    };
    Ok(req)
}

/// Reads a batch body: a child count, then per-child length-prefixed
/// tag+body blobs decoded with `decode_child` (batching disallowed, so
/// batches cannot nest). The count is validated against the bytes that
/// actually remain — every child costs at least two bytes (length prefix
/// + tag) — before any allocation.
fn decode_batch<T>(
    input: &mut &[u8],
    decode_child: impl Fn(&mut &[u8], bool) -> Result<T, ProtoError>,
) -> Result<Vec<T>, ProtoError> {
    let len = get_varint(input)? as usize;
    if len > MAX_BATCH || len * 2 > input.len() {
        return Err(ProtoError::Wire(WireError("batch exceeds buffer")));
    }
    let mut children = Vec::with_capacity(len);
    for _ in 0..len {
        let child_len = get_varint(input)? as usize;
        if child_len > input.len() {
            return Err(ProtoError::Wire(WireError("batch child exceeds buffer")));
        }
        let (child_bytes, rest) = input.split_at(child_len);
        *input = rest;
        let mut child_input = child_bytes;
        let child = decode_child(&mut child_input, false)?;
        if !child_input.is_empty() {
            return Err(ProtoError::Wire(WireError("trailing bytes in batch child")));
        }
        children.push(child);
    }
    Ok(children)
}

// ---------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------

/// Tag byte of [`Response::Pong`].
pub const RESP_PONG: u8 = 0;
/// Tag byte of [`Response::Summary`].
pub const RESP_SUMMARY: u8 = 1;
/// Tag byte of [`Response::Cells`].
pub const RESP_CELLS: u8 = 2;
/// Tag byte of [`Response::Eta`].
pub const RESP_ETA: u8 = 3;
/// Tag byte of [`Response::Destinations`].
pub const RESP_DESTINATIONS: u8 = 4;
/// Tag byte of [`Response::Stats`].
pub const RESP_STATS: u8 = 5;
/// Tag byte of [`Response::Busy`].
pub const RESP_BUSY: u8 = 6;
/// Tag byte of [`Response::Error`].
pub const RESP_ERROR: u8 = 7;
/// Tag byte of [`Response::Health`].
pub const RESP_HEALTH: u8 = 8;
/// Tag byte of [`Response::Ready`].
pub const RESP_READY: u8 = 9;
/// Tag byte of [`Response::Batch`] (protocol v3+).
pub const RESP_BATCH: u8 = 10;

/// Serializes a response payload (version byte + tag + body).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = vec![PROTO_VERSION];
    encode_response_body(resp, &mut out);
    out
}

/// Writes a response's tag + body (no version byte) — shared between the
/// top-level payload codec and the per-child encoding inside a batch.
fn encode_response_body(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Pong => out.push(RESP_PONG),
        Response::Summary(stats) => {
            out.push(RESP_SUMMARY);
            match stats {
                None => out.push(0),
                Some(s) => {
                    out.push(1);
                    encode_cell_stats(s, out);
                }
            }
        }
        Response::Cells(cells) => {
            out.push(RESP_CELLS);
            put_varint(out, cells.len() as u64);
            for c in cells {
                put_varint(out, *c);
            }
        }
        Response::Eta(est) => {
            out.push(RESP_ETA);
            match est {
                None => out.push(0),
                Some(e) => {
                    out.push(1);
                    put_f64(out, e.mean_secs);
                    put_f64(out, e.p10_secs);
                    put_f64(out, e.p50_secs);
                    put_f64(out, e.p90_secs);
                    put_varint(out, e.samples);
                    put_varint(out, e.widened as u64);
                }
            }
        }
        Response::Destinations(ranked) => {
            out.push(RESP_DESTINATIONS);
            put_varint(out, ranked.len() as u64);
            for (port, score) in ranked {
                put_u16(out, *port);
                put_f64(out, *score);
            }
        }
        Response::Stats(report) => {
            out.push(RESP_STATS);
            encode_stats_report(report, out);
        }
        Response::Busy => out.push(RESP_BUSY),
        Response::Error(msg) => {
            out.push(RESP_ERROR);
            put_string(out, msg);
        }
        Response::Health(h) => {
            out.push(RESP_HEALTH);
            out.push(h.healthy as u8);
            put_varint(out, h.generation);
            out.push(h.draining as u8);
        }
        Response::Ready(ready) => {
            out.push(RESP_READY);
            out.push(*ready as u8);
        }
        Response::Batch(children) => {
            out.push(RESP_BATCH);
            put_varint(out, children.len() as u64);
            for child in children {
                let mut body = Vec::new();
                encode_response_body(child, &mut body);
                put_varint(out, body.len() as u64);
                out.extend_from_slice(&body);
            }
        }
    }
}

/// Deserializes a response payload with the same hostile-input guards as
/// [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut input = payload;
    let version = get_byte(&mut input)?;
    if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
        return Err(ProtoError::BadVersion(version));
    }
    let resp = decode_response_body(&mut input, version, true)?;
    if !input.is_empty() {
        return Err(ProtoError::Wire(WireError("trailing bytes")));
    }
    Ok(resp)
}

/// Reads a response's tag + body (no version byte). `version` is the
/// payload's declared protocol version — `STATS` is the one body whose
/// shape changed across versions, so its decoder needs it. `allow_batch`
/// is false inside a batch child, so batches cannot nest.
fn decode_response_body(
    input: &mut &[u8],
    version: u8,
    allow_batch: bool,
) -> Result<Response, ProtoError> {
    let tag = get_byte(input)?;
    let resp = match tag {
        RESP_PONG => Response::Pong,
        RESP_SUMMARY => match get_byte(input)? {
            0 => Response::Summary(None),
            1 => Response::Summary(Some(decode_cell_stats(input)?)),
            _ => return Err(ProtoError::Wire(WireError("bad option tag"))),
        },
        RESP_CELLS => {
            let len = get_varint(input)? as usize;
            // Each cell index is at least one varint byte.
            if len > input.len() {
                return Err(ProtoError::Wire(WireError("cell count exceeds buffer")));
            }
            let mut cells = Vec::with_capacity(len);
            for _ in 0..len {
                cells.push(get_varint(input)?);
            }
            Response::Cells(cells)
        }
        RESP_ETA => match get_byte(input)? {
            0 => Response::Eta(None),
            1 => {
                let mean_secs = get_f64(input)?;
                let p10_secs = get_f64(input)?;
                let p50_secs = get_f64(input)?;
                let p90_secs = get_f64(input)?;
                let samples = get_varint(input)?;
                let widened = u32::try_from(get_varint(input)?)
                    .map_err(|_| WireError("widened out of range"))?;
                Response::Eta(Some(EtaEstimate {
                    mean_secs,
                    p10_secs,
                    p50_secs,
                    p90_secs,
                    samples,
                    widened,
                }))
            }
            _ => return Err(ProtoError::Wire(WireError("bad option tag"))),
        },
        RESP_DESTINATIONS => {
            let len = get_varint(input)? as usize;
            // Each ranked entry is at least 9 bytes (varint port + f64).
            if len > input.len() / 9 {
                return Err(ProtoError::Wire(WireError("ranking exceeds buffer")));
            }
            let mut ranked = Vec::with_capacity(len);
            for _ in 0..len {
                let port = get_u16(input)?;
                let score = get_f64(input)?;
                ranked.push((port, score));
            }
            Response::Destinations(ranked)
        }
        RESP_STATS => Response::Stats(decode_stats_report(input, version)?),
        RESP_BUSY => Response::Busy,
        RESP_ERROR => Response::Error(get_string(input, MAX_ERROR_BYTES)?),
        RESP_HEALTH => {
            let healthy = get_bool(input)?;
            let generation = get_varint(input)?;
            let draining = get_bool(input)?;
            Response::Health(HealthReport {
                healthy,
                generation,
                draining,
            })
        }
        RESP_READY => Response::Ready(get_bool(input)?),
        RESP_BATCH if allow_batch => Response::Batch(decode_batch(input, |child, nest| {
            decode_response_body(child, version, nest)
        })?),
        other => return Err(ProtoError::BadTag(other)),
    };
    Ok(resp)
}

fn encode_stats_report(report: &StatsReport, out: &mut Vec<u8>) {
    put_varint(out, report.total_requests);
    put_varint(out, report.busy_rejections);
    put_varint(out, report.malformed_frames);
    put_varint(out, report.connections);
    put_varint(out, report.cache_hits);
    put_varint(out, report.cache_misses);
    put_varint(out, report.generation);
    put_varint(out, report.reloads_ok);
    put_varint(out, report.reloads_failed);
    put_varint(out, report.batched_requests);
    put_varint(out, report.mapped_lookups);
    put_varint(out, report.mapped_scan_entries);
    put_varint(out, report.delta_generation);
    put_varint(out, report.chain_len);
    put_varint(out, report.since_reload_secs);
    put_varint(out, report.open_connections);
    put_varint(out, report.peak_connections);
    put_varint(out, report.ready_events);
    put_varint(out, report.wakeups);
    put_varint(out, report.shed_at_loop);
    put_varint(out, report.write_buffer_high_water);
    put_string(out, &report.store);
    put_varint(out, report.endpoints.len() as u64);
    for ep in &report.endpoints {
        out.push(ep.endpoint.id());
        put_varint(out, ep.count);
        put_f64(out, ep.p50_us);
        put_f64(out, ep.p95_us);
        put_f64(out, ep.p99_us);
        put_f64(out, ep.max_us);
    }
    let bytes = report.stages.as_bytes();
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Decodes a `STATS` body against the wire layout of `version`: v2
/// carries only the nine base counters and p50/p99/max endpoint rows;
/// v3 added the read-path counters, `store`, and per-endpoint p95; v4
/// the streaming-freshness trio; v5 the six event-loop counters. Fields
/// a version does not encode default to zero/empty, so a `StatsReport`
/// from any accepted peer is well-formed.
fn decode_stats_report(input: &mut &[u8], version: u8) -> Result<StatsReport, ProtoError> {
    let total_requests = get_varint(input)?;
    let busy_rejections = get_varint(input)?;
    let malformed_frames = get_varint(input)?;
    let connections = get_varint(input)?;
    let cache_hits = get_varint(input)?;
    let cache_misses = get_varint(input)?;
    let generation = get_varint(input)?;
    let reloads_ok = get_varint(input)?;
    let reloads_failed = get_varint(input)?;
    let (mut batched_requests, mut mapped_lookups, mut mapped_scan_entries) = (0, 0, 0);
    if version >= 3 {
        batched_requests = get_varint(input)?;
        mapped_lookups = get_varint(input)?;
        mapped_scan_entries = get_varint(input)?;
    }
    let (mut delta_generation, mut chain_len, mut since_reload_secs) = (0, 0, 0);
    if version >= 4 {
        delta_generation = get_varint(input)?;
        chain_len = get_varint(input)?;
        since_reload_secs = get_varint(input)?;
    }
    let (mut open_connections, mut peak_connections, mut ready_events) = (0, 0, 0);
    let (mut wakeups, mut shed_at_loop, mut write_buffer_high_water) = (0, 0, 0);
    if version >= 5 {
        open_connections = get_varint(input)?;
        peak_connections = get_varint(input)?;
        ready_events = get_varint(input)?;
        wakeups = get_varint(input)?;
        shed_at_loop = get_varint(input)?;
        write_buffer_high_water = get_varint(input)?;
    }
    let store = if version >= 3 {
        get_string(input, MAX_ERROR_BYTES)?
    } else {
        String::new()
    };
    let len = get_varint(input)? as usize;
    // Each endpoint entry is at least 26 (v2: id + count + three f64s)
    // or 34 (v3+: four f64s) bytes.
    let min_entry = if version >= 3 { 34 } else { 26 };
    if len > input.len() / min_entry {
        return Err(ProtoError::Wire(WireError("endpoint count exceeds buffer")));
    }
    let mut endpoints = Vec::with_capacity(len);
    for _ in 0..len {
        let endpoint =
            Endpoint::from_id(get_byte(input)?).ok_or(WireError("unknown endpoint id"))?;
        let count = get_varint(input)?;
        let p50_us = get_f64(input)?;
        let p95_us = if version >= 3 { get_f64(input)? } else { 0.0 };
        let p99_us = get_f64(input)?;
        let max_us = get_f64(input)?;
        endpoints.push(EndpointStats {
            endpoint,
            count,
            p50_us,
            p95_us,
            p99_us,
            max_us,
        });
    }
    let stages_len = get_varint(input)? as usize;
    if stages_len > input.len() {
        return Err(ProtoError::Wire(WireError("stage text exceeds buffer")));
    }
    let (bytes, rest) = input.split_at(stages_len);
    *input = rest;
    let stages =
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError("stage text not utf-8"))?;
    Ok(StatsReport {
        total_requests,
        busy_rejections,
        malformed_frames,
        connections,
        cache_hits,
        cache_misses,
        generation,
        reloads_ok,
        reloads_failed,
        batched_requests,
        mapped_lookups,
        mapped_scan_entries,
        delta_generation,
        chain_len,
        since_reload_secs,
        open_connections,
        peak_connections,
        ready_events,
        wakeups,
        shed_at_loop,
        write_buffer_high_water,
        store,
        endpoints,
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"hello");
    }

    #[test]
    fn frame_cap_enforced() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, 50),
            Err(ProtoError::FrameTooLarge(100))
        ));
    }

    #[test]
    fn zero_length_frame_rejected() {
        let buf = 0u32.to_le_bytes();
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(ProtoError::FrameTooLarge(0))
        ));
    }

    #[test]
    fn accumulator_survives_byte_at_a_time_delivery() {
        let mut framed = Vec::new();
        write_frame(&mut framed, b"stream me").unwrap();
        let mut acc = FrameAccumulator::new();
        let mut got = None;
        for b in &framed {
            let mut one = std::slice::from_ref(b);
            if let Some(p) = acc.poll(&mut one, 1024).unwrap() {
                got = Some(p);
            }
        }
        assert_eq!(got.as_deref(), Some(&b"stream me"[..]));
    }

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Ping,
            Request::PointSummary {
                lat: 51.5,
                lon: -0.1,
            },
            Request::SegmentSummary {
                lat: -33.0,
                lon: 151.0,
                segment: MarketSegment::Tanker,
            },
            Request::RouteSummary {
                lat: 1.0,
                lon: 103.0,
                origin: 4,
                dest: 77,
                segment: MarketSegment::Container,
            },
            Request::BboxScan {
                min_lat: -10.0,
                min_lon: -20.0,
                max_lat: 10.0,
                max_lon: 20.0,
            },
            Request::TopDestinationCells {
                dest: 9,
                segment: None,
            },
            Request::TopDestinationCells {
                dest: 9,
                segment: Some(MarketSegment::Gas),
            },
            Request::Eta {
                lat: 30.0,
                lon: -40.0,
                segment: Some(MarketSegment::DryBulk),
                route: Some((2, 9)),
            },
            Request::PredictDestination {
                segment: None,
                top_n: 3,
                track: vec![(10.0, 10.0), (10.0, 10.5)],
            },
            Request::Stats,
            Request::Health,
            Request::Ready,
            Request::Batch(vec![]),
            Request::Batch(vec![
                Request::Ping,
                Request::RouteSummary {
                    lat: 1.0,
                    lon: 103.0,
                    origin: 4,
                    dest: 77,
                    segment: MarketSegment::Container,
                },
                Request::Eta {
                    lat: 30.0,
                    lon: -40.0,
                    segment: None,
                    route: None,
                },
            ]),
        ];
        for req in reqs {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn older_protocol_version_still_decodes() {
        let mut bytes = encode_request(&Request::PointSummary {
            lat: 51.5,
            lon: -0.1,
        });
        bytes[0] = MIN_PROTO_VERSION;
        assert!(decode_request(&bytes).is_ok());
    }

    /// `STATS` is the one payload whose shape changed across protocol
    /// versions: each accepted version must decode against *its own*
    /// wire layout, with the fields it predates defaulted — not have the
    /// v5 counters misparse its store string.
    #[test]
    fn stats_report_decodes_each_accepted_versions_own_layout() {
        // Shared pieces, hand-encoded exactly as the historical encoders
        // wrote them: nine base counters 1..=9, one Ping endpoint row,
        // a one-byte stages blob.
        let push_base = |out: &mut Vec<u8>| {
            for v in 1..=9u64 {
                put_varint(out, v);
            }
        };
        let push_endpoint = |out: &mut Vec<u8>, with_p95: bool| {
            out.push(Endpoint::Ping.id());
            put_varint(out, 42);
            put_f64(out, 1.5); // p50
            if with_p95 {
                put_f64(out, 2.5);
            }
            put_f64(out, 3.5); // p99
            put_f64(out, 4.5); // max
        };
        let push_stages = |out: &mut Vec<u8>| {
            put_varint(out, 1);
            out.push(b's');
        };

        // v2: base counters, p50/p99/max endpoint rows, stages.
        let mut v2 = vec![2u8, RESP_STATS];
        push_base(&mut v2);
        put_varint(&mut v2, 1);
        push_endpoint(&mut v2, false);
        push_stages(&mut v2);
        // v3: + batched/mapped counters, store string, endpoint p95.
        let mut v3 = vec![3u8, RESP_STATS];
        push_base(&mut v3);
        for v in [10u64, 11, 12] {
            put_varint(&mut v3, v);
        }
        put_string(&mut v3, "columnar");
        put_varint(&mut v3, 1);
        push_endpoint(&mut v3, true);
        push_stages(&mut v3);
        // v4: + the streaming-freshness trio before the store string.
        let mut v4 = vec![4u8, RESP_STATS];
        push_base(&mut v4);
        for v in [10u64, 11, 12, 13, 14, 15] {
            put_varint(&mut v4, v);
        }
        put_string(&mut v4, "columnar");
        put_varint(&mut v4, 1);
        push_endpoint(&mut v4, true);
        push_stages(&mut v4);

        for (bytes, version) in [(&v2, 2u8), (&v3, 3), (&v4, 4)] {
            let decoded = decode_response(bytes)
                .unwrap_or_else(|e| panic!("v{version} stats payload failed to decode: {e}"));
            let Response::Stats(r) = decoded else {
                panic!("v{version}: not a stats response");
            };
            assert_eq!(r.total_requests, 1, "v{version}");
            assert_eq!(r.reloads_failed, 9, "v{version}");
            assert_eq!(r.batched_requests, if version >= 3 { 10 } else { 0 });
            assert_eq!(r.mapped_scan_entries, if version >= 3 { 12 } else { 0 });
            assert_eq!(r.delta_generation, if version >= 4 { 13 } else { 0 });
            assert_eq!(r.since_reload_secs, if version >= 4 { 15 } else { 0 });
            // The v5 event-loop counters exist in no older layout.
            assert_eq!(r.open_connections, 0, "v{version}");
            assert_eq!(r.write_buffer_high_water, 0, "v{version}");
            assert_eq!(r.store, if version >= 3 { "columnar" } else { "" });
            assert_eq!(r.endpoints.len(), 1, "v{version}");
            assert_eq!(r.endpoints[0].count, 42, "v{version}");
            assert_eq!(r.endpoints[0].p50_us, 1.5, "v{version}");
            assert_eq!(
                r.endpoints[0].p95_us,
                if version >= 3 { 2.5 } else { 0.0 },
                "v{version}"
            );
            assert_eq!(r.endpoints[0].p99_us, 3.5, "v{version}");
            assert_eq!(r.stages, "s", "v{version}");
        }
    }

    #[test]
    fn nested_batches_rejected() {
        let nested = Request::Batch(vec![Request::Batch(vec![Request::Ping])]);
        let bytes = encode_request(&nested);
        assert!(matches!(
            decode_request(&bytes),
            Err(ProtoError::BadTag(REQ_BATCH))
        ));
        let nested = Response::Batch(vec![Response::Batch(vec![Response::Pong])]);
        let bytes = encode_response(&nested);
        assert!(matches!(
            decode_response(&bytes),
            Err(ProtoError::BadTag(RESP_BATCH))
        ));
    }

    #[test]
    fn hostile_batch_counts_rejected() {
        // Declared child count far beyond the remaining bytes.
        let mut bytes = vec![PROTO_VERSION, REQ_BATCH];
        put_varint(&mut bytes, 1 << 30);
        assert!(decode_request(&bytes).is_err());
        // Count over the batch cap, even with bytes to match.
        let mut bytes = vec![PROTO_VERSION, REQ_BATCH];
        put_varint(&mut bytes, (MAX_BATCH + 1) as u64);
        bytes.extend(
            std::iter::repeat([1u8, REQ_PING])
                .take(MAX_BATCH + 1)
                .flatten(),
        );
        assert!(decode_request(&bytes).is_err());
        // Child length prefix overrunning the payload.
        let mut bytes = vec![PROTO_VERSION, REQ_BATCH];
        put_varint(&mut bytes, 1);
        put_varint(&mut bytes, 1000);
        bytes.push(REQ_PING);
        assert!(decode_request(&bytes).is_err());
        // Trailing garbage inside a child blob.
        let mut bytes = vec![PROTO_VERSION, REQ_BATCH];
        put_varint(&mut bytes, 1);
        put_varint(&mut bytes, 2);
        bytes.push(REQ_PING);
        bytes.push(0xEE);
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn request_rejects_bad_version_tag_and_trailing() {
        let mut bytes = encode_request(&Request::Ping);
        bytes[0] = 99;
        assert!(matches!(
            decode_request(&bytes),
            Err(ProtoError::BadVersion(99))
        ));
        let bytes = [PROTO_VERSION, 200];
        assert!(matches!(
            decode_request(&bytes),
            Err(ProtoError::BadTag(200))
        ));
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn hostile_track_count_rejected() {
        let mut bytes = vec![PROTO_VERSION, REQ_PREDICT, 0, 5];
        put_varint(&mut bytes, 1 << 40); // declared points
        bytes.extend_from_slice(&[0; 16]); // one point's worth of bytes
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn hostile_cell_count_rejected() {
        let mut bytes = vec![PROTO_VERSION, RESP_CELLS];
        put_varint(&mut bytes, 1 << 50);
        assert!(decode_response(&bytes).is_err());
    }

    #[test]
    fn simple_responses_round_trip() {
        for resp in [
            Response::Pong,
            Response::Busy,
            Response::Summary(None),
            Response::Eta(None),
            Response::Cells(vec![1, 5, 1 << 60]),
            Response::Destinations(vec![(9, 0.75), (3, 0.25)]),
            Response::Error("coordinates out of range".into()),
            Response::Health(HealthReport {
                healthy: true,
                generation: 7,
                draining: false,
            }),
            Response::Ready(true),
            Response::Ready(false),
            Response::Batch(vec![]),
            Response::Batch(vec![
                Response::Pong,
                Response::Summary(None),
                Response::Cells(vec![3, 9]),
                Response::Error("bad child".into()),
            ]),
        ] {
            let bytes = encode_response(&resp);
            let back = decode_response(&bytes).unwrap();
            assert_eq!(encode_response(&back), bytes, "{resp:?}");
        }
    }

    #[test]
    fn error_message_truncated_on_char_boundary() {
        let long = "é".repeat(MAX_ERROR_BYTES); // 2 bytes per char
        let bytes = encode_response(&Response::Error(long));
        match decode_response(&bytes).unwrap() {
            Response::Error(msg) => assert!(msg.len() <= MAX_ERROR_BYTES),
            other => panic!("expected error, got {other:?}"),
        }
    }
}
