//! Zero-copy store equivalence tests (ISSUE tentpole): a
//! [`MappedStore`] over a migrated POLINV3 snapshot must answer every
//! query — all three summary levels, bbox scans, top-destination scans,
//! and the `pol-apps` estimators built on top — exactly like the heap
//! [`Inventory`] the snapshot came from, while corrupt files are
//! rejected at open time.

use pol_ais::types::{MarketSegment, Mmsi};
use pol_apps::destination::DestinationPredictor;
use pol_apps::eta::EtaEstimator;
use pol_core::codec::{self, columnar, encode_cell_stats};
use pol_core::features::{CellStats, GroupKey};
use pol_core::records::{CellPoint, TripPoint};
use pol_core::{Inventory, InventoryQuery};
use pol_geo::{BBox, LatLon};
use pol_hexgrid::{cell_at, CellIndex, Resolution};
use pol_serve::MappedStore;
use pol_sketch::hash::FxHashMap;
use std::path::PathBuf;

fn res() -> Resolution {
    Resolution::new(6).unwrap()
}

/// A deterministic inventory with traffic in all three grouping sets.
fn sample_inventory(n: usize) -> Inventory {
    let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
    for i in 0..n {
        let pos = LatLon::new(-55.0 + (i % 111) as f64, -170.0 + (i % 340) as f64).unwrap();
        let cell = cell_at(pos, res());
        let cp = CellPoint {
            point: TripPoint {
                mmsi: Mmsi(1 + (i % 9) as u32),
                timestamp: i as i64 * 60,
                pos,
                sog_knots: Some(8.0 + (i % 14) as f64),
                cog_deg: Some((i * 37 % 360) as f64),
                heading_deg: Some((i * 41 % 360) as f64),
                segment: MarketSegment::from_id((i % 7) as u8).unwrap(),
                trip_id: (i % 13) as u64,
                origin: (i % 6) as u16,
                dest: (i % 8) as u16,
                eto_secs: i as i64 * 45,
                ata_secs: (n - i) as i64 * 45,
            },
            cell,
            next_cell: None,
        };
        for key in [
            GroupKey::Cell(cell),
            GroupKey::CellType(cell, cp.point.segment),
            GroupKey::CellRoute(cell, cp.point.origin, cp.point.dest, cp.point.segment),
        ] {
            entries
                .entry(key)
                .or_insert_with(|| CellStats::new(0.02, 8))
                .observe(&cp);
        }
    }
    Inventory::from_entries(res(), entries, n as u64)
}

/// Writes the inventory through the production migration path
/// (POLINV2 bytes → `migrate_v2_bytes` → POLINV3 file) and maps it.
fn migrate_and_map(inv: &Inventory, tag: &str) -> (MappedStore, PathBuf) {
    let dir = std::env::temp_dir().join(format!("pol-serve-mapped-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let v3 = columnar::migrate_v2_bytes(&codec::to_bytes(inv)).unwrap();
    let path = dir.join("inv.pol3");
    std::fs::write(&path, &v3).unwrap();
    (MappedStore::open(&path).unwrap(), dir)
}

/// CellStats equality is by canonical encoding (no `PartialEq`).
fn stats_bytes(stats: Option<std::borrow::Cow<'_, CellStats>>) -> Option<Vec<u8>> {
    stats.map(|s| {
        let mut out = Vec::new();
        encode_cell_stats(&s, &mut out);
        out
    })
}

fn sorted(mut cells: Vec<CellIndex>) -> Vec<CellIndex> {
    cells.sort_unstable_by_key(|c| c.raw());
    cells
}

/// The core bit-identity claim: every point lookup at every grouping
/// level answers byte-identically from the mapped file and the heap map.
#[test]
fn mapped_store_equals_heap_inventory_on_every_lookup() {
    const N: usize = 700;
    let heap = sample_inventory(N);
    let (mapped, dir) = migrate_and_map(&heap, "lookups");

    assert_eq!(mapped.resolution(), InventoryQuery::resolution(&heap));
    assert_eq!(mapped.len(), heap.len());
    assert_eq!(mapped.total_records(), heap.total_records());
    assert!(mapped.is_mapped() || cfg!(not(unix)));

    for i in 0..N {
        let pos = LatLon::new(-55.0 + (i % 111) as f64, -170.0 + (i % 340) as f64).unwrap();
        let cell = cell_at(pos, res());
        let seg = MarketSegment::from_id((i % 7) as u8).unwrap();
        let (origin, dest) = ((i % 6) as u16, (i % 8) as u16);
        // The heap inventory's inherent methods return `&CellStats`;
        // qualify through the trait so both sides answer as `Cow`.
        assert_eq!(
            stats_bytes(mapped.summary(cell)),
            stats_bytes(InventoryQuery::summary(&heap, cell)),
            "cell {i}"
        );
        assert_eq!(
            stats_bytes(mapped.summary_for(cell, seg)),
            stats_bytes(InventoryQuery::summary_for(&heap, cell, seg)),
            "cell-type {i}"
        );
        assert_eq!(
            stats_bytes(mapped.summary_route(cell, origin, dest, seg)),
            stats_bytes(InventoryQuery::summary_route(
                &heap, cell, origin, dest, seg
            )),
            "cell-route {i}"
        );
        // Absent keys answer None from both stores.
        assert!(mapped.summary_route(cell, 400, 401, seg).is_none());
    }
    assert!(mapped.counters().lookups > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Scans agree: bbox queries walk the latitude index, top-destination
/// queries decode every section entry — both must reproduce the heap
/// answers as sets (the wire sorts before replying).
#[test]
fn mapped_store_equals_heap_inventory_on_scans() {
    let heap = sample_inventory(500);
    let (mapped, dir) = migrate_and_map(&heap, "scans");

    for i in 0..24usize {
        let lo_lat = -60.0 + (i * 5) as f64;
        let lo_lon = -170.0 + (i * 12) as f64;
        let bbox = BBox::new(lo_lat, lo_lon, lo_lat + 9.0, lo_lon + 15.0).unwrap();
        assert_eq!(
            sorted(mapped.cells_in(&bbox)),
            sorted(heap.cells_in(&bbox)),
            "bbox {i}"
        );
    }
    for dest in 0..8u16 {
        for segment in [None, Some(MarketSegment::from_id(2).unwrap())] {
            assert_eq!(
                sorted(mapped.cells_with_top_destination(dest, segment)),
                sorted(heap.cells_with_top_destination(dest, segment)),
                "top-dest {dest} {segment:?}"
            );
        }
    }
    assert!(mapped.counters().scan_entries > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The estimators are generic over [`InventoryQuery`]; running them
/// against the mapped store must reproduce the heap answers exactly.
#[test]
fn estimators_agree_across_backends() {
    let heap = sample_inventory(600);
    let (mapped, dir) = migrate_and_map(&heap, "estimators");

    for i in 0..80usize {
        let pos = LatLon::new(-55.0 + (i % 111) as f64, -170.0 + (i % 340) as f64).unwrap();
        let seg = MarketSegment::from_id((i % 7) as u8).unwrap();
        let route = (i % 2 == 0).then_some(((i % 6) as u16, (i % 8) as u16));
        assert_eq!(
            EtaEstimator::new(&mapped).estimate(pos, Some(seg), route),
            EtaEstimator::new(&heap).estimate(pos, Some(seg), route),
            "eta {i}"
        );

        let track: Vec<LatLon> = (0..5)
            .map(|k| {
                LatLon::new(
                    -55.0 + ((i + k) % 111) as f64,
                    -170.0 + ((i + k) % 340) as f64,
                )
                .unwrap()
            })
            .collect();
        let mut from_mapped = DestinationPredictor::new(&mapped, None);
        let mut from_heap = DestinationPredictor::new(&heap, None);
        for p in &track {
            from_mapped.observe(*p);
            from_heap.observe(*p);
        }
        assert_eq!(from_mapped.top(3), from_heap.top(3), "predict {i}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Corruption is caught at `open` — a mapped store never serves from a
/// damaged file (validation happens before any query runs).
#[test]
fn corrupt_snapshot_is_rejected_at_open() {
    let dir = std::env::temp_dir().join(format!("pol-serve-mapped-bad-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let v3 = columnar::to_bytes(&sample_inventory(200));
    for (name, mutate) in [
        (
            "truncated",
            Box::new(|b: &mut Vec<u8>| b.truncate(b.len() / 2)) as Box<dyn Fn(&mut Vec<u8>)>,
        ),
        (
            "bitflip",
            Box::new(|b: &mut Vec<u8>| {
                let mid = b.len() / 2;
                b[mid] ^= 0x40;
            }),
        ),
        ("empty", Box::new(|b: &mut Vec<u8>| b.clear())),
    ] {
        let mut bytes = v3.clone();
        mutate(&mut bytes);
        let path = dir.join(format!("{name}.pol3"));
        std::fs::write(&path, &bytes).unwrap();
        assert!(MappedStore::open(&path).is_err(), "{name} must not open");
    }
    // A POLINV2 file is not a POLINV3 file.
    let v2path = dir.join("v2.pol");
    codec::save(&sample_inventory(200), &v2path).unwrap();
    assert!(MappedStore::open(&v2path).is_err());

    std::fs::remove_dir_all(&dir).ok();
}
