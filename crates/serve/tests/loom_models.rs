//! Model-checked concurrency properties of the serve primitives, run
//! under the vendored loom checker: `RUSTFLAGS="--cfg loom" cargo test
//! -p pol-serve --test loom_models` (the `analysis` stage of `ci.sh`
//! does exactly this). Without `--cfg loom` the file compiles to
//! nothing, so the models never slow the tier-1 suite.
//!
//! Each model re-states a primitive from `server.rs` / `pol_engine`'s
//! pool in loom's shim types, at the granularity where its race lives.
//! The checker then executes every interleaving (up to the preemption
//! bound) — a green run is a proof over that schedule space:
//!
//! 1. [`hot_reload_never_tears_a_query`] — the `RwLock<Arc<_>>` swap in
//!    `Server::reload` vs a query pinning the snapshot.
//! 2. [`admit_guard_never_leaks_a_slot`] — the accept-loop admission
//!    counter survives a worker kill that unwinds through
//!    `catch_unwind`, and a concurrent rejected connection.
//! 3. [`pool_shutdown_drains_every_submitted_job`] — the worker-pool
//!    drain: every job submitted before shutdown runs exactly once and
//!    every worker exits.
//! 4. [`shed_and_enqueue_are_mutually_exclusive`] — the reactor's
//!    per-request admission: under a racing dispatcher pair, a request
//!    is either shed with `Busy` or executed, never both, and the slot
//!    accounting balances.
//! 5. [`eventfd_wakeup_loses_no_completion`] — the worker → event-loop
//!    hand-off: completions pushed before a wake are observed by the
//!    loop's drain-then-apply order in every interleaving (the classic
//!    lost-wakeup shape: drain the eventfd *before* taking the queue).
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex, RwLock};
use loom::thread;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Stand-in for `InventoryService`: two fields whose relation a torn
/// read would break.
struct Snapshot {
    generation: u64,
    checksum: u64,
}

impl Snapshot {
    fn new(generation: u64) -> Snapshot {
        Snapshot {
            generation,
            checksum: generation ^ 0xa15_c0de,
        }
    }

    fn consistent(&self) -> bool {
        self.checksum == self.generation ^ 0xa15_c0de
    }
}

/// `Server::reload` swaps `Arc<RwLock<Arc<InventoryService>>>` while
/// queries pin the current snapshot with `Arc::clone(&service.read())`
/// and keep serving from the pin after the lock is gone. No
/// interleaving may observe a half-replaced snapshot, and the pinned
/// generation must be exactly the old or the new one.
#[test]
fn hot_reload_never_tears_a_query() {
    loom::model(|| {
        let service = Arc::new(RwLock::new(Arc::new(Snapshot::new(1))));

        let writer = {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                let fresh = Arc::new(Snapshot::new(2));
                *service.write().expect("write lock") = fresh;
            })
        };
        let reader = {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                // Pin the snapshot, then drop the lock before "serving",
                // exactly as handle_connection does.
                let pinned = Arc::clone(&service.read().expect("read lock"));
                assert!(pinned.consistent(), "torn snapshot");
                assert!(
                    pinned.generation == 1 || pinned.generation == 2,
                    "phantom generation {}",
                    pinned.generation
                );
            })
        };

        writer.join().expect("writer");
        reader.join().expect("reader");
        let now = service.read().expect("read lock");
        assert_eq!(now.generation, 2, "reload must win once both settle");
        assert!(now.consistent());
    });
}

/// The accept loop's admission slot, released by `AdmitGuard::drop`.
struct AdmitGuard(Arc<AtomicUsize>);

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Mirrors `accept_loop`: `admitted.fetch_add` then reject-and-undo
/// over capacity, otherwise an `AdmitGuard` rides into the worker
/// closure. One admitted connection's worker is killed mid-job (the
/// `serve.worker.kill` fault), unwinding through the pool's
/// `catch_unwind`; another races for the remaining capacity. In every
/// interleaving each admission must be released exactly once — the
/// counter returns to zero whether a connection was served, rejected,
/// or killed.
#[test]
fn admit_guard_never_leaks_a_slot() {
    loom::model(|| {
        let admitted = Arc::new(AtomicUsize::new(0));
        let admit_cap = 1;

        let admit = move |admitted: &Arc<AtomicUsize>| -> Option<AdmitGuard> {
            if admitted.fetch_add(1, Ordering::Relaxed) >= admit_cap {
                admitted.fetch_sub(1, Ordering::Relaxed);
                return None; // rejected busy
            }
            Some(AdmitGuard(Arc::clone(admitted)))
        };

        let killed = {
            let admitted = Arc::clone(&admitted);
            thread::spawn(move || {
                let Some(guard) = admit(&admitted) else {
                    return;
                };
                // The pool worker wraps every job in catch_unwind; the
                // injected kill panics with the guard owned by the job.
                let _ = catch_unwind(AssertUnwindSafe(move || {
                    let _admitted = guard;
                    panic!("serve.worker.kill");
                }));
            })
        };
        let served = {
            let admitted = Arc::clone(&admitted);
            thread::spawn(move || {
                let Some(guard) = admit(&admitted) else {
                    return;
                };
                let _ = catch_unwind(AssertUnwindSafe(move || {
                    let _admitted = guard; // serves and returns normally
                }));
            })
        };

        killed.join().expect("killed connection thread");
        served.join().expect("served connection thread");
        assert_eq!(
            admitted.load(Ordering::Relaxed),
            0,
            "admission slot leaked or double-released"
        );
    });
}

/// The job queue of the modeled worker pool: closing it is what
/// `ThreadPool::drop` does by dropping the crossbeam sender.
struct Chan {
    jobs: VecDeque<usize>,
    closed: bool,
}

/// Mirrors `pol_engine::ThreadPool` shutdown: jobs are submitted, the
/// channel closes, and dropping the pool joins the workers. Crossbeam's
/// disconnect semantics let receivers drain buffered messages, so every
/// job submitted before the close must run exactly once and both
/// workers must exit — in every interleaving of submit, close, pop, and
/// wakeup.
#[test]
fn pool_shutdown_drains_every_submitted_job() {
    loom::model(|| {
        let chan = Arc::new((
            Mutex::new(Chan {
                jobs: VecDeque::new(),
                closed: false,
            }),
            Condvar::new(),
        ));
        let ran = Arc::new(AtomicUsize::new(0));

        let workers: Vec<_> = (0..2)
            .map(|_| {
                let chan = Arc::clone(&chan);
                let ran = Arc::clone(&ran);
                thread::spawn(move || {
                    let (lock, cv) = &*chan;
                    loop {
                        let mut st = lock.lock().expect("chan lock");
                        let job = loop {
                            if let Some(j) = st.jobs.pop_front() {
                                break Some(j);
                            }
                            if st.closed {
                                break None;
                            }
                            st = cv.wait(st).expect("chan wait");
                        };
                        drop(st); // run the job outside the channel lock
                        match job {
                            Some(_) => {
                                ran.fetch_add(1, Ordering::Relaxed);
                            }
                            None => return,
                        }
                    }
                })
            })
            .collect();

        // Submit two jobs, then close — ThreadPool::drop in two steps.
        {
            let (lock, cv) = &*chan;
            let mut st = lock.lock().expect("chan lock");
            st.jobs.push_back(1);
            st.jobs.push_back(2);
            cv.notify_all();
        }
        {
            let (lock, cv) = &*chan;
            let mut st = lock.lock().expect("chan lock");
            st.closed = true;
            cv.notify_all();
        }
        for w in workers {
            w.join().expect("worker exits");
        }
        assert_eq!(
            ran.load(Ordering::Relaxed),
            2,
            "a job submitted before shutdown was dropped or ran twice"
        );
    });
}

/// Mirrors `reactor::EventLoop::dispatch` racing itself: two requests
/// contend for one admission slot. Each dispatcher either takes the
/// slot and "executes" (incrementing `executed` under an `AdmitGuard`,
/// one kill-unwinding like the chaos fault) or sheds (incrementing
/// `shed`). The reactor's invariant: every request lands in exactly one
/// of the two outcomes, and the slot count returns to zero — no request
/// both shed *and* executed, none lost.
#[test]
fn shed_and_enqueue_are_mutually_exclusive() {
    loom::model(|| {
        let admitted = Arc::new(AtomicUsize::new(0));
        let executed = Arc::new(AtomicUsize::new(0));
        let shed = Arc::new(AtomicUsize::new(0));
        let admit_cap = 1;

        let handles: Vec<_> = (0..2)
            .map(|kill| {
                let admitted = Arc::clone(&admitted);
                let executed = Arc::clone(&executed);
                let shed = Arc::clone(&shed);
                thread::spawn(move || {
                    // dispatch(): admission check at the loop…
                    if admitted.fetch_add(1, Ordering::Relaxed) >= admit_cap {
                        admitted.fetch_sub(1, Ordering::Relaxed);
                        shed.fetch_add(1, Ordering::Relaxed); // Busy frame
                        return;
                    }
                    let guard = AdmitGuard(Arc::clone(&admitted));
                    // …then the worker job, kill-contained by the pool.
                    let _ = catch_unwind(AssertUnwindSafe(move || {
                        let _admitted = guard;
                        executed.fetch_add(1, Ordering::Relaxed);
                        if kill == 1 {
                            panic!("serve.worker.kill");
                        }
                    }));
                })
            })
            .collect();
        for h in handles {
            h.join().expect("dispatcher");
        }

        let executed = executed.load(Ordering::Relaxed);
        let shed = shed.load(Ordering::Relaxed);
        assert_eq!(
            executed + shed,
            2,
            "a request vanished or was double-counted ({executed} executed, {shed} shed)"
        );
        assert!(executed >= 1, "capacity 1 must execute at least one");
        assert_eq!(
            admitted.load(Ordering::Relaxed),
            0,
            "admission slot leaked through shed or kill"
        );
    });
}

/// The worker → event-loop completion hand-off, at the granularity of
/// its lost-wakeup hazard. Workers push onto the completion queue and
/// then raise the wake flag (eventfd write). The loop, when it observes
/// the flag, *first* clears it (eventfd drain) and *then* takes the
/// queue — the order `reactor::EventLoop::run` uses. If the loop
/// cleared after taking instead, a push landing between the two would
/// be stranded with its wakeup already consumed, and the final drain
/// below (which only fires while the flag is raised) would never see
/// it. One loop tick races the workers; after everything joins, flag-
/// gated drains must account for both completions. The tick is bounded
/// (no spin loop) so loom's schedule space stays tractable.
#[test]
fn eventfd_wakeup_loses_no_completion() {
    loom::model(|| {
        let completions = Arc::new(Mutex::new(Vec::new()));
        let wake = Arc::new(AtomicUsize::new(0)); // eventfd counter

        // One epoll_wait tick: woken only if the eventfd is readable,
        // then drain-before-take, exactly as EventLoop::run orders it.
        let tick = |completions: &Mutex<Vec<usize>>, wake: &AtomicUsize| -> Vec<usize> {
            if wake.load(Ordering::Acquire) > 0 {
                wake.swap(0, Ordering::AcqRel); // eventfd drain
                std::mem::take(&mut *completions.lock().expect("completions lock"))
            } else {
                Vec::new()
            }
        };

        let workers: Vec<_> = (0..2)
            .map(|id| {
                let completions = Arc::clone(&completions);
                let wake = Arc::clone(&wake);
                thread::spawn(move || {
                    // CompletionGuard::drop → LoopShared::complete:
                    // push under the leaf lock, then ring the eventfd.
                    completions.lock().expect("completions lock").push(id);
                    wake.fetch_add(1, Ordering::Release);
                })
            })
            .collect();

        // One loop tick races the workers at every possible point…
        let racing = {
            let completions = Arc::clone(&completions);
            let wake = Arc::clone(&wake);
            thread::spawn(move || tick(&completions, &wake))
        };

        for w in workers {
            w.join().expect("worker");
        }
        let mut applied = racing.join().expect("event loop tick");
        // …then the settled loop keeps ticking while the eventfd stays
        // readable. A completion stranded with its wakeup consumed (the
        // take-before-drain bug) is invisible to these ticks and fails
        // the assertion.
        while wake.load(Ordering::Acquire) > 0 {
            applied.extend(tick(&completions, &wake));
        }
        applied.sort_unstable();
        assert_eq!(applied, vec![0, 1], "a completion was lost or duplicated");
    });
}
