//! Model-checked concurrency properties of the serve primitives, run
//! under the vendored loom checker: `RUSTFLAGS="--cfg loom" cargo test
//! -p pol-serve --test loom_models` (the `analysis` stage of `ci.sh`
//! does exactly this). Without `--cfg loom` the file compiles to
//! nothing, so the models never slow the tier-1 suite.
//!
//! Each model re-states a primitive from `server.rs` / `pol_engine`'s
//! pool in loom's shim types, at the granularity where its race lives.
//! The checker then executes every interleaving (up to the preemption
//! bound) — a green run is a proof over that schedule space:
//!
//! 1. [`hot_reload_never_tears_a_query`] — the `RwLock<Arc<_>>` swap in
//!    `Server::reload` vs a query pinning the snapshot.
//! 2. [`admit_guard_never_leaks_a_slot`] — the accept-loop admission
//!    counter survives a worker kill that unwinds through
//!    `catch_unwind`, and a concurrent rejected connection.
//! 3. [`pool_shutdown_drains_every_submitted_job`] — the worker-pool
//!    drain: every job submitted before shutdown runs exactly once and
//!    every worker exits.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex, RwLock};
use loom::thread;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Stand-in for `InventoryService`: two fields whose relation a torn
/// read would break.
struct Snapshot {
    generation: u64,
    checksum: u64,
}

impl Snapshot {
    fn new(generation: u64) -> Snapshot {
        Snapshot {
            generation,
            checksum: generation ^ 0xa15_c0de,
        }
    }

    fn consistent(&self) -> bool {
        self.checksum == self.generation ^ 0xa15_c0de
    }
}

/// `Server::reload` swaps `Arc<RwLock<Arc<InventoryService>>>` while
/// queries pin the current snapshot with `Arc::clone(&service.read())`
/// and keep serving from the pin after the lock is gone. No
/// interleaving may observe a half-replaced snapshot, and the pinned
/// generation must be exactly the old or the new one.
#[test]
fn hot_reload_never_tears_a_query() {
    loom::model(|| {
        let service = Arc::new(RwLock::new(Arc::new(Snapshot::new(1))));

        let writer = {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                let fresh = Arc::new(Snapshot::new(2));
                *service.write().expect("write lock") = fresh;
            })
        };
        let reader = {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                // Pin the snapshot, then drop the lock before "serving",
                // exactly as handle_connection does.
                let pinned = Arc::clone(&service.read().expect("read lock"));
                assert!(pinned.consistent(), "torn snapshot");
                assert!(
                    pinned.generation == 1 || pinned.generation == 2,
                    "phantom generation {}",
                    pinned.generation
                );
            })
        };

        writer.join().expect("writer");
        reader.join().expect("reader");
        let now = service.read().expect("read lock");
        assert_eq!(now.generation, 2, "reload must win once both settle");
        assert!(now.consistent());
    });
}

/// The accept loop's admission slot, released by `AdmitGuard::drop`.
struct AdmitGuard(Arc<AtomicUsize>);

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Mirrors `accept_loop`: `admitted.fetch_add` then reject-and-undo
/// over capacity, otherwise an `AdmitGuard` rides into the worker
/// closure. One admitted connection's worker is killed mid-job (the
/// `serve.worker.kill` fault), unwinding through the pool's
/// `catch_unwind`; another races for the remaining capacity. In every
/// interleaving each admission must be released exactly once — the
/// counter returns to zero whether a connection was served, rejected,
/// or killed.
#[test]
fn admit_guard_never_leaks_a_slot() {
    loom::model(|| {
        let admitted = Arc::new(AtomicUsize::new(0));
        let admit_cap = 1;

        let admit = move |admitted: &Arc<AtomicUsize>| -> Option<AdmitGuard> {
            if admitted.fetch_add(1, Ordering::Relaxed) >= admit_cap {
                admitted.fetch_sub(1, Ordering::Relaxed);
                return None; // rejected busy
            }
            Some(AdmitGuard(Arc::clone(admitted)))
        };

        let killed = {
            let admitted = Arc::clone(&admitted);
            thread::spawn(move || {
                let Some(guard) = admit(&admitted) else {
                    return;
                };
                // The pool worker wraps every job in catch_unwind; the
                // injected kill panics with the guard owned by the job.
                let _ = catch_unwind(AssertUnwindSafe(move || {
                    let _admitted = guard;
                    panic!("serve.worker.kill");
                }));
            })
        };
        let served = {
            let admitted = Arc::clone(&admitted);
            thread::spawn(move || {
                let Some(guard) = admit(&admitted) else {
                    return;
                };
                let _ = catch_unwind(AssertUnwindSafe(move || {
                    let _admitted = guard; // serves and returns normally
                }));
            })
        };

        killed.join().expect("killed connection thread");
        served.join().expect("served connection thread");
        assert_eq!(
            admitted.load(Ordering::Relaxed),
            0,
            "admission slot leaked or double-released"
        );
    });
}

/// The job queue of the modeled worker pool: closing it is what
/// `ThreadPool::drop` does by dropping the crossbeam sender.
struct Chan {
    jobs: VecDeque<usize>,
    closed: bool,
}

/// Mirrors `pol_engine::ThreadPool` shutdown: jobs are submitted, the
/// channel closes, and dropping the pool joins the workers. Crossbeam's
/// disconnect semantics let receivers drain buffered messages, so every
/// job submitted before the close must run exactly once and both
/// workers must exit — in every interleaving of submit, close, pop, and
/// wakeup.
#[test]
fn pool_shutdown_drains_every_submitted_job() {
    loom::model(|| {
        let chan = Arc::new((
            Mutex::new(Chan {
                jobs: VecDeque::new(),
                closed: false,
            }),
            Condvar::new(),
        ));
        let ran = Arc::new(AtomicUsize::new(0));

        let workers: Vec<_> = (0..2)
            .map(|_| {
                let chan = Arc::clone(&chan);
                let ran = Arc::clone(&ran);
                thread::spawn(move || {
                    let (lock, cv) = &*chan;
                    loop {
                        let mut st = lock.lock().expect("chan lock");
                        let job = loop {
                            if let Some(j) = st.jobs.pop_front() {
                                break Some(j);
                            }
                            if st.closed {
                                break None;
                            }
                            st = cv.wait(st).expect("chan wait");
                        };
                        drop(st); // run the job outside the channel lock
                        match job {
                            Some(_) => {
                                ran.fetch_add(1, Ordering::Relaxed);
                            }
                            None => return,
                        }
                    }
                })
            })
            .collect();

        // Submit two jobs, then close — ThreadPool::drop in two steps.
        {
            let (lock, cv) = &*chan;
            let mut st = lock.lock().expect("chan lock");
            st.jobs.push_back(1);
            st.jobs.push_back(2);
            cv.notify_all();
        }
        {
            let (lock, cv) = &*chan;
            let mut st = lock.lock().expect("chan lock");
            st.closed = true;
            cv.notify_all();
        }
        for w in workers {
            w.join().expect("worker exits");
        }
        assert_eq!(
            ran.load(Ordering::Relaxed),
            2,
            "a job submitted before shutdown was dropped or ran twice"
        );
    });
}
