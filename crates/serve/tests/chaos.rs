//! Chaos harness (run with `cargo test -p pol-serve --features chaos
//! --test chaos`): a client fleet drives a live server while failpoints
//! kill connection workers and delay reads, and a corrupted snapshot
//! reload is attempted mid-run. The assertions are the ISSUE's
//! acceptance bar: **zero** client-visible wrong answers, only typed
//! retryable errors at a bounded rate, rejected reloads leave the old
//! snapshot serving, and the server recovers fully once the faults are
//! disarmed.

use pol_ais::types::{MarketSegment, Mmsi};
use pol_chaos::{configure, reset, stats, FaultAction, Trigger};
use pol_core::codec;
use pol_core::features::{CellStats, GroupKey};
use pol_core::records::{CellPoint, TripPoint};
use pol_core::Inventory;
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, Resolution};
use pol_serve::proto::{decode_response, read_frame, write_frame, Request, Response};
use pol_serve::{
    Client, ClientConfig, ClientError, ProtoError, RetryPolicy, Server, ServerConfig, ServerCore,
};
use pol_sketch::hash::FxHashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn res() -> Resolution {
    Resolution::new(6).unwrap()
}

fn sample_inventory(n: usize) -> Inventory {
    let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
    for i in 0..n {
        let pos = LatLon::new(-50.0 + (i % 101) as f64, -160.0 + (i % 320) as f64).unwrap();
        let cell = cell_at(pos, res());
        let cp = CellPoint {
            point: TripPoint {
                mmsi: Mmsi(1 + (i % 9) as u32),
                timestamp: i as i64 * 60,
                pos,
                sog_knots: Some(8.0 + (i % 14) as f64),
                cog_deg: Some((i * 37 % 360) as f64),
                heading_deg: Some((i * 41 % 360) as f64),
                segment: MarketSegment::from_id((i % 7) as u8).unwrap(),
                trip_id: (i % 13) as u64,
                origin: (i % 6) as u16,
                dest: (i % 8) as u16,
                eto_secs: i as i64 * 45,
                ata_secs: (n - i) as i64 * 45,
            },
            cell,
            next_cell: None,
        };
        for key in [
            GroupKey::Cell(cell),
            GroupKey::CellType(cell, cp.point.segment),
        ] {
            entries
                .entry(key)
                .or_insert_with(|| CellStats::new(0.02, 8))
                .observe(&cp);
        }
    }
    Inventory::from_entries(res(), entries, n as u64)
}

fn stats_bytes(stats: Option<&CellStats>) -> Option<Vec<u8>> {
    stats.map(|s| {
        let mut out = Vec::new();
        codec::encode_cell_stats(s, &mut out);
        out
    })
}

fn chaos_client_config(seed: u64) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Some(Duration::from_secs(2)),
        retry: RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            deadline: Duration::from_secs(20),
            jitter_seed: seed,
        },
        ..ClientConfig::default()
    }
}

/// Is this one of the errors chaos is *allowed* to surface (transport
/// died / server shed load), as opposed to a wrong answer or a protocol
/// violation?
fn is_retryable_kind(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::ServerBusy
            | ClientError::Proto(ProtoError::Io(_))
            | ClientError::Proto(ProtoError::ConnectionClosed)
    )
}

#[test]
fn fleet_survives_kills_delays_and_corrupt_reload() {
    const N: usize = 400;
    const FLEET: usize = 4;
    const QUERIES: usize = 60;

    let reference = Arc::new(sample_inventory(N));
    let config = ServerConfig {
        worker_threads: 4,
        read_timeout: Duration::from_millis(25),
        drain_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    };
    let mut server = Server::start(sample_inventory(N), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // Arm the chaos: every 40th served frame kills its worker job
    // (contained panic, connection dies without a reply), and reads are
    // randomly delayed. Seeds fixed for a deterministic fault schedule.
    reset();
    configure(
        "serve.worker.kill",
        Trigger::EveryNth {
            n: 40,
            action: FaultAction::Kill,
        },
    );
    configure(
        "serve.conn.read_delay",
        Trigger::Prob {
            p: 0.02,
            seed: 0xC0FFEE,
            action: FaultAction::Delay(Duration::from_millis(2)),
        },
    );

    // Mid-run reload attempts happen concurrently with the fleet: a
    // corrupted snapshot file must be rejected (old snapshot keeps
    // serving, so answers never change), then a clean reload of the
    // *same* inventory must land (generation bumps, answers still equal).
    let wrong_answers = Arc::new(AtomicUsize::new(0));
    let surfaced_errors = Arc::new(AtomicUsize::new(0));
    let dir = std::env::temp_dir().join("pol-serve-chaos-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    std::thread::scope(|s| {
        for tid in 0..FLEET {
            let reference = Arc::clone(&reference);
            let wrong_answers = Arc::clone(&wrong_answers);
            let surfaced_errors = Arc::clone(&surfaced_errors);
            s.spawn(move || {
                let mut client =
                    Client::connect_with(addr, chaos_client_config(100 + tid as u64)).unwrap();
                for j in 0..QUERIES {
                    let i = tid * QUERIES + j;
                    let pos =
                        LatLon::new(-50.0 + (i % 101) as f64, -160.0 + (i % 320) as f64).unwrap();
                    let cell = cell_at(pos, res());
                    match client.point_summary(pos.lat(), pos.lon()) {
                        Ok(got) => {
                            if stats_bytes(got.as_ref()) != stats_bytes(reference.summary(cell)) {
                                wrong_answers.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            assert!(is_retryable_kind(&e), "non-retryable error surfaced: {e}");
                            surfaced_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // The reloader runs while the fleet is querying.
        let corrupt_path = dir.join("corrupt.pol");
        let mut bytes = codec::to_bytes(&sample_inventory(N));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&corrupt_path, &bytes).unwrap();
        let before = server.metrics().generation();
        assert!(
            server.reload_from(&corrupt_path).is_err(),
            "corrupt snapshot must be rejected"
        );
        assert_eq!(
            server.metrics().generation(),
            before,
            "rejected reload must not advance the generation"
        );

        let clean_path = dir.join("clean.pol");
        codec::save(&sample_inventory(N), &clean_path).unwrap();
        server.reload_from(&clean_path).unwrap();
        assert_eq!(server.metrics().generation(), before + 1);
    });

    // Acceptance: not one wrong answer, and the error budget holds (the
    // client retries absorb almost every injected fault).
    let total = FLEET * QUERIES;
    let errors = surfaced_errors.load(Ordering::Relaxed);
    assert_eq!(
        wrong_answers.load(Ordering::Relaxed),
        0,
        "chaos must never cause a wrong answer"
    );
    assert!(
        errors <= total / 10,
        "error rate too high under chaos: {errors}/{total}"
    );

    // The faults actually happened (this test is not vacuous).
    assert!(
        stats("serve.worker.kill").fired >= 1,
        "kill failpoint never fired: {}",
        stats("serve.worker.kill")
    );
    assert!(stats("serve.conn.read_delay").hits > 0);

    // Full recovery: disarm everything, a fresh client sees every
    // endpoint healthy and the reload accounting in STATS.
    reset();
    let mut client = Client::connect_with(addr, chaos_client_config(999)).unwrap();
    client.ping().unwrap();
    let health = client.health().unwrap();
    assert!(health.healthy && !health.draining);
    assert!(client.ready().unwrap());
    let report = client.stats().unwrap();
    assert_eq!(report.reloads_ok, 1);
    assert_eq!(report.reloads_failed, 1);
    for i in 0..20usize {
        let pos = LatLon::new(-50.0 + (i % 101) as f64, -160.0 + (i % 320) as f64).unwrap();
        let cell = cell_at(pos, res());
        let got = client.point_summary(pos.lat(), pos.lon()).unwrap();
        assert_eq!(
            stats_bytes(got.as_ref()),
            stats_bytes(reference.summary(cell)),
            "post-recovery answer {i}"
        );
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The reactor sheds load per *request*, not per connection: while the
/// only worker slot is pinned (a chaos-delayed request), a second
/// connection's request is answered with an immediate typed `Busy` — and
/// that connection stays open and is served normally once the slot
/// frees. The `shed_at_loop` counter attributes the rejection to the
/// event loop.
#[test]
fn reactor_sheds_at_the_loop_and_keeps_the_connection() {
    let config = ServerConfig {
        core: ServerCore::Reactor,
        worker_threads: 1,
        max_pending: 0,
        read_timeout: Duration::from_millis(25),
        ..ServerConfig::default()
    };
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    reset();
    // The first request to reach a worker sleeps 600 ms, pinning the
    // single admission slot for a deterministic window.
    configure(
        "serve.worker.kill",
        Trigger::NthHit {
            n: 1,
            action: FaultAction::Delay(Duration::from_millis(600)),
        },
    );
    let pinner = std::thread::spawn(move || {
        let mut client = Client::connect_with(addr, chaos_client_config(7)).unwrap();
        client.ping().unwrap(); // delayed, then answered
    });
    std::thread::sleep(Duration::from_millis(150)); // slot is pinned now

    // A raw second connection (no client-side Busy retry) sees the shed.
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let payload = pol_serve::proto::encode_request(&Request::Ping);
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).unwrap();
    use std::io::Write;
    stream.write_all(&framed).unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap();
    assert!(
        matches!(decode_response(&reply).unwrap(), Response::Busy),
        "pinned slot must shed the request with Busy"
    );

    // The shed connection survives: once the slot frees, the very same
    // socket is served.
    pinner.join().unwrap();
    stream.write_all(&framed).unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap();
    assert!(matches!(decode_response(&reply).unwrap(), Response::Pong));

    let snap = server.metrics().snapshot();
    assert!(snap.shed_at_loop >= 1, "shed_at_loop never counted");
    assert!(snap.busy_rejections >= 1);
    reset();
    server.shutdown();
}

/// A shed must never strand a *pipelined* connection's queue: when a
/// completion pops the next pending frame and admission sheds it, the
/// rest of the pending queue has no in-flight marker left to pop it — so
/// the loop must keep draining, answering every queued frame with Busy,
/// instead of leaving the connection wedged (no response, not idle, not
/// stalled) until the peer gives up. The `serve.worker.slot_hold` fault
/// pins the admission slot *after* the first completion posts, which is
/// exactly the interleaving where the pop-path shed fires.
#[test]
fn shed_at_pop_answers_every_pipelined_frame() {
    let config = ServerConfig {
        core: ServerCore::Reactor,
        worker_threads: 1,
        max_pending: 0, // admission cap of exactly one slot
        read_timeout: Duration::from_millis(25),
        ..ServerConfig::default()
    };
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    reset();
    // After the first request's completion is posted, its worker keeps
    // the only admission slot pinned for 600 ms: the loop pops the
    // pipelined follow-ups into a full cap.
    configure(
        "serve.worker.slot_hold",
        Trigger::NthHit {
            n: 1,
            action: FaultAction::Delay(Duration::from_millis(600)),
        },
    );

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let payload = pol_serve::proto::encode_request(&Request::Ping);
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).unwrap();
    // Four requests in one burst: the first dispatches, the other three
    // queue behind it in the connection's pending queue.
    let mut burst = Vec::new();
    for _ in 0..4 {
        burst.extend_from_slice(&framed);
    }
    use std::io::Write;
    stream.write_all(&burst).unwrap();

    // Every request gets a response, in order: the served first frame,
    // then one typed Busy per shed follow-up — none goes unanswered.
    let reply = read_frame(&mut stream, 1 << 20).unwrap();
    assert!(
        matches!(decode_response(&reply).unwrap(), Response::Pong),
        "first pipelined request must be served"
    );
    for i in 1..4 {
        let reply = read_frame(&mut stream, 1 << 20).unwrap();
        assert!(
            matches!(decode_response(&reply).unwrap(), Response::Busy),
            "pipelined frame {i} must be shed with Busy, not stranded"
        );
    }

    // The connection is not wedged: once the slot frees, the very same
    // socket is served again.
    std::thread::sleep(Duration::from_millis(700));
    stream.write_all(&framed).unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap();
    assert!(matches!(decode_response(&reply).unwrap(), Response::Pong));

    let snap = server.metrics().snapshot();
    assert!(snap.shed_at_loop >= 3, "pop-path sheds must be counted");
    reset();
    server.shutdown();
}

/// A kill fault must not leak its admission slot: after many kills, the
/// server still admits new connections (the `AdmitGuard` contract).
#[test]
fn killed_workers_do_not_leak_admission_slots() {
    let config = ServerConfig {
        worker_threads: 2,
        max_pending: 1,
        read_timeout: Duration::from_millis(25),
        drain_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    reset();
    configure("serve.worker.kill", Trigger::Always(FaultAction::Kill));
    // Every request meets a kill; with retries exhausted each attempt
    // fails with a transport error. The slots must all be released.
    for seed in 0..6u64 {
        let mut cfg = chaos_client_config(seed);
        cfg.retry.max_attempts = 2;
        cfg.retry.deadline = Duration::from_secs(3);
        let mut client = Client::connect_with(addr, cfg).unwrap();
        let err = client.ping().unwrap_err();
        assert!(is_retryable_kind(&err), "unexpected error: {err}");
    }
    assert!(stats("serve.worker.kill").fired >= 6);

    // Disarmed: the very next connection is admitted and served.
    reset();
    let mut client = Client::connect_with(addr, chaos_client_config(42)).unwrap();
    client.ping().unwrap();
    assert_eq!(
        server.metrics().snapshot().busy_rejections,
        0,
        "kills leaked admission slots into Busy shedding"
    );
    server.shutdown();
}
