//! Property tests for the wire protocol: every request/response encoding
//! round-trips, and corrupted or truncated payloads fail typed — never
//! panic, never over-allocate (mirrors the `core::codec` round-trip
//! suite).

use pol_ais::types::MarketSegment;
use pol_apps::eta::EtaEstimate;
use pol_serve::metrics::{Endpoint, EndpointStats, HealthReport, StatsReport};
use pol_serve::proto::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
};
use proptest::prelude::*;

fn arb_segment() -> impl Strategy<Value = MarketSegment> {
    (0u8..7).prop_map(|id| MarketSegment::from_id(id).expect("id in range"))
}

fn arb_simple_request() -> impl Strategy<Value = Request> {
    (
        0u8..11,
        (-90.0f64..90.0, -180.0f64..180.0),
        arb_segment(),
        (0u16..500, 0u16..500),
        prop::option::of(arb_segment()),
        prop::collection::vec((-90.0f64..90.0, -180.0f64..180.0), 0..16),
        0u8..8,
    )
        .prop_map(
            |(variant, (lat, lon), segment, (origin, dest), opt_seg, track, top_n)| match variant {
                0 => Request::Ping,
                1 => Request::PointSummary { lat, lon },
                2 => Request::SegmentSummary { lat, lon, segment },
                3 => Request::RouteSummary {
                    lat,
                    lon,
                    origin,
                    dest,
                    segment,
                },
                4 => Request::BboxScan {
                    min_lat: lat,
                    min_lon: lon,
                    max_lat: (lat + 1.0).min(90.0),
                    max_lon: (lon + 1.0).min(180.0),
                },
                5 => Request::TopDestinationCells {
                    dest,
                    segment: opt_seg,
                },
                6 => Request::Eta {
                    lat,
                    lon,
                    segment: opt_seg,
                    route: (origin % 2 == 0).then_some((origin, dest)),
                },
                7 => Request::PredictDestination {
                    segment: opt_seg,
                    top_n,
                    track,
                },
                8 => Request::Stats,
                9 => Request::Health,
                _ => Request::Ready,
            },
        )
}

fn arb_request() -> impl Strategy<Value = Request> {
    // Protocol v3: one frame in five carries several simple requests
    // (nesting is forbidden at the wire level, so children are always
    // simple).
    (
        0u8..5,
        arb_simple_request(),
        prop::collection::vec(arb_simple_request(), 0..5),
    )
        .prop_map(|(sel, simple, children)| {
            if sel == 0 {
                Request::Batch(children)
            } else {
                simple
            }
        })
}

fn arb_eta() -> impl Strategy<Value = EtaEstimate> {
    (
        (0.0f64..1e7, 0.0f64..1e7, 0.0f64..1e7, 0.0f64..1e7),
        0u64..1_000_000,
        0u32..8,
    )
        .prop_map(|((mean, p10, p50, p90), samples, widened)| EtaEstimate {
            mean_secs: mean,
            p10_secs: p10,
            p50_secs: p50,
            p90_secs: p90,
            samples,
            widened,
        })
}

fn arb_stats_report() -> impl Strategy<Value = StatsReport> {
    (
        (0u64..1 << 40, 0u64..1000, 0u64..1000, 0u64..10_000),
        (0u64..1 << 30, 0u64..1 << 30),
        (1u64..1 << 20, 0u64..500, 0u64..500),
        (0u64..1 << 30, 0u64..1 << 40, 0u64..1 << 40),
        (0u64..1 << 30, 0u64..1 << 16, 0u64..1 << 24),
        (
            (0u64..20_000, 0u64..20_000),
            (0u64..1 << 40, 0u64..1 << 40),
            (0u64..1 << 30, 0u64..1 << 30),
        ),
        prop::collection::vec(32u8..127, 0..32),
        prop::collection::vec(
            (
                0u8..12,
                0u64..1 << 40,
                (0.0f64..1e4, 0.0f64..1e4, 0.0f64..1e4, 0.0f64..1e5),
            ),
            0..12,
        ),
        prop::collection::vec(32u8..127, 0..200),
    )
        .prop_map(
            |(
                (total, busy, malformed, conns),
                (hits, misses),
                (generation, reloads_ok, reloads_failed),
                (batched, mapped_lookups, mapped_scan_entries),
                (delta_generation, chain_len, since_reload_secs),
                ((open_conns, peak_conns), (ready_events, wakeups), (shed, high_water)),
                store_bytes,
                eps,
                stage_bytes,
            )| StatsReport {
                total_requests: total,
                busy_rejections: busy,
                malformed_frames: malformed,
                connections: conns,
                cache_hits: hits,
                cache_misses: misses,
                generation,
                reloads_ok,
                reloads_failed,
                batched_requests: batched,
                mapped_lookups,
                mapped_scan_entries,
                delta_generation,
                chain_len,
                since_reload_secs,
                open_connections: open_conns,
                peak_connections: peak_conns,
                ready_events,
                wakeups,
                shed_at_loop: shed,
                write_buffer_high_water: high_water,
                store: String::from_utf8(store_bytes).expect("ascii"),
                endpoints: eps
                    .into_iter()
                    .map(|(id, count, (p50, p95, p99, max))| EndpointStats {
                        endpoint: Endpoint::from_id(id).expect("id in range"),
                        count,
                        p50_us: p50,
                        p95_us: p95,
                        p99_us: p99,
                        max_us: max,
                    })
                    .collect(),
                stages: String::from_utf8(stage_bytes).expect("ascii"),
            },
        )
}

fn arb_simple_response() -> impl Strategy<Value = Response> {
    (
        0u8..8,
        prop::collection::vec(0u64..u64::MAX, 0..64),
        prop::option::of(arb_eta()),
        prop::collection::vec((0u16..1000, 0.0f64..1.0), 0..12),
        arb_stats_report(),
        prop::collection::vec(32u8..127, 0..600),
        (1u64..1 << 20, 0u8..4),
    )
        .prop_map(
            |(variant, cells, eta, ranked, report, msg, (generation, flags))| match variant {
                0 => Response::Pong,
                1 => Response::Cells(cells),
                2 => Response::Eta(eta),
                3 => Response::Destinations(ranked),
                4 => Response::Stats(report),
                5 => Response::Health(HealthReport {
                    healthy: flags & 1 != 0,
                    generation,
                    draining: flags & 2 != 0,
                }),
                6 => Response::Ready(flags & 1 != 0),
                _ => Response::Error(String::from_utf8(msg).expect("ascii")),
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..5,
        arb_simple_response(),
        prop::collection::vec(arb_simple_response(), 0..4),
    )
        .prop_map(|(sel, simple, children)| {
            if sel == 0 {
                Response::Batch(children)
            } else {
                simple
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request decodes back to itself.
    #[test]
    fn request_encoding_round_trips(req in arb_request()) {
        let bytes = encode_request(&req);
        prop_assert_eq!(decode_request(&bytes).expect("decodes"), req);
    }

    /// Every response re-encodes to identical bytes after a decode
    /// (`Response` holds `CellStats`-adjacent types without `PartialEq`,
    /// so equality is by canonical encoding — same convention as the
    /// inventory codec tests).
    #[test]
    fn response_encoding_round_trips(resp in arb_response()) {
        let bytes = encode_response(&resp);
        let back = decode_response(&bytes).expect("decodes");
        prop_assert_eq!(encode_response(&back), bytes);
    }

    /// No strict prefix of a valid request is itself a valid request:
    /// truncation is always a typed error, never a silent partial decode
    /// (and never a panic or oversized allocation).
    #[test]
    fn truncated_requests_fail_typed(req in arb_request(), cut in 0usize..4096) {
        let bytes = encode_request(&req);
        if bytes.len() > 1 {
            let cut = cut % (bytes.len() - 1);
            prop_assert!(decode_request(&bytes[..cut]).is_err());
        }
    }

    /// Single-byte corruption anywhere in a request payload either decodes
    /// to some request or fails typed — it must never panic.
    #[test]
    fn corrupted_requests_never_panic(req in arb_request(), pos in 0usize..4096, flip in 1u8..255) {
        let mut bytes = encode_request(&req);
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        let _ = decode_request(&bytes); // must return, Ok or Err
    }

    /// Same for responses, which carry nested variable-length structures.
    #[test]
    fn corrupted_responses_never_panic(resp in arb_response(), pos in 0usize..4096, flip in 1u8..255) {
        let mut bytes = encode_response(&resp);
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        let _ = decode_response(&bytes);
    }
}

/// Pins every wire tag byte to its named opcode constant: a reordered
/// or reused tag is a silent protocol break that round-trip tests alone
/// cannot see (both sides would shift together). Each encoded payload is
/// `[version, tag, ...body]`, and each constant must also survive a
/// decode of a frame built from it — the coverage `xtask`'s
/// `wire_exhaustive` rule demands.
#[test]
fn every_opcode_constant_is_pinned_to_its_frame_tag() {
    use pol_serve::proto::{
        PROTO_VERSION, REQ_BATCH, REQ_BBOX, REQ_ETA, REQ_HEALTH, REQ_PING, REQ_POINT, REQ_PREDICT,
        REQ_READY, REQ_ROUTE, REQ_SEGMENT, REQ_STATS, REQ_TOP_DEST, RESP_BATCH, RESP_BUSY,
        RESP_CELLS, RESP_DESTINATIONS, RESP_ERROR, RESP_ETA, RESP_HEALTH, RESP_PONG, RESP_READY,
        RESP_STATS, RESP_SUMMARY,
    };

    let seg = MarketSegment::from_id(0).expect("segment 0 exists");
    let requests: Vec<(Request, u8)> = vec![
        (Request::Ping, REQ_PING),
        (Request::PointSummary { lat: 1.0, lon: 2.0 }, REQ_POINT),
        (
            Request::SegmentSummary {
                lat: 1.0,
                lon: 2.0,
                segment: seg,
            },
            REQ_SEGMENT,
        ),
        (
            Request::RouteSummary {
                lat: 1.0,
                lon: 2.0,
                origin: 3,
                dest: 4,
                segment: seg,
            },
            REQ_ROUTE,
        ),
        (
            Request::BboxScan {
                min_lat: -1.0,
                min_lon: -2.0,
                max_lat: 1.0,
                max_lon: 2.0,
            },
            REQ_BBOX,
        ),
        (
            Request::TopDestinationCells {
                dest: 7,
                segment: None,
            },
            REQ_TOP_DEST,
        ),
        (
            Request::Eta {
                lat: 1.0,
                lon: 2.0,
                segment: None,
                route: None,
            },
            REQ_ETA,
        ),
        (
            Request::PredictDestination {
                segment: None,
                top_n: 3,
                track: vec![(1.0, 2.0)],
            },
            REQ_PREDICT,
        ),
        (Request::Stats, REQ_STATS),
        (Request::Health, REQ_HEALTH),
        (Request::Ready, REQ_READY),
        (Request::Batch(vec![Request::Ping]), REQ_BATCH),
    ];
    for (req, tag) in requests {
        let payload = encode_request(&req);
        assert_eq!(payload[0], PROTO_VERSION);
        assert_eq!(payload[1], tag, "request tag drifted for {req:?}");
        let back = decode_request(&payload).expect("pinned payload decodes");
        assert_eq!(back, req);
    }

    let responses: Vec<(Response, u8)> = vec![
        (Response::Pong, RESP_PONG),
        (Response::Summary(None), RESP_SUMMARY),
        (Response::Cells(vec![5, 6]), RESP_CELLS),
        (Response::Eta(None), RESP_ETA),
        (Response::Destinations(vec![(1, 0.5)]), RESP_DESTINATIONS),
        (
            Response::Stats(StatsReport {
                total_requests: 1,
                busy_rejections: 0,
                malformed_frames: 0,
                connections: 1,
                cache_hits: 0,
                cache_misses: 0,
                generation: 1,
                reloads_ok: 0,
                reloads_failed: 0,
                batched_requests: 0,
                mapped_lookups: 0,
                mapped_scan_entries: 0,
                delta_generation: 0,
                chain_len: 1,
                since_reload_secs: 0,
                open_connections: 2,
                peak_connections: 3,
                ready_events: 10,
                wakeups: 4,
                shed_at_loop: 1,
                write_buffer_high_water: 256,
                store: "heap".to_string(),
                endpoints: Vec::new(),
                stages: String::new(),
            }),
            RESP_STATS,
        ),
        (Response::Busy, RESP_BUSY),
        (Response::Error("nope".to_string()), RESP_ERROR),
        (
            Response::Health(HealthReport {
                healthy: true,
                generation: 1,
                draining: false,
            }),
            RESP_HEALTH,
        ),
        (Response::Ready(true), RESP_READY),
        (Response::Batch(vec![Response::Pong]), RESP_BATCH),
    ];
    for (resp, tag) in responses {
        let payload = encode_response(&resp);
        assert_eq!(payload[0], PROTO_VERSION);
        assert_eq!(payload[1], tag, "response tag drifted for {resp:?}");
        assert!(decode_response(&payload).is_ok());
    }
}

/// The wire survives a deliberately hostile transport: frames written
/// through the reactor's [`pol_serve::conn::WriteBuffer`] over a sink
/// that fragments, interrupts, and blocks, then read back one byte at a
/// time through a `FrameAccumulator`, must decode to the original
/// requests in order.
#[test]
fn frames_round_trip_over_a_fragmenting_transport() {
    use pol_serve::conn::WriteBuffer;
    use pol_serve::proto::FrameAccumulator;
    use std::io::{self, Read, Write};

    struct Fragmenting {
        sink: Vec<u8>,
        calls: usize,
    }
    impl Write for Fragmenting {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.calls % 3 == 0 {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
            }
            if self.calls % 7 == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "eagain"));
            }
            let n = buf.len().min(3);
            self.sink.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    struct Drip<'a> {
        data: &'a [u8],
        pos: usize,
    }
    impl Read for Drip<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "dry"));
            }
            let n = buf.len().min(1);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    let requests = vec![
        Request::Ping,
        Request::PointSummary {
            lat: 42.0,
            lon: -7.5,
        },
        Request::TopDestinationCells {
            dest: 9,
            segment: None,
        },
        Request::Stats,
    ];
    let mut wb = WriteBuffer::new();
    for req in &requests {
        wb.push_frame(&encode_request(req));
    }
    let mut t = Fragmenting {
        sink: Vec::new(),
        calls: 0,
    };
    let mut spins = 0;
    while !wb.is_empty() {
        wb.flush_to(&mut t)
            .expect("fragmenting writes must succeed");
        spins += 1;
        assert!(spins < 10_000, "flush did not converge");
    }

    let mut r = Drip {
        data: &t.sink,
        pos: 0,
    };
    let mut acc = FrameAccumulator::new();
    let mut decoded = Vec::new();
    loop {
        match acc.poll(&mut r, 1 << 20) {
            Ok(Some(payload)) => decoded.push(decode_request(&payload).expect("valid frame")),
            Ok(None) => {}
            Err(e) => {
                assert!(decoded.len() == requests.len(), "stream ended early: {e}");
                break;
            }
        }
    }
    assert_eq!(
        decoded, requests,
        "round-trip must preserve order and content"
    );
}
