//! End-to-end loopback tests: a real server on an ephemeral port, driven
//! by concurrent clients, with every response checked against the answer
//! computed directly on the unsharded `Inventory`. Also covers the
//! operational contracts: backpressure (`Busy`), malformed-frame
//! rejection, frame-size caps, and clean shutdown with clients attached.

use pol_ais::types::{MarketSegment, Mmsi};
use pol_apps::destination::DestinationPredictor;
use pol_apps::eta::EtaEstimator;
use pol_core::codec::encode_cell_stats;
use pol_core::features::{CellStats, GroupKey};
use pol_core::records::{CellPoint, TripPoint};
use pol_core::Inventory;
use pol_geo::{BBox, LatLon};
use pol_hexgrid::{cell_at, CellIndex, Resolution};
use pol_serve::proto::{read_frame, write_frame, ProtoError, Request, Response, PROTO_VERSION};
use pol_serve::{Client, ClientError, Server, ServerConfig};
use pol_sketch::hash::FxHashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn res() -> Resolution {
    Resolution::new(6).unwrap()
}

/// A deterministic inventory with traffic in all three grouping sets.
fn sample_inventory(n: usize) -> Inventory {
    let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
    for i in 0..n {
        let pos = LatLon::new(-55.0 + (i % 111) as f64, -170.0 + (i % 340) as f64).unwrap();
        let cell = cell_at(pos, res());
        let cp = CellPoint {
            point: TripPoint {
                mmsi: Mmsi(1 + (i % 9) as u32),
                timestamp: i as i64 * 60,
                pos,
                sog_knots: Some(8.0 + (i % 14) as f64),
                cog_deg: Some((i * 37 % 360) as f64),
                heading_deg: Some((i * 41 % 360) as f64),
                segment: MarketSegment::from_id((i % 7) as u8).unwrap(),
                trip_id: (i % 13) as u64,
                origin: (i % 6) as u16,
                dest: (i % 8) as u16,
                eto_secs: i as i64 * 45,
                ata_secs: (n - i) as i64 * 45,
            },
            cell,
            next_cell: None,
        };
        for key in [
            GroupKey::Cell(cell),
            GroupKey::CellType(cell, cp.point.segment),
            GroupKey::CellRoute(cell, cp.point.origin, cp.point.dest, cp.point.segment),
        ] {
            entries
                .entry(key)
                .or_insert_with(|| CellStats::new(0.02, 8))
                .observe(&cp);
        }
    }
    Inventory::from_entries(res(), entries, n as u64)
}

/// CellStats has no `PartialEq`; its canonical encoding is deterministic,
/// so equality-by-encoded-bytes is exact.
fn stats_bytes(stats: Option<&CellStats>) -> Option<Vec<u8>> {
    stats.map(|s| {
        let mut out = Vec::new();
        encode_cell_stats(s, &mut out);
        out
    })
}

fn test_config() -> ServerConfig {
    ServerConfig {
        worker_threads: 6,
        read_timeout: Duration::from_millis(25),
        ..ServerConfig::default()
    }
}

/// Every request type, from 4 concurrent client threads, each answer
/// compared against the direct `Inventory` computation.
#[test]
fn concurrent_responses_equal_direct_inventory_queries() {
    const N: usize = 600;
    let reference = Arc::new(sample_inventory(N));
    let mut server = Server::start(sample_inventory(N), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();

    std::thread::scope(|s| {
        for tid in 0..4usize {
            let reference = Arc::clone(&reference);
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.ping().unwrap();
                for j in 0..40usize {
                    let i = tid * 40 + j;
                    let pos =
                        LatLon::new(-55.0 + (i % 111) as f64, -170.0 + (i % 340) as f64).unwrap();
                    let cell = cell_at(pos, res());
                    let seg = MarketSegment::from_id((i % 7) as u8).unwrap();
                    let (origin, dest) = ((i % 6) as u16, (i % 8) as u16);

                    let got = client.point_summary(pos.lat(), pos.lon()).unwrap();
                    assert_eq!(
                        stats_bytes(got.as_ref()),
                        stats_bytes(reference.summary(cell)),
                        "point {i}"
                    );

                    let got = client.segment_summary(pos.lat(), pos.lon(), seg).unwrap();
                    assert_eq!(
                        stats_bytes(got.as_ref()),
                        stats_bytes(reference.summary_for(cell, seg)),
                        "segment {i}"
                    );

                    let got = client
                        .route_summary(pos.lat(), pos.lon(), origin, dest, seg)
                        .unwrap();
                    assert_eq!(
                        stats_bytes(got.as_ref()),
                        stats_bytes(reference.summary_route(cell, origin, dest, seg)),
                        "route {i}"
                    );

                    let (lo_lat, lo_lon) = (pos.lat() - 4.0, pos.lon().max(-175.0) - 4.0);
                    let bbox = BBox::new(lo_lat, lo_lon, lo_lat + 8.0, lo_lon + 8.0).unwrap();
                    let got = client
                        .bbox_scan(lo_lat, lo_lon, lo_lat + 8.0, lo_lon + 8.0)
                        .unwrap();
                    let mut want: Vec<u64> =
                        reference.cells_in(&bbox).iter().map(|c| c.raw()).collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "bbox {i}");

                    let got = client.top_destination_cells(dest, Some(seg)).unwrap();
                    let mut want: Vec<u64> = reference
                        .cells_with_top_destination(dest, Some(seg))
                        .iter()
                        .map(|c| c.raw())
                        .collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "top-dest {i}");

                    let got = client
                        .eta(pos.lat(), pos.lon(), Some(seg), Some((origin, dest)))
                        .unwrap();
                    let want = EtaEstimator::new(reference.as_ref()).estimate(
                        pos,
                        Some(seg),
                        Some((origin, dest)),
                    );
                    assert_eq!(got, want, "eta {i}");

                    let track: Vec<(f64, f64)> = (0..5)
                        .map(|k| {
                            let p = LatLon::new(
                                -55.0 + ((i + k) % 111) as f64,
                                -170.0 + ((i + k) % 340) as f64,
                            )
                            .unwrap();
                            (p.lat(), p.lon())
                        })
                        .collect();
                    let got = client.predict_destination(None, 3, track.clone()).unwrap();
                    let mut predictor = DestinationPredictor::new(reference.as_ref(), None);
                    for (lat, lon) in &track {
                        predictor.observe(LatLon::new(*lat, *lon).unwrap());
                    }
                    assert_eq!(got, predictor.top(3), "predict {i}");
                }
            });
        }
    });

    let stats = server.metrics().snapshot();
    assert!(
        stats.total_requests >= 4 * 40 * 7,
        "{}",
        stats.total_requests
    );
    assert_eq!(stats.connections, 4);
    assert_eq!(stats.malformed_frames, 0);
    server.shutdown();
}

/// The `STATS` endpoint reflects traffic and the shard-build stage.
#[test]
fn stats_endpoint_reports_counters_and_stages() {
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    client.point_summary(10.0, 10.0).unwrap();
    let report = client.stats().unwrap();
    assert!(report.total_requests >= 2);
    assert_eq!(report.connections, 1);
    assert!(report.stages.contains("shard-build"));
    assert!(report
        .endpoints
        .iter()
        .any(|e| e.endpoint == pol_serve::Endpoint::PointSummary && e.count == 1));
    server.shutdown();
}

/// Connections beyond `worker_threads + max_pending` are shed with a
/// typed `Busy` frame instead of queueing.
#[test]
fn overload_is_rejected_with_busy() {
    let config = ServerConfig {
        worker_threads: 1,
        max_pending: 0,
        read_timeout: Duration::from_millis(25),
        ..ServerConfig::default()
    };
    let mut server = Server::start(sample_inventory(20), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let mut first = Client::connect(addr).unwrap();
    first.ping().unwrap(); // guarantees the admission is registered
    let mut second = Client::connect(addr).unwrap();
    match second.ping() {
        Err(ClientError::ServerBusy) => {}
        other => panic!("expected ServerBusy, got {other:?}"),
    }
    // The client retries Busy on fresh connections before giving up, so
    // every attempt lands one rejection.
    assert!(server.metrics().snapshot().busy_rejections >= 1);

    // Releasing the first connection frees the slot for a new client.
    drop(first);
    std::thread::sleep(Duration::from_millis(150));
    let mut third = Client::connect(addr).unwrap();
    third.ping().unwrap();
    server.shutdown();
}

/// A frame that fails to decode gets one typed error and the socket.
#[test]
fn malformed_frame_answered_then_disconnected() {
    let mut server = Server::start(sample_inventory(20), "127.0.0.1:0", test_config()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut stream, &[PROTO_VERSION, 250]).unwrap(); // unknown tag
    stream.flush().unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap();
    match pol_serve::proto::decode_response(&reply).unwrap() {
        Response::Error(msg) => assert!(msg.contains("tag"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // The server closes after a malformed frame.
    match read_frame(&mut stream, 1 << 20) {
        Err(ProtoError::ConnectionClosed) | Err(ProtoError::Io(_)) => {}
        other => panic!("expected closed connection, got {other:?}"),
    }
    assert_eq!(server.metrics().snapshot().malformed_frames, 1);
    server.shutdown();
}

/// A declared frame length over the cap is rejected without allocating it.
#[test]
fn oversized_frame_rejected() {
    let mut server = Server::start(sample_inventory(20), "127.0.0.1:0", test_config()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let huge = (1u32 << 30).to_le_bytes();
    stream.write_all(&huge).unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap();
    match pol_serve::proto::decode_response(&reply).unwrap() {
        Response::Error(msg) => assert!(msg.contains("exceeds"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    server.shutdown();
}

/// Shutdown drains cleanly with a client still attached, and the port
/// stops answering.
#[test]
fn shutdown_is_clean_and_idempotent() {
    let mut server = Server::start(sample_inventory(20), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    server.shutdown();
    server.shutdown(); // idempotent
                       // The attached client's next request fails: connection drained.
    client
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    assert!(client.ping().is_err());
}

/// Requests round-trip through a real socket even when split into
/// byte-sized writes (exercises the server's frame accumulator).
#[test]
fn fragmented_request_is_reassembled() {
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", test_config()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let payload = pol_serve::proto::encode_request(&Request::Ping);
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).unwrap();
    for b in framed {
        stream.write_all(&[b]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let reply = read_frame(&mut stream, 1 << 20).unwrap();
    assert!(matches!(
        pol_serve::proto::decode_response(&reply).unwrap(),
        Response::Pong
    ));
    server.shutdown();
}

/// A request whose bytes were accepted before shutdown gets its answer:
/// the draining server serves the in-flight frame instead of resetting
/// the connection.
#[test]
fn shutdown_drains_in_flight_requests() {
    let config = ServerConfig {
        worker_threads: 2,
        read_timeout: Duration::from_millis(25),
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", config).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // Deliver the first half of a Ping frame, so shutdown finds this
    // connection mid-request.
    let payload = pol_serve::proto::encode_request(&Request::Ping);
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).unwrap();
    let split = framed.len() / 2;
    stream.write_all(&framed[..split]).unwrap();
    stream.flush().unwrap();

    let finisher = std::thread::spawn(move || {
        // Let shutdown begin, then complete the frame and collect the
        // answer the drain owes us.
        std::thread::sleep(Duration::from_millis(150));
        stream.write_all(&framed[split..]).unwrap();
        stream.flush().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();
        let reply = read_frame(&mut stream, 1 << 20).expect("drained request must be answered");
        assert!(matches!(
            pol_serve::proto::decode_response(&reply).unwrap(),
            Response::Pong
        ));
    });
    std::thread::sleep(Duration::from_millis(50)); // frame half-delivered
    server.shutdown();
    finisher.join().unwrap();
}

/// `HEALTH` and `READY` report the live generation and flip on reload.
#[test]
fn health_ready_and_hot_reload() {
    let reference = Arc::new(sample_inventory(300));
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let health = client.health().unwrap();
    assert!(health.healthy && !health.draining);
    assert_eq!(health.generation, 1);
    assert!(client.ready().unwrap());

    // Hot-swap to a bigger snapshot; the attached client sees the new
    // data on its very next request, same connection.
    server.reload(sample_inventory(300));
    let health = client.health().unwrap();
    assert_eq!(health.generation, 2);
    let pos = LatLon::new(-50.0, -160.0).unwrap();
    let cell = cell_at(pos, res());
    let got = client.point_summary(pos.lat(), pos.lon()).unwrap();
    assert_eq!(
        stats_bytes(got.as_ref()),
        stats_bytes(reference.summary(cell)),
        "post-reload answers must come from the new snapshot"
    );
    let report = client.stats().unwrap();
    assert_eq!(report.generation, 2);
    assert_eq!(report.reloads_ok, 1);
    assert_eq!(report.reloads_failed, 0);
    server.shutdown();
}

/// `reload_from` on a corrupt file keeps the old snapshot serving.
#[test]
fn corrupt_reload_is_rejected_and_old_snapshot_survives() {
    use pol_core::codec;
    let dir = std::env::temp_dir().join("pol-serve-reload-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let reference = Arc::new(sample_inventory(50));
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut bytes = codec::to_bytes(&sample_inventory(300));
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01; // bit rot
    let path = dir.join("corrupt.pol");
    std::fs::write(&path, &bytes).unwrap();
    assert!(server.reload_from(&path).is_err());

    // Old snapshot still answers, generation unmoved, failure accounted.
    let pos = LatLon::new(-50.0, -160.0).unwrap();
    let cell = cell_at(pos, res());
    let got = client.point_summary(pos.lat(), pos.lon()).unwrap();
    assert_eq!(
        stats_bytes(got.as_ref()),
        stats_bytes(reference.summary(cell))
    );
    let report = client.stats().unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.reloads_failed, 1);

    // A clean file lands.
    let clean = dir.join("clean.pol");
    codec::save(&sample_inventory(300), &clean).unwrap();
    server.reload_from(&clean).unwrap();
    assert_eq!(client.stats().unwrap().generation, 2);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// `CellIndex::from_raw` accepts every index a bbox scan returns (the
/// wire sends raw u64s; clients must be able to reconstruct them).
#[test]
fn scanned_cells_reconstruct_as_valid_indices() {
    let mut server = Server::start(sample_inventory(200), "127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let cells = client.bbox_scan(-89.0, -179.0, 89.0, 179.0).unwrap();
    assert!(!cells.is_empty());
    for raw in cells {
        CellIndex::from_raw(raw).unwrap();
    }
    server.shutdown();
}
