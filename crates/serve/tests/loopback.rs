//! End-to-end loopback tests: a real server on an ephemeral port, driven
//! by concurrent clients, with every response checked against the answer
//! computed directly on the unsharded `Inventory`. Also covers the
//! operational contracts: backpressure (`Busy`), malformed-frame
//! rejection, frame-size caps, and clean shutdown with clients attached.

use pol_ais::types::{MarketSegment, Mmsi};
use pol_apps::destination::DestinationPredictor;
use pol_apps::eta::EtaEstimator;
use pol_core::codec::encode_cell_stats;
use pol_core::features::{CellStats, GroupKey};
use pol_core::records::{CellPoint, TripPoint};
use pol_core::Inventory;
use pol_geo::{BBox, LatLon};
use pol_hexgrid::{cell_at, CellIndex, Resolution};
use pol_serve::proto::{read_frame, write_frame, ProtoError, Request, Response, PROTO_VERSION};
use pol_serve::{Client, ClientError, Server, ServerConfig, ServerCore};
use pol_sketch::hash::FxHashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn res() -> Resolution {
    Resolution::new(6).unwrap()
}

/// A deterministic inventory with traffic in all three grouping sets.
fn sample_inventory(n: usize) -> Inventory {
    let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
    for i in 0..n {
        let pos = LatLon::new(-55.0 + (i % 111) as f64, -170.0 + (i % 340) as f64).unwrap();
        let cell = cell_at(pos, res());
        let cp = CellPoint {
            point: TripPoint {
                mmsi: Mmsi(1 + (i % 9) as u32),
                timestamp: i as i64 * 60,
                pos,
                sog_knots: Some(8.0 + (i % 14) as f64),
                cog_deg: Some((i * 37 % 360) as f64),
                heading_deg: Some((i * 41 % 360) as f64),
                segment: MarketSegment::from_id((i % 7) as u8).unwrap(),
                trip_id: (i % 13) as u64,
                origin: (i % 6) as u16,
                dest: (i % 8) as u16,
                eto_secs: i as i64 * 45,
                ata_secs: (n - i) as i64 * 45,
            },
            cell,
            next_cell: None,
        };
        for key in [
            GroupKey::Cell(cell),
            GroupKey::CellType(cell, cp.point.segment),
            GroupKey::CellRoute(cell, cp.point.origin, cp.point.dest, cp.point.segment),
        ] {
            entries
                .entry(key)
                .or_insert_with(|| CellStats::new(0.02, 8))
                .observe(&cp);
        }
    }
    Inventory::from_entries(res(), entries, n as u64)
}

/// CellStats has no `PartialEq`; its canonical encoding is deterministic,
/// so equality-by-encoded-bytes is exact.
fn stats_bytes(stats: Option<&CellStats>) -> Option<Vec<u8>> {
    stats.map(|s| {
        let mut out = Vec::new();
        encode_cell_stats(s, &mut out);
        out
    })
}

fn test_config() -> ServerConfig {
    ServerConfig {
        worker_threads: 6,
        read_timeout: Duration::from_millis(25),
        ..ServerConfig::default()
    }
}

/// Every request type, from 4 concurrent client threads, each answer
/// compared against the direct `Inventory` computation.
#[test]
fn concurrent_responses_equal_direct_inventory_queries() {
    const N: usize = 600;
    let reference = Arc::new(sample_inventory(N));
    let mut server = Server::start(sample_inventory(N), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();

    std::thread::scope(|s| {
        for tid in 0..4usize {
            let reference = Arc::clone(&reference);
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.ping().unwrap();
                for j in 0..40usize {
                    let i = tid * 40 + j;
                    let pos =
                        LatLon::new(-55.0 + (i % 111) as f64, -170.0 + (i % 340) as f64).unwrap();
                    let cell = cell_at(pos, res());
                    let seg = MarketSegment::from_id((i % 7) as u8).unwrap();
                    let (origin, dest) = ((i % 6) as u16, (i % 8) as u16);

                    let got = client.point_summary(pos.lat(), pos.lon()).unwrap();
                    assert_eq!(
                        stats_bytes(got.as_ref()),
                        stats_bytes(reference.summary(cell)),
                        "point {i}"
                    );

                    let got = client.segment_summary(pos.lat(), pos.lon(), seg).unwrap();
                    assert_eq!(
                        stats_bytes(got.as_ref()),
                        stats_bytes(reference.summary_for(cell, seg)),
                        "segment {i}"
                    );

                    let got = client
                        .route_summary(pos.lat(), pos.lon(), origin, dest, seg)
                        .unwrap();
                    assert_eq!(
                        stats_bytes(got.as_ref()),
                        stats_bytes(reference.summary_route(cell, origin, dest, seg)),
                        "route {i}"
                    );

                    let (lo_lat, lo_lon) = (pos.lat() - 4.0, pos.lon().max(-175.0) - 4.0);
                    let bbox = BBox::new(lo_lat, lo_lon, lo_lat + 8.0, lo_lon + 8.0).unwrap();
                    let got = client
                        .bbox_scan(lo_lat, lo_lon, lo_lat + 8.0, lo_lon + 8.0)
                        .unwrap();
                    let mut want: Vec<u64> =
                        reference.cells_in(&bbox).iter().map(|c| c.raw()).collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "bbox {i}");

                    let got = client.top_destination_cells(dest, Some(seg)).unwrap();
                    let mut want: Vec<u64> = reference
                        .cells_with_top_destination(dest, Some(seg))
                        .iter()
                        .map(|c| c.raw())
                        .collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "top-dest {i}");

                    let got = client
                        .eta(pos.lat(), pos.lon(), Some(seg), Some((origin, dest)))
                        .unwrap();
                    let want = EtaEstimator::new(reference.as_ref()).estimate(
                        pos,
                        Some(seg),
                        Some((origin, dest)),
                    );
                    assert_eq!(got, want, "eta {i}");

                    let track: Vec<(f64, f64)> = (0..5)
                        .map(|k| {
                            let p = LatLon::new(
                                -55.0 + ((i + k) % 111) as f64,
                                -170.0 + ((i + k) % 340) as f64,
                            )
                            .unwrap();
                            (p.lat(), p.lon())
                        })
                        .collect();
                    let got = client.predict_destination(None, 3, track.clone()).unwrap();
                    let mut predictor = DestinationPredictor::new(reference.as_ref(), None);
                    for (lat, lon) in &track {
                        predictor.observe(LatLon::new(*lat, *lon).unwrap());
                    }
                    assert_eq!(got, predictor.top(3), "predict {i}");
                }
            });
        }
    });

    let stats = server.metrics().snapshot();
    assert!(
        stats.total_requests >= 4 * 40 * 7,
        "{}",
        stats.total_requests
    );
    assert_eq!(stats.connections, 4);
    assert_eq!(stats.malformed_frames, 0);
    server.shutdown();
}

/// The `STATS` endpoint reflects traffic and the shard-build stage.
#[test]
fn stats_endpoint_reports_counters_and_stages() {
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.ping().unwrap();
    client.point_summary(10.0, 10.0).unwrap();
    let report = client.stats().unwrap();
    assert!(report.total_requests >= 2);
    assert_eq!(report.connections, 1);
    assert!(report.stages.contains("shard-build"));
    assert!(report
        .endpoints
        .iter()
        .any(|e| e.endpoint == pol_serve::Endpoint::PointSummary && e.count == 1));
    server.shutdown();
}

/// Connections beyond `worker_threads + max_pending` are shed with a
/// typed `Busy` frame instead of queueing. Pinned to the threaded core,
/// whose admission is per *connection* (a second attached connection is
/// over the cap even while idle); the reactor core admits per request —
/// its shedding is covered by the chaos suite's
/// `reactor_sheds_at_the_loop_and_keeps_the_connection`.
#[test]
fn overload_is_rejected_with_busy() {
    let config = ServerConfig {
        core: ServerCore::Threaded,
        worker_threads: 1,
        max_pending: 0,
        read_timeout: Duration::from_millis(25),
        ..ServerConfig::default()
    };
    let mut server = Server::start(sample_inventory(20), "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let mut first = Client::connect(addr).unwrap();
    first.ping().unwrap(); // guarantees the admission is registered
    let mut second = Client::connect(addr).unwrap();
    match second.ping() {
        Err(ClientError::ServerBusy) => {}
        other => panic!("expected ServerBusy, got {other:?}"),
    }
    // The client retries Busy on fresh connections before giving up, so
    // every attempt lands one rejection.
    assert!(server.metrics().snapshot().busy_rejections >= 1);

    // Releasing the first connection frees the slot for a new client.
    drop(first);
    std::thread::sleep(Duration::from_millis(150));
    let mut third = Client::connect(addr).unwrap();
    third.ping().unwrap();
    server.shutdown();
}

/// A frame that fails to decode gets one typed error and the socket.
#[test]
fn malformed_frame_answered_then_disconnected() {
    let mut server = Server::start(sample_inventory(20), "127.0.0.1:0", test_config()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut stream, &[PROTO_VERSION, 250]).unwrap(); // unknown tag
    stream.flush().unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap();
    match pol_serve::proto::decode_response(&reply).unwrap() {
        Response::Error(msg) => assert!(msg.contains("tag"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // The server closes after a malformed frame.
    match read_frame(&mut stream, 1 << 20) {
        Err(ProtoError::ConnectionClosed) | Err(ProtoError::Io(_)) => {}
        other => panic!("expected closed connection, got {other:?}"),
    }
    assert_eq!(server.metrics().snapshot().malformed_frames, 1);
    server.shutdown();
}

/// A declared frame length over the cap is rejected without allocating it.
#[test]
fn oversized_frame_rejected() {
    let mut server = Server::start(sample_inventory(20), "127.0.0.1:0", test_config()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let huge = (1u32 << 30).to_le_bytes();
    stream.write_all(&huge).unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream, 1 << 20).unwrap();
    match pol_serve::proto::decode_response(&reply).unwrap() {
        Response::Error(msg) => assert!(msg.contains("exceeds"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    server.shutdown();
}

/// Shutdown drains cleanly with a client still attached, and the port
/// stops answering.
#[test]
fn shutdown_is_clean_and_idempotent() {
    let mut server = Server::start(sample_inventory(20), "127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    server.shutdown();
    server.shutdown(); // idempotent
                       // The attached client's next request fails: connection drained.
    client
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    assert!(client.ping().is_err());
}

/// Requests round-trip through a real socket even when split into
/// byte-sized writes (exercises the server's frame accumulator).
#[test]
fn fragmented_request_is_reassembled() {
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", test_config()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let payload = pol_serve::proto::encode_request(&Request::Ping);
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).unwrap();
    for b in framed {
        stream.write_all(&[b]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let reply = read_frame(&mut stream, 1 << 20).unwrap();
    assert!(matches!(
        pol_serve::proto::decode_response(&reply).unwrap(),
        Response::Pong
    ));
    server.shutdown();
}

/// A request whose bytes were accepted before shutdown gets its answer:
/// the draining server serves the in-flight frame instead of resetting
/// the connection.
#[test]
fn shutdown_drains_in_flight_requests() {
    let config = ServerConfig {
        worker_threads: 2,
        read_timeout: Duration::from_millis(25),
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", config).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // Deliver the first half of a Ping frame, so shutdown finds this
    // connection mid-request.
    let payload = pol_serve::proto::encode_request(&Request::Ping);
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).unwrap();
    let split = framed.len() / 2;
    stream.write_all(&framed[..split]).unwrap();
    stream.flush().unwrap();

    let finisher = std::thread::spawn(move || {
        // Let shutdown begin, then complete the frame and collect the
        // answer the drain owes us.
        std::thread::sleep(Duration::from_millis(150));
        stream.write_all(&framed[split..]).unwrap();
        stream.flush().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();
        let reply = read_frame(&mut stream, 1 << 20).expect("drained request must be answered");
        assert!(matches!(
            pol_serve::proto::decode_response(&reply).unwrap(),
            Response::Pong
        ));
    });
    std::thread::sleep(Duration::from_millis(50)); // frame half-delivered
    server.shutdown();
    finisher.join().unwrap();
}

/// `HEALTH` and `READY` report the live generation and flip on reload.
#[test]
fn health_ready_and_hot_reload() {
    let reference = Arc::new(sample_inventory(300));
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let health = client.health().unwrap();
    assert!(health.healthy && !health.draining);
    assert_eq!(health.generation, 1);
    assert!(client.ready().unwrap());

    // Hot-swap to a bigger snapshot; the attached client sees the new
    // data on its very next request, same connection.
    server.reload(sample_inventory(300));
    let health = client.health().unwrap();
    assert_eq!(health.generation, 2);
    let pos = LatLon::new(-50.0, -160.0).unwrap();
    let cell = cell_at(pos, res());
    let got = client.point_summary(pos.lat(), pos.lon()).unwrap();
    assert_eq!(
        stats_bytes(got.as_ref()),
        stats_bytes(reference.summary(cell)),
        "post-reload answers must come from the new snapshot"
    );
    let report = client.stats().unwrap();
    assert_eq!(report.generation, 2);
    assert_eq!(report.reloads_ok, 1);
    assert_eq!(report.reloads_failed, 0);
    server.shutdown();
}

/// `reload_from` on a corrupt file keeps the old snapshot serving.
#[test]
fn corrupt_reload_is_rejected_and_old_snapshot_survives() {
    use pol_core::codec;
    let dir = std::env::temp_dir().join("pol-serve-reload-test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let reference = Arc::new(sample_inventory(50));
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut bytes = codec::to_bytes(&sample_inventory(300));
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01; // bit rot
    let path = dir.join("corrupt.pol");
    std::fs::write(&path, &bytes).unwrap();
    assert!(server.reload_from(&path).is_err());

    // Old snapshot still answers, generation unmoved, failure accounted.
    let pos = LatLon::new(-50.0, -160.0).unwrap();
    let cell = cell_at(pos, res());
    let got = client.point_summary(pos.lat(), pos.lon()).unwrap();
    assert_eq!(
        stats_bytes(got.as_ref()),
        stats_bytes(reference.summary(cell))
    );
    let report = client.stats().unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.reloads_failed, 1);

    // A clean file lands.
    let clean = dir.join("clean.pol");
    codec::save(&sample_inventory(300), &clean).unwrap();
    server.reload_from(&clean).unwrap();
    assert_eq!(client.stats().unwrap().generation, 2);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A server started from a migrated POLINV3 snapshot (zero-copy mapped
/// backend) answers every endpoint exactly like the heap-backed server
/// over the same data, and reports the mapped store through `STATS`.
#[test]
fn mmap_snapshot_server_equals_heap_server() {
    use pol_core::codec::{self, columnar};
    const N: usize = 400;
    let dir = std::env::temp_dir().join(format!("pol-serve-mmap-loop-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let v3_path = dir.join("inv.pol3");
    let v3 = columnar::migrate_v2_bytes(&codec::to_bytes(&sample_inventory(N))).unwrap();
    std::fs::write(&v3_path, &v3).unwrap();

    let mut heap_server = Server::start(sample_inventory(N), "127.0.0.1:0", test_config()).unwrap();
    let mut mmap_server = Server::start_snapshot(&v3_path, "127.0.0.1:0", test_config()).unwrap();
    let mut on_heap = Client::connect(heap_server.local_addr()).unwrap();
    let mut on_mmap = Client::connect(mmap_server.local_addr()).unwrap();

    for i in 0..60usize {
        let pos = LatLon::new(-55.0 + (i % 111) as f64, -170.0 + (i % 340) as f64).unwrap();
        let seg = MarketSegment::from_id((i % 7) as u8).unwrap();
        let (origin, dest) = ((i % 6) as u16, (i % 8) as u16);

        let a = on_mmap.point_summary(pos.lat(), pos.lon()).unwrap();
        let b = on_heap.point_summary(pos.lat(), pos.lon()).unwrap();
        assert_eq!(
            stats_bytes(a.as_ref()),
            stats_bytes(b.as_ref()),
            "point {i}"
        );

        let a = on_mmap
            .route_summary(pos.lat(), pos.lon(), origin, dest, seg)
            .unwrap();
        let b = on_heap
            .route_summary(pos.lat(), pos.lon(), origin, dest, seg)
            .unwrap();
        assert_eq!(
            stats_bytes(a.as_ref()),
            stats_bytes(b.as_ref()),
            "route {i}"
        );

        let (lo_lat, lo_lon) = (pos.lat() - 4.0, pos.lon().max(-175.0) - 4.0);
        let a = on_mmap
            .bbox_scan(lo_lat, lo_lon, lo_lat + 8.0, lo_lon + 8.0)
            .unwrap();
        let b = on_heap
            .bbox_scan(lo_lat, lo_lon, lo_lat + 8.0, lo_lon + 8.0)
            .unwrap();
        assert_eq!(a, b, "bbox {i}");

        let a = on_mmap.top_destination_cells(dest, Some(seg)).unwrap();
        let b = on_heap.top_destination_cells(dest, Some(seg)).unwrap();
        assert_eq!(a, b, "top-dest {i}");

        let a = on_mmap
            .eta(pos.lat(), pos.lon(), Some(seg), Some((origin, dest)))
            .unwrap();
        let b = on_heap
            .eta(pos.lat(), pos.lon(), Some(seg), Some((origin, dest)))
            .unwrap();
        assert_eq!(a, b, "eta {i}");
    }

    // The mapped backend identifies itself and counts its work.
    let report = on_mmap.stats().unwrap();
    assert_eq!(report.store, "mapped-columnar");
    assert!(report.mapped_lookups > 0);
    assert!(report.mapped_scan_entries > 0);
    assert!(report.stages.contains("mmap-open"));
    let report = on_heap.stats().unwrap();
    assert_eq!(report.store, "sharded-heap");
    assert_eq!(report.mapped_lookups, 0);

    heap_server.shutdown();
    mmap_server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A protocol-v3 batch frame answers exactly like the same requests sent
/// one frame at a time, children are accounted separately from frames,
/// and oversized batches are refused client-side.
#[test]
fn batched_requests_equal_single_requests() {
    use pol_serve::proto::Request as Req;
    let reference = Arc::new(sample_inventory(300));
    let mut server = Server::start(sample_inventory(300), "127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Mixed batch via the raw API: each child answer must match the
    // direct inventory computation.
    let positions: Vec<(f64, f64)> = (0..20usize)
        .map(|i| {
            let p = LatLon::new(-55.0 + (i % 111) as f64, -170.0 + (i % 340) as f64).unwrap();
            (p.lat(), p.lon())
        })
        .collect();
    let batch: Vec<Req> = positions
        .iter()
        .map(|(lat, lon)| Req::PointSummary {
            lat: *lat,
            lon: *lon,
        })
        .chain([Req::Ping])
        .collect();
    let replies = client.batch(&batch).unwrap();
    assert_eq!(replies.len(), positions.len() + 1);
    assert!(matches!(replies.first(), Some(Response::Summary(_))));
    assert!(matches!(replies.last(), Some(Response::Pong)));

    // Typed helper: batched point summaries == singles, byte for byte.
    let batched = client.point_summaries(&positions).unwrap();
    for (i, (lat, lon)) in positions.iter().enumerate() {
        let single = client.point_summary(*lat, *lon).unwrap();
        assert_eq!(
            stats_bytes(batched[i].as_ref()),
            stats_bytes(single.as_ref()),
            "batched point {i}"
        );
        let cell = cell_at(LatLon::new(*lat, *lon).unwrap(), res());
        assert_eq!(
            stats_bytes(batched[i].as_ref()),
            stats_bytes(reference.summary(cell)),
            "batched point vs direct {i}"
        );
    }

    // Typed helper: batched route summaries == singles.
    let seg = MarketSegment::from_id(3).unwrap();
    let routed = client.route_summaries(2, 5, seg, &positions).unwrap();
    for (i, (lat, lon)) in positions.iter().enumerate() {
        let single = client.route_summary(*lat, *lon, 2, 5, seg).unwrap();
        assert_eq!(
            stats_bytes(routed[i].as_ref()),
            stats_bytes(single.as_ref()),
            "batched route {i}"
        );
    }

    // Accounting: one Batch frame per call, children under
    // batched_requests (never double-counted per endpoint).
    let report = client.stats().unwrap();
    assert!(report.batched_requests >= (positions.len() + 1) as u64 + 2 * positions.len() as u64);
    assert!(report
        .endpoints
        .iter()
        .any(|e| e.endpoint == pol_serve::Endpoint::Batch && e.count >= 3));

    // An over-long batch is refused before touching the wire.
    let oversized = vec![Req::Ping; pol_serve::MAX_BATCH + 1];
    assert!(matches!(
        client.batch(&oversized),
        Err(ClientError::Unexpected(_))
    ));
    // The connection is still healthy afterwards.
    client.ping().unwrap();
    server.shutdown();
}

/// The reactor's event-loop counters are live: an attached connection
/// shows in the gauge, readiness events and eventfd wakeups accumulate
/// under traffic, and the gauge returns to zero when the peer leaves.
#[test]
fn reactor_core_event_counters_are_live() {
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for _ in 0..10 {
        client.ping().unwrap();
    }
    let report = client.stats().unwrap();
    assert_eq!(report.open_connections, 1);
    assert!(report.peak_connections >= 1);
    assert!(report.ready_events > 0, "no readiness events recorded");
    assert!(report.wakeups > 0, "no eventfd wakeups recorded");
    assert_eq!(report.shed_at_loop, 0);
    drop(client);
    let metrics = server.metrics();
    let deadline = Instant::now() + Duration::from_secs(3);
    while metrics.open_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        metrics.open_connections(),
        0,
        "gauge must return to zero after the peer disconnects"
    );
    server.shutdown();
}

/// A client that pipelines a burst of requests and only starts reading
/// later gets every response, intact and in order: the reactor buffers
/// responses per connection and re-arms `EPOLLOUT` until they drain.
#[test]
fn pipelined_responses_survive_a_lazy_reader() {
    let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", test_config()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let payload = pol_serve::proto::encode_request(&Request::Ping);
    let mut framed = Vec::new();
    write_frame(&mut framed, &payload).unwrap();
    const BURST: usize = 16;
    for _ in 0..BURST {
        stream.write_all(&framed).unwrap();
    }
    stream.flush().unwrap();
    // Stay lazy: let the responses pile up server-side before reading.
    std::thread::sleep(Duration::from_millis(300));
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    for i in 0..BURST {
        let reply = read_frame(&mut stream, 1 << 20).unwrap();
        assert!(
            matches!(
                pol_serve::proto::decode_response(&reply).unwrap(),
                Response::Pong
            ),
            "pipelined reply {i}"
        );
    }
    server.shutdown();
}

/// A slow-loris peer — one that declares a frame and then drips bytes
/// forever — is cut off by the frame-assembly deadline (anchored to the
/// frame's first byte, so the drip cannot keep resetting it) without
/// ever stalling the other clients. Both cores enforce the same rule.
#[test]
fn slow_loris_is_cut_off_without_stalling_others() {
    for core in [ServerCore::Reactor, ServerCore::Threaded] {
        let config = ServerConfig {
            core,
            stall_timeout: Duration::from_millis(300),
            read_timeout: Duration::from_millis(25),
            ..ServerConfig::default()
        };
        let mut server = Server::start(sample_inventory(50), "127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();

        // The loris declares a 100-byte frame, then feeds it one byte at
        // a time — each drip inside the read timeout, the whole frame
        // far beyond the stall deadline.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.set_nodelay(true).unwrap();
        loris.write_all(&(100u32).to_le_bytes()).unwrap();
        loris.flush().unwrap();

        let mut healthy = Client::connect(addr).unwrap();
        let started = Instant::now();
        let mut cut_off = false;
        while started.elapsed() < Duration::from_secs(5) {
            // Other clients are served the whole time.
            healthy.ping().unwrap();
            if loris.write_all(&[0]).and_then(|()| loris.flush()).is_err() {
                cut_off = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(30));
        }
        assert!(
            cut_off,
            "{core:?}: slow-loris connection evaded the stall deadline"
        );
        healthy.ping().unwrap();
        server.shutdown();
    }
}

/// `CellIndex::from_raw` accepts every index a bbox scan returns (the
/// wire sends raw u64s; clients must be able to reconstruct them).
#[test]
fn scanned_cells_reconstruct_as_valid_indices() {
    let mut server = Server::start(sample_inventory(200), "127.0.0.1:0", test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let cells = client.bbox_scan(-89.0, -179.0, 89.0, 179.0).unwrap();
    assert!(!cells.is_empty());
    for raw in cells {
        CellIndex::from_raw(raw).unwrap();
    }
    server.shutdown();
}

/// The streaming-ingestion serving contract: reloading a POLMAN1 delta
/// chain under sustained concurrent load drops no in-flight query and
/// never returns a wrong answer — every response matches either the
/// pre-reload chain or the post-reload one, and once `reload_from`
/// returns, fresh requests see the extended chain with its lineage in
/// the `STATS` freshness fields.
#[test]
fn delta_chain_hot_reload_under_load_loses_no_query() {
    use pol_core::codec::manifest::{Manifest, ManifestEntry};
    use pol_core::codec::{self, columnar, save_bytes};
    use pol_sketch::crc64::crc64;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let dir = std::env::temp_dir().join("pol-serve-chain-reload");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let base = sample_inventory(400);
    let delta = sample_inventory(150); // overlaps the base: real merges
    let merged = {
        // Inventory has no Clone; a codec round trip is a faithful copy.
        let mut m = codec::from_bytes(&codec::to_bytes(&base)).unwrap();
        m.merge(&delta);
        m
    };

    let entry_for = |name: &str, inv: &Inventory| {
        let bytes = columnar::to_bytes(inv);
        save_bytes(&bytes, &dir.join(name)).unwrap();
        (bytes.len() as u64, crc64(&bytes))
    };
    let (base_len, base_crc) = entry_for("base.pol3", &base);
    let manifest_path = dir.join("inventory.polman");
    let base_entry = ManifestEntry {
        generation: 0,
        file_len: base_len,
        crc: base_crc,
        name: "base.pol3".into(),
    };
    pol_core::codec::manifest::save(
        &Manifest {
            entries: vec![base_entry.clone()],
        },
        &manifest_path,
    )
    .unwrap();

    let mut server = Server::start_snapshot(&manifest_path, "127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let mut probe = Client::connect(addr).unwrap();
    let before = probe.stats().unwrap();
    assert_eq!(before.delta_generation, 0);
    assert_eq!(before.chain_len, 1);

    // Query positions that hit occupied cells of the base inventory.
    let pool: Vec<(f64, f64)> = (0..400usize)
        .step_by(7)
        .map(|i| (-55.0 + (i % 111) as f64, -170.0 + (i % 340) as f64))
        .collect();

    let stop = AtomicBool::new(false);
    let reloaded = AtomicBool::new(false);
    let wrong = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    let post_reload_new = AtomicU64::new(0);

    std::thread::scope(|s| {
        for tid in 0..3usize {
            let (base, merged, pool) = (&base, &merged, &pool);
            let (stop, reloaded, wrong, errors, served, post_reload_new) =
                (&stop, &reloaded, &wrong, &errors, &served, &post_reload_new);
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut i = tid;
                while !stop.load(Ordering::Relaxed) {
                    let (lat, lon) = pool[i % pool.len()];
                    i += 1;
                    let cell = cell_at(LatLon::new(lat, lon).unwrap(), res());
                    // Mark *before* issuing: if the answer comes back
                    // new-chain after this point, the swap is proven to
                    // have happened without dropping the request.
                    let was_reloaded = reloaded.load(Ordering::Relaxed);
                    match client.point_summary(lat, lon) {
                        Ok(got) => {
                            served.fetch_add(1, Ordering::Relaxed);
                            let got = stats_bytes(got.as_ref());
                            let old = stats_bytes(base.summary(cell));
                            let new = stats_bytes(merged.summary(cell));
                            if got != old && got != new {
                                wrong.fetch_add(1, Ordering::Relaxed);
                            }
                            if was_reloaded && got == new && new != old {
                                post_reload_new.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // Let the load establish itself, then extend the chain on disk
        // (delta file first, manifest second) and hot-swap it.
        while served.load(Ordering::Relaxed) < 300 {
            std::thread::yield_now();
        }
        let (delta_len, delta_crc) = entry_for("delta-00001.pol3", &delta);
        pol_core::codec::manifest::save(
            &Manifest {
                entries: vec![
                    base_entry,
                    ManifestEntry {
                        generation: 1,
                        file_len: delta_len,
                        crc: delta_crc,
                        name: "delta-00001.pol3".into(),
                    },
                ],
            },
            &manifest_path,
        )
        .unwrap();
        server.reload_from(&manifest_path).unwrap();
        reloaded.store(true, Ordering::Relaxed);

        // Keep the load running across the swap, then stop.
        let after_swap = served.load(Ordering::Relaxed);
        while served.load(Ordering::Relaxed) < after_swap + 300 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        wrong.load(Ordering::Relaxed),
        0,
        "wrong answers under reload"
    );
    assert_eq!(
        errors.load(Ordering::Relaxed),
        0,
        "dropped in-flight queries"
    );
    assert!(
        post_reload_new.load(Ordering::Relaxed) > 0,
        "post-reload answers never surfaced the extended chain"
    );

    // A fresh request sees the new chain and its lineage.
    let report = probe.stats().unwrap();
    assert_eq!(report.delta_generation, 1);
    assert_eq!(report.chain_len, 2);
    assert_eq!(report.reloads_ok, 1);
    assert_eq!(report.reloads_failed, 0);
    let (lat, lon) = pool[0];
    let cell = cell_at(LatLon::new(lat, lon).unwrap(), res());
    assert_eq!(
        stats_bytes(probe.point_summary(lat, lon).unwrap().as_ref()),
        stats_bytes(merged.summary(cell)),
        "fresh post-reload answers must come from the merged chain"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The crash-recovery serving contract: an ingester journals the wire,
/// publishes a few window deltas, and dies mid-run (no seal, no close).
/// `pol-serve` keeps answering from the surviving chain; a second
/// ingester life recovers from the journal + checkpoint, resumes the
/// wire exactly-once, extends the chain, and a single hot reload brings
/// the server to the recovered lineage — with every answer byte-equal
/// to the chain merged directly from disk.
#[test]
fn ingester_crash_recovery_extends_the_served_chain() {
    use pol_core::codec::manifest;
    use pol_core::records::PortSite;
    use pol_fleetsim::scenario::{generate, ScenarioConfig};
    use pol_fleetsim::stream::interleave;
    use pol_fleetsim::WORLD_PORTS;
    use pol_stream::{
        recover, DeltaPublisher, JournaledEngine, StreamConfig, StreamEngine, WalConfig, WindowSpec,
    };

    let dir = std::env::temp_dir().join("pol-serve-crash-recovery");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let ds = generate(&ScenarioConfig::tiny());
    let stream_cfg = StreamConfig::default();
    let resolution = stream_cfg.pipeline.resolution;
    let ports: Vec<PortSite> = WORLD_PORTS
        .iter()
        .enumerate()
        .map(|(i, p)| PortSite {
            id: i as u16,
            name: p.name.to_string(),
            pos: p.pos(),
            radius_km: stream_cfg.pipeline.port_radius_km,
        })
        .collect();
    let wire: Vec<_> = interleave(ds.positions).collect();
    let spec = WindowSpec {
        start_ts: ds.config.start,
        window_secs: 86_400,
    };
    let engine = pol_engine::Engine::new(2);

    // Life 1: journal + publish until two generations are durable, then
    // abandon everything mid-run — the in-process equivalent of a kill.
    let se = StreamEngine::new(&ds.statics, &ports, stream_cfg.clone());
    let mut je = JournaledEngine::create(&dir, se, WalConfig::default(), 1_000).unwrap();
    let mut publisher = DeltaPublisher::create(&dir);
    let mut killed_at = 0usize;
    for (i, r) in wire.iter().enumerate() {
        je.push(r.clone()).unwrap();
        while je.watermark() >= spec.cut_at(je.window_cuts()) {
            let generation = je.window_cuts();
            let delta = je.take_window_delta(&engine).unwrap();
            publisher.publish_at(generation, &delta).unwrap();
        }
        if je.window_cuts() >= 2 {
            killed_at = i + 1;
            break;
        }
    }
    assert!(killed_at > 0, "wire too short to publish two windows");
    let cuts_at_kill = je.window_cuts();
    drop(je);
    drop(publisher);

    // The survivors serve immediately.
    let manifest_path = dir.join(pol_stream::MANIFEST_NAME);
    let mut server = Server::start_snapshot(&manifest_path, "127.0.0.1:0", test_config()).unwrap();
    let addr = server.local_addr();
    let mut probe = Client::connect(addr).unwrap();
    let before = probe.stats().unwrap();
    assert_eq!(before.chain_len, cuts_at_kill);
    assert_eq!(before.delta_generation, cuts_at_kill - 1);

    // Life 2: recover from journal + checkpoint, resume the wire where
    // the durable journal ends, publish the remaining windows, close.
    let (mut publisher, swept) = DeltaPublisher::open(&dir).unwrap();
    assert!(swept.removed.is_empty(), "no orphans were planted");
    let (mut je, report) = recover(
        &dir,
        &engine,
        &ds.statics,
        &ports,
        stream_cfg.clone(),
        WalConfig::default(),
        1_000,
        Some((&mut publisher, spec)),
    )
    .unwrap();
    assert_eq!(report.deltas_published, 0, "recovery must not re-publish");
    let resume_at = usize::try_from(je.counters().ingested).unwrap();
    assert!(resume_at <= killed_at, "recovery overshot the wire");
    for r in wire.iter().skip(resume_at).cloned() {
        je.push(r).unwrap();
        while je.watermark() >= spec.cut_at(je.window_cuts()) {
            let generation = je.window_cuts();
            let delta = je.take_window_delta(&engine).unwrap();
            publisher.publish_at(generation, &delta).unwrap();
        }
    }
    let final_cuts = je.window_cuts();
    assert!(final_cuts > cuts_at_kill, "the resumed wire grew no window");
    let out = je.close(&engine).unwrap();
    assert_eq!(out.counters.late_dropped, 0);
    assert_eq!(out.counters.ingested, wire.len() as u64);

    // One hot reload brings the server to the recovered lineage.
    server.reload_from(&manifest_path).unwrap();
    let after = probe.stats().unwrap();
    assert_eq!(after.chain_len, final_cuts);
    assert_eq!(after.delta_generation, final_cuts - 1);
    assert_eq!(after.reloads_ok, 1);
    assert_eq!(after.reloads_failed, 0);

    // Every served answer must match the chain merged straight from
    // disk — the recovered generations included.
    let (merged, info) = manifest::load_chain(&manifest_path).unwrap();
    assert_eq!(info.chain_len, final_cuts);
    manifest::verify_chain(&manifest_path).unwrap();
    // Probe the cells the server itself reports occupied (retained trip
    // points are cleaned wire records, so wire positions land in them),
    // plus a spread of arbitrary wire positions for the `None` side.
    let served_cells: std::collections::HashSet<u64> = probe
        .bbox_scan(-89.0, -179.0, 89.0, 179.0)
        .unwrap()
        .into_iter()
        .collect();
    assert!(!served_cells.is_empty(), "recovered chain serves no cells");
    let mut probed_cells = std::collections::HashSet::new();
    let mut occupied = 0usize;
    let stride = (wire.len() / 64).max(1);
    let hits = wire
        .iter()
        .filter(|r| served_cells.contains(&cell_at(r.pos, resolution).raw()))
        .take(512);
    for r in hits.chain(wire.iter().step_by(stride)) {
        let cell = cell_at(r.pos, resolution);
        if !probed_cells.insert(cell.raw()) {
            continue;
        }
        let got = probe.point_summary(r.pos.lat(), r.pos.lon()).unwrap();
        assert_eq!(
            stats_bytes(got.as_ref()),
            stats_bytes(merged.summary(cell)),
            "served answer diverged from the recovered chain"
        );
        occupied += usize::from(merged.summary(cell).is_some());
    }
    assert!(occupied > 0, "probe set never hit an occupied cell");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
