//! Integration: every §4 use case running against an inventory built by
//! the *actual pipeline* over simulated traffic (not hand-crafted stats).

use pol_apps::{AnomalyDetector, DestinationPredictor, EtaEstimator, RouteForecaster};
use pol_core::features::GroupKey;
use pol_core::records::PortSite;
use pol_core::{PipelineConfig, PipelineOutput};
use pol_engine::Engine;
use pol_fleetsim::scenario::{generate, Dataset, ScenarioConfig};
use pol_fleetsim::WORLD_PORTS;
use std::sync::OnceLock;

fn world() -> &'static (Dataset, PipelineOutput, PipelineConfig) {
    static W: OnceLock<(Dataset, PipelineOutput, PipelineConfig)> = OnceLock::new();
    W.get_or_init(|| {
        let ds = generate(&ScenarioConfig {
            n_vessels: 40,
            duration_days: 10,
            ..ScenarioConfig::default()
        });
        let cfg = PipelineConfig::default();
        let ports: Vec<PortSite> = WORLD_PORTS
            .iter()
            .enumerate()
            .map(|(i, p)| PortSite {
                id: i as u16,
                name: p.name.to_string(),
                pos: p.pos(),
                radius_km: cfg.port_radius_km,
            })
            .collect();
        let out = pol_core::run(
            &Engine::new(2),
            ds.positions.clone(),
            &ds.statics,
            &ports,
            &cfg,
        )
        .unwrap();
        (ds, out, cfg)
    })
}

/// The longest in-window training voyage whose route key actually
/// materialised in the inventory. (A voyage whose pre-departure port stay
/// was sliced off by the window edge leaves no trip, hence no key — the
/// §4.1.3 use case explicitly presumes a *known* route.)
fn reference_voyage() -> &'static pol_fleetsim::scenario::VoyageTruth {
    let (ds, out, _) = world();
    let mut candidates: Vec<_> = ds
        .truth
        .iter()
        .filter(|v| v.departure >= ds.config.start && v.arrival <= ds.config.end())
        .collect();
    candidates.sort_by_key(|v| std::cmp::Reverse(v.arrival - v.departure));
    candidates
        .into_iter()
        .find(|v| {
            let seg = ds
                .fleet
                .iter()
                .find(|f| f.mmsi == v.mmsi)
                .expect("fleet entry")
                .segment;
            out.inventory.route_cells(v.origin.0, v.dest.0, seg).len() >= 20
        })
        .expect("some in-window voyage has a materialised route key")
}

#[test]
fn eta_decreases_along_a_training_voyage() {
    let (ds, out, _) = world();
    let v = reference_voyage();
    let vi = ds.fleet.iter().position(|f| f.mmsi == v.mmsi).unwrap();
    let seg = ds.fleet[vi].segment;
    let est = EtaEstimator::new(&out.inventory);
    let reports: Vec<_> = ds.positions[vi]
        .iter()
        .filter(|r| r.timestamp >= v.departure && r.timestamp <= v.arrival)
        .collect();
    assert!(reports.len() > 20);
    // Sample by *time* fraction (report density is higher in slow harbour
    // zones, so index fractions skew toward the ends).
    let at = |f: f64| {
        let t = v.departure + ((v.arrival - v.departure) as f64 * f) as i64;
        let r = reports
            .iter()
            .min_by_key(|r| (r.timestamp - t).abs())
            .expect("non-empty");
        est.estimate(r.pos, Some(seg), Some((v.origin.0, v.dest.0)))
    };
    let early = at(0.2).expect("training voyage cells are covered");
    let late = at(0.8).expect("training voyage cells are covered");
    assert!(
        late.p50_secs < early.p50_secs,
        "median remaining time must shrink: {} -> {}",
        early.p50_secs,
        late.p50_secs
    );
}

#[test]
fn destination_predictor_improves_with_progress_on_training_voyage() {
    let (ds, out, _) = world();
    let v = reference_voyage();
    let vi = ds.fleet.iter().position(|f| f.mmsi == v.mmsi).unwrap();
    let seg = ds.fleet[vi].segment;
    let reports: Vec<_> = ds.positions[vi]
        .iter()
        .filter(|r| r.timestamp >= v.departure && r.timestamp <= v.arrival)
        .collect();
    let rank_at = |f: f64| -> Option<usize> {
        let mut p = DestinationPredictor::new(&out.inventory, Some(seg));
        for r in &reports[..((reports.len() as f64 * f) as usize).max(1)] {
            p.observe(r.pos);
        }
        p.top(usize::MAX).iter().position(|(d, _)| *d == v.dest.0)
    };
    let late = rank_at(0.95);
    assert!(
        late.is_some(),
        "true destination must be ranked near arrival"
    );
    if let (Some(e), Some(l)) = (rank_at(0.3), late) {
        assert!(l <= e, "rank must not degrade with progress: {e} -> {l}");
    }
}

#[test]
fn route_forecaster_follows_training_lane() {
    let (ds, out, cfg) = world();
    let v = reference_voyage();
    let seg = ds.fleet.iter().find(|f| f.mmsi == v.mmsi).unwrap().segment;
    let dest_pos = WORLD_PORTS[v.dest.0 as usize].pos();
    let f = RouteForecaster::build(&out.inventory, v.origin.0, v.dest.0, seg, dest_pos);
    assert!(f.cell_count() > 10, "training route key materialised");
    let vi = ds.fleet.iter().position(|x| x.mmsi == v.mmsi).unwrap();
    let reports: Vec<_> = ds.positions[vi]
        .iter()
        .filter(|r| r.timestamp >= v.departure && r.timestamp <= v.arrival)
        .collect();
    let pivot = reports.len() / 4;
    let fc = f
        .forecast(reports[pivot].pos, cfg.resolution)
        .expect("forecast along the training lane");
    // The forecast ends near the destination and is mostly on the track.
    let end = pol_hexgrid::cell_center(*fc.cells.last().unwrap());
    assert!(pol_geo::haversine_km(end, dest_pos) < 60.0);
    let actual: std::collections::HashSet<_> = reports[pivot..]
        .iter()
        .map(|r| pol_hexgrid::cell_at(r.pos, cfg.resolution))
        .collect();
    let on = fc
        .cells
        .iter()
        .filter(|c| {
            actual.contains(c)
                || actual
                    .iter()
                    .any(|a| pol_hexgrid::grid_distance(*a, **c).is_some_and(|d| d <= 1))
        })
        .count();
    assert!(
        on as f64 / fc.cells.len() as f64 > 0.6,
        "{on}/{} forecast cells on the lane",
        fc.cells.len()
    );
}

#[test]
fn anomaly_rates_are_low_on_training_traffic() {
    let (ds, out, _) = world();
    let det = AnomalyDetector::new(&out.inventory);
    // Training traffic against its own inventory: well below 50% anomalous
    // (off-lane can fire only for cells dropped by trip extraction).
    let rate = det.anomaly_rate(ds.positions.iter().enumerate().flat_map(|(vi, part)| {
        let seg = ds.fleet[vi].segment;
        part.iter()
            .take(500)
            .map(move |r| (r.pos, r.sog_knots, r.cog_deg, Some(seg)))
    }));
    assert!(rate < 0.5, "self-anomaly rate {rate}");
}

#[test]
fn inventory_answers_are_stable_across_reload() {
    let (_, out, _) = world();
    let bytes = pol_core::codec::to_bytes(&out.inventory);
    let back = pol_core::codec::from_bytes(&bytes).unwrap();
    // A sample of queries must answer identically after reload.
    for (key, stats) in out.inventory.iter().take(200) {
        if let GroupKey::Cell(cell) = key {
            let b = back.summary(*cell).expect("entry survives");
            assert_eq!(b.records, stats.records);
            assert_eq!(b.top_destinations(3), stats.top_destinations(3));
        }
    }
}
