//! Voyage-progress estimation from the ETO statistics — the second half
//! of §4.1.2's "explicit statistics for ATA and ETO are also available
//! for all value combinations of GI on each cell".
//!
//! Where ATA answers "how long until arrival?", ETO answers "how long has
//! this vessel been under way?" — which dates the departure of a vessel
//! first observed mid-ocean (a satellite pickup with no port history) and
//! yields a progress fraction when combined with ATA.

use pol_ais::types::MarketSegment;
use pol_core::{CellStats, Inventory};
use pol_geo::LatLon;
use pol_hexgrid::{cell_at, grid_disk};

/// A progress estimate for a vessel at a position.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgressEstimate {
    /// Median historical elapsed-time-from-origin at this location, secs.
    pub eto_secs: f64,
    /// Median historical time-to-arrival at this location, secs.
    pub ata_secs: f64,
    /// Estimated fraction of the voyage completed, in `[0, 1]`.
    pub fraction: f64,
    /// Estimated departure Unix time (`now - eto`).
    pub departure_estimate: i64,
    /// Historical observations backing the estimate.
    pub samples: u64,
}

/// Inventory-backed progress estimator.
pub struct ProgressEstimator<'a> {
    inventory: &'a Inventory,
    /// Rings of widening when the exact cell is unseen.
    pub max_widening: u32,
}

impl<'a> ProgressEstimator<'a> {
    /// Wraps an inventory.
    pub fn new(inventory: &'a Inventory) -> Self {
        ProgressEstimator {
            inventory,
            max_widening: 2,
        }
    }

    /// Estimates voyage progress for a vessel observed at `pos` at Unix
    /// time `now`. Uses the most specific grouping-set entry available,
    /// like the ETA estimator.
    pub fn estimate(
        &self,
        pos: LatLon,
        now: i64,
        segment: Option<MarketSegment>,
        route: Option<(u16, u16)>,
    ) -> Option<ProgressEstimate> {
        let origin_cell = cell_at(pos, self.inventory.resolution());
        for k in 0..=self.max_widening {
            let mut best: Option<(&CellStats, u64)> = None;
            for cell in grid_disk(origin_cell, k) {
                let stats = self.lookup(cell, segment, route);
                if let Some(s) = stats {
                    if s.eto.count() > 0 {
                        match best {
                            Some((_, n)) if n >= s.eto.count() => {}
                            _ => best = Some((s, s.eto.count())),
                        }
                    }
                }
            }
            if let Some((stats, _)) = best {
                let mut eto_q = stats.eto_q.clone();
                let mut ata_q = stats.ata_q.clone();
                let eto = eto_q.quantile(0.5)?;
                let ata = ata_q.quantile(0.5)?;
                let total = eto + ata;
                if total <= 0.0 {
                    return None;
                }
                return Some(ProgressEstimate {
                    eto_secs: eto,
                    ata_secs: ata,
                    fraction: (eto / total).clamp(0.0, 1.0),
                    departure_estimate: now - eto as i64,
                    samples: stats.eto.count(),
                });
            }
        }
        None
    }

    fn lookup(
        &self,
        cell: pol_hexgrid::CellIndex,
        segment: Option<MarketSegment>,
        route: Option<(u16, u16)>,
    ) -> Option<&CellStats> {
        if let (Some(seg), Some((o, d))) = (segment, route) {
            if let Some(s) = self.inventory.summary_route(cell, o, d, seg) {
                return Some(s);
            }
        }
        if let Some(seg) = segment {
            if let Some(s) = self.inventory.summary_for(cell, seg) {
                return Some(s);
            }
        }
        self.inventory.summary(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_core::features::{CellStats, GroupKey};
    use pol_core::records::{CellPoint, TripPoint};
    use pol_hexgrid::Resolution;
    use pol_sketch::hash::FxHashMap;

    /// One cell whose history says: vessels here are 3 600 s from origin
    /// and 10 800 s from destination (25% progress).
    fn inventory_at(pos: LatLon, eto: i64, ata: i64, n: usize) -> Inventory {
        let res = Resolution::new(6).unwrap();
        let cell = cell_at(pos, res);
        let mut stats = CellStats::new(0.02, 8);
        for i in 0..n {
            stats.observe(&CellPoint {
                point: TripPoint {
                    mmsi: pol_ais::types::Mmsi(1 + i as u32),
                    timestamp: 0,
                    pos,
                    sog_knots: Some(14.0),
                    cog_deg: Some(90.0),
                    heading_deg: Some(90.0),
                    segment: MarketSegment::Container,
                    trip_id: i as u64,
                    origin: 2,
                    dest: 9,
                    eto_secs: eto + (i as i64 % 5 - 2) * 30,
                    ata_secs: ata + (i as i64 % 5 - 2) * 30,
                },
                cell,
                next_cell: None,
            });
        }
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        entries.insert(GroupKey::Cell(cell), stats.clone());
        entries.insert(
            GroupKey::CellRoute(cell, 2, 9, MarketSegment::Container),
            stats,
        );
        Inventory::from_entries(res, entries, n as u64)
    }

    #[test]
    fn quarter_progress_recovered() {
        let pos = LatLon::new(20.0, -30.0).unwrap();
        let inv = inventory_at(pos, 3_600, 10_800, 25);
        let est = ProgressEstimator::new(&inv)
            .estimate(pos, 1_000_000, Some(MarketSegment::Container), Some((2, 9)))
            .unwrap();
        assert!(
            (est.fraction - 0.25).abs() < 0.03,
            "fraction {}",
            est.fraction
        );
        assert!((est.eto_secs - 3_600.0).abs() < 120.0);
        assert!((est.ata_secs - 10_800.0).abs() < 120.0);
        assert!((est.departure_estimate - (1_000_000 - 3_600)).abs() < 120);
        assert_eq!(est.samples, 25);
    }

    #[test]
    fn near_arrival_fraction_close_to_one() {
        let pos = LatLon::new(20.0, -30.0).unwrap();
        let inv = inventory_at(pos, 100_000, 600, 15);
        let est = ProgressEstimator::new(&inv)
            .estimate(pos, 0, None, None)
            .unwrap();
        assert!(est.fraction > 0.95, "fraction {}", est.fraction);
    }

    #[test]
    fn unseen_area_returns_none() {
        let pos = LatLon::new(20.0, -30.0).unwrap();
        let inv = inventory_at(pos, 3_600, 10_800, 10);
        let far = LatLon::new(-50.0, 120.0).unwrap();
        assert!(ProgressEstimator::new(&inv)
            .estimate(far, 0, None, None)
            .is_none());
    }

    #[test]
    fn widening_picks_up_neighbours() {
        let pos = LatLon::new(20.0, -30.0).unwrap();
        let inv = inventory_at(pos, 7_200, 7_200, 12);
        let cell = cell_at(pos, Resolution::new(6).unwrap());
        let npos = pol_hexgrid::cell_center(pol_hexgrid::neighbors(cell)[2]);
        let est = ProgressEstimator::new(&inv)
            .estimate(npos, 500_000, None, None)
            .unwrap();
        assert!((est.fraction - 0.5).abs() < 0.05);
    }
}
