//! The model of normalcy: anomaly detection against the inventory.
//!
//! §2 of the paper: "we build a model of normalcy that can then be used to
//! identify any outliers from this e.g. Covid-19 or Suez Canal". A live
//! report is anomalous when it disagrees with the historical per-cell
//! statistics: speed far outside the cell's distribution, course far from
//! the cell's dominant direction (where one exists), or a position in a
//! cell its vessel type has never been seen in.

use pol_ais::types::MarketSegment;
use pol_core::Inventory;
use pol_geo::LatLon;
use pol_hexgrid::cell_at;

/// One detected deviation from normalcy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Anomaly {
    /// Speed z-score beyond the threshold: `(observed_kn, z)`.
    Speed {
        /// Observed speed over ground, knots.
        observed_kn: f64,
        /// Z-score against the cell's speed distribution.
        z: f64,
    },
    /// Course deviates from a strongly-aligned cell's mean direction:
    /// `(observed_deg, mean_deg, deviation_deg)`.
    Course {
        /// Observed course over ground, degrees.
        observed_deg: f64,
        /// The cell's mean direction, degrees.
        mean_deg: f64,
        /// Angular deviation between the two, degrees.
        deviation_deg: f64,
    },
    /// The cell has no history for this vessel type (off known lanes).
    OffLane,
}

/// Detector configuration + inventory handle.
pub struct AnomalyDetector<'a> {
    inventory: &'a Inventory,
    /// Speed z-score threshold (default 3).
    pub speed_z_threshold: f64,
    /// Minimum resultant length for course checks (default 0.8: only in
    /// strongly lane-like cells, e.g. traffic separation schemes).
    pub min_alignment: f64,
    /// Course deviation threshold in degrees (default 60).
    pub course_threshold_deg: f64,
    /// Minimum historical records before judging (default 20).
    pub min_samples: u64,
}

impl<'a> AnomalyDetector<'a> {
    /// Wraps an inventory with default thresholds.
    pub fn new(inventory: &'a Inventory) -> Self {
        AnomalyDetector {
            inventory,
            speed_z_threshold: 3.0,
            min_alignment: 0.8,
            course_threshold_deg: 60.0,
            min_samples: 20,
        }
    }

    /// Assesses one live report. Returns every triggered anomaly (empty =
    /// normal). Unknown cells yield [`Anomaly::OffLane`] only when a
    /// segment is provided and the cell has no all-traffic history either.
    pub fn assess(
        &self,
        pos: LatLon,
        sog_knots: Option<f64>,
        cog_deg: Option<f64>,
        segment: Option<MarketSegment>,
    ) -> Vec<Anomaly> {
        let cell = cell_at(pos, self.inventory.resolution());
        let stats = match segment {
            Some(seg) => self
                .inventory
                .summary_for(cell, seg)
                .or_else(|| self.inventory.summary(cell)),
            None => self.inventory.summary(cell),
        };
        let Some(stats) = stats else {
            return vec![Anomaly::OffLane];
        };
        let mut out = Vec::new();
        if stats.records >= self.min_samples {
            if let (Some(obs), Some(mean), Some(std)) =
                (sog_knots, stats.speed.mean(), stats.speed.std_dev())
            {
                let std = std.max(0.5); // floor: protocol quantisation noise
                let z = (obs - mean) / std;
                if z.abs() > self.speed_z_threshold {
                    out.push(Anomaly::Speed {
                        observed_kn: obs,
                        z,
                    });
                }
            }
            if let (Some(obs), Some(mean), Some(r)) = (
                cog_deg,
                stats.course.mean_deg(),
                stats.course.resultant_length(),
            ) {
                if r >= self.min_alignment {
                    let mut dev = (obs - mean).abs() % 360.0;
                    if dev > 180.0 {
                        dev = 360.0 - dev;
                    }
                    if dev > self.course_threshold_deg {
                        out.push(Anomaly::Course {
                            observed_deg: obs,
                            mean_deg: mean,
                            deviation_deg: dev,
                        });
                    }
                }
            }
        }
        out
    }

    /// Fraction of a report stream flagged anomalous — the fleet-level
    /// disruption signal (rises when e.g. Suez traffic reroutes through
    /// cells that never saw those origin/destination flows).
    pub fn anomaly_rate<I>(&self, reports: I) -> f64
    where
        I: IntoIterator<Item = (LatLon, Option<f64>, Option<f64>, Option<MarketSegment>)>,
    {
        let mut total = 0u64;
        let mut flagged = 0u64;
        for (pos, sog, cog, seg) in reports {
            total += 1;
            if !self.assess(pos, sog, cog, seg).is_empty() {
                flagged += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            flagged as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_core::features::{CellStats, GroupKey};
    use pol_core::records::{CellPoint, TripPoint};
    use pol_hexgrid::Resolution;
    use pol_sketch::hash::FxHashMap;

    /// A cell with 100 observations: speed ~14±1 kn, course tightly 90°.
    fn lane_inventory() -> (Inventory, LatLon) {
        let res = Resolution::new(6).unwrap();
        let pos = LatLon::new(51.0, 2.0).unwrap();
        let cell = cell_at(pos, res);
        let mut stats = CellStats::new(0.02, 8);
        for i in 0..100 {
            let cp = CellPoint {
                point: TripPoint {
                    mmsi: pol_ais::types::Mmsi(1 + i),
                    timestamp: i as i64,
                    pos,
                    sog_knots: Some(14.0 + ((i % 5) as f64 - 2.0) * 0.5),
                    cog_deg: Some(90.0 + ((i % 7) as f64 - 3.0)),
                    heading_deg: Some(90.0),
                    segment: MarketSegment::Container,
                    trip_id: i as u64,
                    origin: 0,
                    dest: 1,
                    eto_secs: 0,
                    ata_secs: 0,
                },
                cell,
                next_cell: None,
            };
            stats.observe(&cp);
        }
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        entries.insert(GroupKey::Cell(cell), stats.clone());
        entries.insert(GroupKey::CellType(cell, MarketSegment::Container), stats);
        (Inventory::from_entries(res, entries, 100), pos)
    }

    #[test]
    fn normal_report_passes() {
        let (inv, pos) = lane_inventory();
        let det = AnomalyDetector::new(&inv);
        let a = det.assess(pos, Some(14.2), Some(91.0), Some(MarketSegment::Container));
        assert!(a.is_empty(), "{a:?}");
    }

    #[test]
    fn speed_outlier_flagged() {
        let (inv, pos) = lane_inventory();
        let det = AnomalyDetector::new(&inv);
        let a = det.assess(pos, Some(30.0), Some(90.0), None);
        assert!(
            matches!(a.as_slice(), [Anomaly::Speed { z, .. }] if *z > 3.0),
            "{a:?}"
        );
        // Loitering (0 kn) in a 14 kn lane is also anomalous.
        let a = det.assess(pos, Some(0.0), Some(90.0), None);
        assert!(matches!(a.as_slice(), [Anomaly::Speed { z, .. }] if *z < -3.0));
    }

    #[test]
    fn course_against_the_lane_flagged() {
        let (inv, pos) = lane_inventory();
        let det = AnomalyDetector::new(&inv);
        let a = det.assess(pos, Some(14.0), Some(270.0), None);
        assert!(
            a.iter().any(
                |x| matches!(x, Anomaly::Course { deviation_deg, .. } if *deviation_deg > 170.0)
            ),
            "{a:?}"
        );
    }

    #[test]
    fn off_lane_flagged() {
        let (inv, _) = lane_inventory();
        let det = AnomalyDetector::new(&inv);
        let a = det.assess(
            LatLon::new(-40.0, -150.0).unwrap(),
            Some(14.0),
            Some(90.0),
            Some(MarketSegment::Container),
        );
        assert_eq!(a, vec![Anomaly::OffLane]);
    }

    #[test]
    fn insufficient_history_is_lenient() {
        // Cells below min_samples never produce speed/course anomalies.
        let res = Resolution::new(6).unwrap();
        let pos = LatLon::new(10.0, 10.0).unwrap();
        let cell = cell_at(pos, res);
        let mut stats = CellStats::new(0.02, 8);
        let cp = CellPoint {
            point: TripPoint {
                mmsi: pol_ais::types::Mmsi(1),
                timestamp: 0,
                pos,
                sog_knots: Some(10.0),
                cog_deg: Some(0.0),
                heading_deg: Some(0.0),
                segment: MarketSegment::Tanker,
                trip_id: 0,
                origin: 0,
                dest: 1,
                eto_secs: 0,
                ata_secs: 0,
            },
            cell,
            next_cell: None,
        };
        stats.observe(&cp);
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        entries.insert(GroupKey::Cell(cell), stats);
        let inv = Inventory::from_entries(res, entries, 1);
        let det = AnomalyDetector::new(&inv);
        assert!(det.assess(pos, Some(40.0), Some(180.0), None).is_empty());
    }

    #[test]
    fn anomaly_rate_aggregates() {
        let (inv, pos) = lane_inventory();
        let det = AnomalyDetector::new(&inv);
        let stream = vec![
            (pos, Some(14.0), Some(90.0), None), // normal
            (pos, Some(35.0), Some(90.0), None), // speed
            (pos, Some(14.0), Some(88.0), None), // normal
            (
                LatLon::new(-40.0, -150.0).unwrap(),
                Some(14.0),
                Some(90.0),
                None,
            ), // off-lane
        ];
        let rate = det.anomaly_rate(stream);
        assert!((rate - 0.5).abs() < 1e-9, "rate {rate}");
        assert_eq!(det.anomaly_rate(Vec::new()), 0.0);
    }
}
