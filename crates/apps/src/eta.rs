//! §4.1.2 — estimated time of arrival from historical ATA statistics.
//!
//! The paper: "there is no previously published work of a global scale
//! inventory that relies on the ATA of historical trips to estimate the
//! expected time to destination … each result set can be considered as a
//! basic ETA estimate". The estimator queries the most specific available
//! grouping-set entry for the vessel's cell — route-level first, then
//! vessel-type, then all-traffic — widening to neighbouring cells when the
//! exact cell is unseen.

use pol_ais::types::MarketSegment;
use pol_core::{CellStats, Inventory, InventoryQuery};
use pol_geo::{haversine_km, LatLon};
use pol_hexgrid::{cell_at, grid_disk, CellIndex};
use std::borrow::Cow;

/// An ETA estimate with its uncertainty band.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EtaEstimate {
    /// Mean remaining time, seconds.
    pub mean_secs: f64,
    /// 10th percentile (optimistic), seconds.
    pub p10_secs: f64,
    /// Median, seconds.
    pub p50_secs: f64,
    /// 90th percentile (pessimistic), seconds.
    pub p90_secs: f64,
    /// Historical observations backing the estimate.
    pub samples: u64,
    /// How many rings of neighbouring cells were widened to (0 = exact).
    pub widened: u32,
}

/// The inventory-backed ETA estimator.
///
/// Generic over [`InventoryQuery`] so the same estimator serves from the
/// in-memory [`Inventory`] or from a serving-side store (the `pol-serve`
/// ETA endpoint delegates here against its sharded store).
pub struct EtaEstimator<'a, I: InventoryQuery = Inventory> {
    inventory: &'a I,
    /// Widen the query up to this many rings when the cell is unseen.
    pub max_widening: u32,
}

impl<'a, I: InventoryQuery> EtaEstimator<'a, I> {
    /// Wraps an inventory-shaped store.
    pub fn new(inventory: &'a I) -> Self {
        EtaEstimator {
            inventory,
            max_widening: 2,
        }
    }

    /// Estimates remaining time to destination for a vessel at `pos`.
    ///
    /// `route` narrows the lookup to the `(origin, dest, segment)` grouping
    /// set when provided (the most informative key); otherwise the
    /// vessel-type or all-traffic summaries serve.
    pub fn estimate(
        &self,
        pos: LatLon,
        segment: Option<MarketSegment>,
        route: Option<(u16, u16)>,
    ) -> Option<EtaEstimate> {
        let cell = cell_at(pos, self.inventory.resolution());
        for k in 0..=self.max_widening {
            let ring = grid_disk(cell, k);
            // Merge ATA stats across the ring at the most specific
            // available key level.
            let mut best: Option<EtaEstimate> = None;
            let mut agg_mean = 0.0f64;
            let mut agg_n = 0u64;
            let mut qs: Vec<(f64, f64, f64, u64)> = Vec::new();
            for c in ring {
                if let Some(stats) = self.lookup(c, segment, route) {
                    if stats.ata.count() == 0 {
                        continue;
                    }
                    let n = stats.ata.count();
                    agg_mean += stats.ata.mean().unwrap_or(0.0) * n as f64;
                    agg_n += n;
                    let mut q = stats.ata_q.clone();
                    if let (Some(p10), Some(p50), Some(p90)) =
                        (q.quantile(0.1), q.quantile(0.5), q.quantile(0.9))
                    {
                        qs.push((p10, p50, p90, n));
                    }
                }
            }
            if agg_n > 0 && !qs.is_empty() {
                let wsum: f64 = qs.iter().map(|q| q.3 as f64).sum();
                let wavg = |f: fn(&(f64, f64, f64, u64)) -> f64| {
                    qs.iter().map(|q| f(q) * q.3 as f64).sum::<f64>() / wsum
                };
                best = Some(EtaEstimate {
                    mean_secs: agg_mean / agg_n as f64,
                    p10_secs: wavg(|q| q.0),
                    p50_secs: wavg(|q| q.1),
                    p90_secs: wavg(|q| q.2),
                    samples: agg_n,
                    widened: k,
                });
            }
            if best.is_some() {
                return best;
            }
        }
        None
    }

    /// Most specific grouping-set entry for a cell. `Cow` because a
    /// mapped store decodes the stats on demand (owned) while the heap
    /// inventory hands back a borrow — see [`InventoryQuery`].
    fn lookup(
        &self,
        cell: CellIndex,
        segment: Option<MarketSegment>,
        route: Option<(u16, u16)>,
    ) -> Option<Cow<'_, CellStats>> {
        if let (Some(seg), Some((o, d))) = (segment, route) {
            if let Some(s) = self.inventory.summary_route(cell, o, d, seg) {
                return Some(s);
            }
        }
        if let Some(seg) = segment {
            if let Some(s) = self.inventory.summary_for(cell, seg) {
                return Some(s);
            }
        }
        self.inventory.summary(cell)
    }
}

/// The naive baseline the paper's inventory estimate is compared against:
/// great-circle distance to the destination over an assumed service speed.
pub fn naive_eta_secs(pos: LatLon, dest: LatLon, assumed_speed_kn: f64) -> f64 {
    let km = haversine_km(pos, dest);
    km / pol_geo::units::knots_to_kmh(assumed_speed_kn.max(0.1)) * 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_core::features::{CellStats, GroupKey};
    use pol_core::records::{CellPoint, TripPoint};
    use pol_hexgrid::Resolution;
    use pol_sketch::hash::FxHashMap;

    /// Hand-built inventory: one mid-ocean cell with known ATA ≈ 10 000 s.
    fn inventory_with_cell(pos: LatLon, ata: &[i64]) -> (Inventory, CellIndex) {
        let res = Resolution::new(6).unwrap();
        let cell = cell_at(pos, res);
        let mut stats = CellStats::new(0.02, 8);
        for (i, &a) in ata.iter().enumerate() {
            let cp = CellPoint {
                point: TripPoint {
                    mmsi: pol_ais::types::Mmsi(1 + i as u32),
                    timestamp: 0,
                    pos,
                    sog_knots: Some(14.0),
                    cog_deg: Some(90.0),
                    heading_deg: Some(90.0),
                    segment: MarketSegment::Container,
                    trip_id: i as u64,
                    origin: 2,
                    dest: 9,
                    eto_secs: 5_000,
                    ata_secs: a,
                },
                cell,
                next_cell: None,
            };
            stats.observe(&cp);
        }
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        entries.insert(GroupKey::Cell(cell), stats.clone());
        entries.insert(
            GroupKey::CellType(cell, MarketSegment::Container),
            stats.clone(),
        );
        entries.insert(
            GroupKey::CellRoute(cell, 2, 9, MarketSegment::Container),
            stats,
        );
        (
            Inventory::from_entries(res, entries, ata.len() as u64),
            cell,
        )
    }

    #[test]
    fn estimates_from_exact_cell() {
        let pos = LatLon::new(30.0, -40.0).unwrap();
        let (inv, _) = inventory_with_cell(pos, &[9_000, 10_000, 11_000]);
        let est = EtaEstimator::new(&inv)
            .estimate(pos, Some(MarketSegment::Container), Some((2, 9)))
            .unwrap();
        assert!((est.mean_secs - 10_000.0).abs() < 1.0);
        assert_eq!(est.samples, 3);
        assert_eq!(est.widened, 0);
        assert!(est.p10_secs <= est.p50_secs && est.p50_secs <= est.p90_secs);
    }

    #[test]
    fn widens_to_neighbours_when_cell_unseen() {
        let pos = LatLon::new(30.0, -40.0).unwrap();
        let (inv, cell) = inventory_with_cell(pos, &[10_000; 5]);
        // Query from a neighbouring cell's centre.
        let neighbour = pol_hexgrid::neighbors(cell)[0];
        let npos = pol_hexgrid::cell_center(neighbour);
        let est = EtaEstimator::new(&inv)
            .estimate(npos, Some(MarketSegment::Container), None)
            .unwrap();
        assert_eq!(est.widened, 1);
        assert!((est.mean_secs - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn none_when_nothing_nearby() {
        let pos = LatLon::new(30.0, -40.0).unwrap();
        let (inv, _) = inventory_with_cell(pos, &[10_000]);
        let far = LatLon::new(-30.0, 100.0).unwrap();
        assert!(EtaEstimator::new(&inv).estimate(far, None, None).is_none());
    }

    #[test]
    fn falls_back_across_key_levels() {
        let pos = LatLon::new(30.0, -40.0).unwrap();
        let (inv, _) = inventory_with_cell(pos, &[10_000; 4]);
        let est = EtaEstimator::new(&inv);
        // Unknown route: falls back to segment, then cell.
        assert!(est
            .estimate(pos, Some(MarketSegment::Container), Some((7, 7)))
            .is_some());
        // Unknown segment: falls back to the all-traffic summary.
        assert!(est.estimate(pos, Some(MarketSegment::Gas), None).is_some());
        assert!(est.estimate(pos, None, None).is_some());
    }

    #[test]
    fn naive_baseline_math() {
        let a = LatLon::new(0.0, 0.0).unwrap();
        let b = LatLon::new(0.0, 1.0).unwrap(); // ≈ 111.2 km
        let secs = naive_eta_secs(a, b, 15.0); // 27.78 km/h
        let expect = 111.19 / 27.78 * 3600.0;
        assert!((secs - expect).abs() / expect < 0.01, "{secs} vs {expect}");
    }
}
