//! # pol-apps — downstream use cases over the global inventory
//!
//! §4 of the paper demonstrates the inventory's value on three maritime
//! problems; this crate implements all of them, plus the normalcy-model
//! anomaly detection the introduction motivates (COVID-19, Suez):
//!
//! * [`eta`] — §4.1.2: estimated time of arrival from the per-cell ATA/ETO
//!   statistics, against a naive great-circle baseline,
//! * [`progress`] — §4.1.2's other half: voyage-progress and departure-time
//!   estimation from the ETO statistics,
//! * [`destination`] — §4.1.3: streaming destination prediction by
//!   accumulating per-cell Top-N destination votes as reports arrive,
//! * [`route`] — §4.1.3: route forecasting over the transition graph of a
//!   `(origin, destination, vessel-type)` key with A* search,
//! * [`anomaly`] — the "model of normalcy" (§2): per-cell z-scores for
//!   speed, circular deviation for course, and off-lane detection.

#![deny(missing_docs)]

pub mod anomaly;
pub mod destination;
pub mod eta;
pub mod progress;
pub mod route;

pub use anomaly::{Anomaly, AnomalyDetector};
pub use destination::DestinationPredictor;
pub use eta::{naive_eta_secs, EtaEstimate, EtaEstimator};
pub use progress::{ProgressEstimate, ProgressEstimator};
pub use route::RouteForecaster;
