//! §4.1.3 — streaming destination prediction.
//!
//! Per the paper: "a streaming application may query online the inventory
//! for each AIS message and retrieve the top-N destinations for vessels of
//! the same type that sailed nearby in the past … it can keep track of this
//! list, as the stream of AIS messages proceeds, to decide on the most
//! probable destination."
//!
//! The predictor accumulates per-cell destination votes with exponential
//! recency weighting, so late-voyage cells (which are more discriminative)
//! dominate the tally.

use pol_ais::types::MarketSegment;
use pol_core::{Inventory, InventoryQuery};
use pol_geo::LatLon;
use pol_hexgrid::cell_at;
use pol_sketch::hash::FxHashMap;

/// The streaming predictor. One instance per tracked vessel.
///
/// Generic over [`InventoryQuery`] so the same predictor runs against the
/// in-memory [`Inventory`] or a serving-side store (the `pol-serve`
/// destination-prediction endpoint replays a track through one of these).
pub struct DestinationPredictor<'a, I: InventoryQuery = Inventory> {
    inventory: &'a I,
    segment: Option<MarketSegment>,
    /// Exponential decay applied to the running tally per observation
    /// (1.0 = plain sum; < 1.0 favours recent cells).
    pub decay: f64,
    scores: FxHashMap<u16, f64>,
    observations: u64,
}

impl<'a, I: InventoryQuery> DestinationPredictor<'a, I> {
    /// Creates a predictor for a vessel of the given (optional) segment.
    pub fn new(inventory: &'a I, segment: Option<MarketSegment>) -> Self {
        DestinationPredictor {
            inventory,
            segment,
            decay: 0.98,
            scores: FxHashMap::default(),
            observations: 0,
        }
    }

    /// Feeds one positional report; returns whether the cell contributed
    /// any votes.
    pub fn observe(&mut self, pos: LatLon) -> bool {
        let cell = cell_at(pos, self.inventory.resolution());
        let stats = match self.segment {
            Some(seg) => self
                .inventory
                .summary_for(cell, seg)
                .or_else(|| self.inventory.summary(cell)),
            None => self.inventory.summary(cell),
        };
        let Some(stats) = stats else {
            return false;
        };
        // Decay the running tally, then add this cell's normalised votes.
        for v in self.scores.values_mut() {
            *v *= self.decay;
        }
        self.observations += 1;
        let top = stats.top_destinations(8);
        let total: u64 = top.iter().map(|(_, c)| *c).sum();
        if total == 0 {
            return false;
        }
        for (port, count) in top {
            *self.scores.entry(port).or_insert(0.0) += count as f64 / total as f64;
        }
        true
    }

    /// Reports observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The current most probable destinations, best first, with
    /// normalised scores in `(0, 1]`.
    pub fn top(&self, n: usize) -> Vec<(u16, f64)> {
        let total: f64 = self.scores.values().sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let mut all: Vec<(u16, f64)> = self.scores.iter().map(|(p, s)| (*p, s / total)).collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// The single best guess.
    pub fn best(&self) -> Option<(u16, f64)> {
        self.top(1).pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_core::features::{CellStats, GroupKey};
    use pol_core::records::{CellPoint, TripPoint};
    use pol_hexgrid::Resolution;

    /// Inventory where a west→east corridor votes for port 9 early on and
    /// port 9 exclusively near the end; a noise port 3 appears early.
    fn corridor_inventory() -> (Inventory, Vec<LatLon>) {
        let res = Resolution::new(6).unwrap();
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        let mut track = Vec::new();
        for i in 0..12 {
            let pos = LatLon::new(10.0, 10.0 + i as f64 * 0.2).unwrap();
            track.push(pos);
            let cell = cell_at(pos, res);
            let mut stats = CellStats::new(0.02, 8);
            // Early cells: mixed votes; late cells: pure port 9.
            let dests: Vec<u16> = if i < 6 { vec![9, 9, 3] } else { vec![9, 9, 9] };
            for (j, d) in dests.iter().enumerate() {
                let cp = CellPoint {
                    point: TripPoint {
                        mmsi: pol_ais::types::Mmsi(1 + j as u32),
                        timestamp: 0,
                        pos,
                        sog_knots: Some(12.0),
                        cog_deg: Some(90.0),
                        heading_deg: Some(90.0),
                        segment: MarketSegment::Tanker,
                        trip_id: j as u64,
                        origin: 0,
                        dest: *d,
                        eto_secs: 0,
                        ata_secs: 0,
                    },
                    cell,
                    next_cell: None,
                };
                stats.observe(&cp);
            }
            entries.insert(GroupKey::Cell(cell), stats.clone());
            entries.insert(GroupKey::CellType(cell, MarketSegment::Tanker), stats);
        }
        (Inventory::from_entries(res, entries, 36), track)
    }

    #[test]
    fn converges_to_true_destination() {
        let (inv, track) = corridor_inventory();
        let mut p = DestinationPredictor::new(&inv, Some(MarketSegment::Tanker));
        for pos in &track {
            assert!(p.observe(*pos));
        }
        let (best, score) = p.best().unwrap();
        assert_eq!(best, 9);
        assert!(score > 0.6, "score {score}");
        assert_eq!(p.observations(), track.len() as u64);
    }

    #[test]
    fn ranking_includes_runner_up() {
        let (inv, track) = corridor_inventory();
        let mut p = DestinationPredictor::new(&inv, None);
        for pos in &track[..4] {
            p.observe(*pos);
        }
        let top = p.top(3);
        assert_eq!(top[0].0, 9);
        assert!(
            top.iter().any(|(d, _)| *d == 3),
            "noise port ranked: {top:?}"
        );
        // Scores normalised.
        let sum: f64 = top.iter().map(|(_, s)| s).sum();
        assert!(sum <= 1.0 + 1e-9);
    }

    #[test]
    fn unseen_area_contributes_nothing() {
        let (inv, _) = corridor_inventory();
        let mut p = DestinationPredictor::new(&inv, None);
        assert!(!p.observe(LatLon::new(-40.0, -100.0).unwrap()));
        assert!(p.best().is_none());
        assert!(p.top(5).is_empty());
    }

    #[test]
    fn recency_outweighs_stale_votes() {
        let (inv, track) = corridor_inventory();
        let mut p = DestinationPredictor::new(&inv, None);
        p.decay = 0.5; // aggressive decay for the test
        for pos in &track {
            p.observe(*pos);
        }
        // Late cells are pure port 9 ⇒ with strong decay port 3's early
        // votes all but vanish.
        let top = p.top(2);
        assert_eq!(top[0].0, 9);
        if let Some((_, s3)) = top.iter().find(|(d, _)| *d == 3) {
            assert!(*s3 < 0.05, "stale vote survived: {s3}");
        }
    }
}
