//! §4.1.3 — route forecasting over the inventory's transition graph.
//!
//! Per the paper: for a vessel on a known `(origin, destination,
//! vessel-type)` trip, query the inventory for *all* cells holding that
//! key; the result set is the full set of historical transition locations.
//! Organise it as a graph — vertices are cell indices, edges come from the
//! Table-3 "Transitions" feature — and run a shortest-path search (the
//! paper names A*) from the vessel's current cell towards the destination.

use pol_ais::types::MarketSegment;
use pol_core::Inventory;
use pol_geo::{haversine_km, LatLon};
use pol_hexgrid::{cell_at, cell_center, CellIndex};
use pol_sketch::hash::{FxHashMap, FxHashSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A forecast route as a cell path.
#[derive(Clone, Debug)]
pub struct RouteForecast {
    /// Cells from the vessel's current cell to the destination area.
    pub cells: Vec<CellIndex>,
    /// Total great-circle length over cell centres, km.
    pub distance_km: f64,
}

/// The per-key route forecaster.
pub struct RouteForecaster {
    /// Historical transition edges: cell → (next cell, observed count).
    edges: FxHashMap<CellIndex, Vec<(CellIndex, u64)>>,
    /// All cells of the route key.
    members: FxHashSet<CellIndex>,
    dest_pos: LatLon,
}

impl RouteForecaster {
    /// Builds the transition graph for one `(origin, dest, segment)` key.
    /// `dest_pos` anchors the A* heuristic and the goal test.
    pub fn build(
        inventory: &Inventory,
        origin: u16,
        dest: u16,
        segment: MarketSegment,
        dest_pos: LatLon,
    ) -> RouteForecaster {
        let members: FxHashSet<CellIndex> = inventory
            .route_cells(origin, dest, segment)
            .into_iter()
            .collect();
        let mut edges: FxHashMap<CellIndex, Vec<(CellIndex, u64)>> = FxHashMap::default();
        for &cell in &members {
            if let Some(stats) = inventory.summary_route(cell, origin, dest, segment) {
                let outs: Vec<(CellIndex, u64)> = stats
                    .top_transitions(8)
                    .into_iter()
                    .filter(|(next, _)| members.contains(next))
                    .collect();
                if !outs.is_empty() {
                    edges.insert(cell, outs);
                }
            }
        }
        RouteForecaster {
            edges,
            members,
            dest_pos,
        }
    }

    /// Number of cells holding the route key.
    pub fn cell_count(&self) -> usize {
        self.members.len()
    }

    /// Number of cells with outgoing transitions.
    pub fn edge_sources(&self) -> usize {
        self.edges.len()
    }

    /// Forecasts the route from the vessel's current position: A* over the
    /// historical transition graph with the great-circle distance to the
    /// destination as the (admissible) heuristic. Succeeds when the current
    /// cell (or a member cell very near it) connects to the destination
    /// area; returns `None` for positions off the historical lane.
    pub fn forecast(
        &self,
        pos: LatLon,
        resolution: pol_hexgrid::Resolution,
    ) -> Option<RouteForecast> {
        let start = cell_at(pos, resolution);
        let start = if self.members.contains(&start) {
            start
        } else {
            // Snap to the nearest member cell within a small radius.
            self.nearest_member(pos, 3.0 * pol_hexgrid::avg_edge_length_km(resolution) * 3.0)?
        };
        // Goal: any member cell near the destination. Trip cells stop at
        // the port geofence boundary (~12 km in the default pipeline), so
        // the goal disc must reach past it plus a cell of slack.
        let goal_radius = (6.0 * pol_hexgrid::avg_edge_length_km(resolution)).max(25.0);
        let h = |c: CellIndex| haversine_km(cell_center(c), self.dest_pos);

        let mut dist: FxHashMap<CellIndex, f64> = FxHashMap::default();
        let mut prev: FxHashMap<CellIndex, CellIndex> = FxHashMap::default();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut id_of: FxHashMap<u64, CellIndex> = FxHashMap::default();
        dist.insert(start, 0.0);
        id_of.insert(start.raw(), start);
        heap.push(Reverse(((h(start) * 1000.0) as u64, start.raw())));
        let mut best_goal: Option<CellIndex> = None;
        while let Some(Reverse((_, raw))) = heap.pop() {
            let cur = id_of[&raw];
            let d_cur = dist[&cur];
            if h(cur) <= goal_radius {
                best_goal = Some(cur);
                break;
            }
            if let Some(outs) = self.edges.get(&cur) {
                for (next, _count) in outs {
                    let step = haversine_km(cell_center(cur), cell_center(*next)).max(0.001);
                    let nd = d_cur + step;
                    if dist.get(next).is_none_or(|&old| nd < old) {
                        dist.insert(*next, nd);
                        prev.insert(*next, cur);
                        id_of.insert(next.raw(), *next);
                        heap.push(Reverse((((nd + h(*next)) * 1000.0) as u64, next.raw())));
                    }
                }
            }
        }
        let goal = best_goal?;
        let mut cells = vec![goal];
        let mut cur = goal;
        while let Some(&p) = prev.get(&cur) {
            cells.push(p);
            cur = p;
        }
        cells.reverse();
        Some(RouteForecast {
            distance_km: dist[&goal],
            cells,
        })
    }

    fn nearest_member(&self, pos: LatLon, max_km: f64) -> Option<CellIndex> {
        self.members
            .iter()
            .map(|&c| (c, haversine_km(cell_center(c), pos)))
            .filter(|(_, d)| *d <= max_km)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, _)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_core::features::{CellStats, GroupKey};
    use pol_core::records::{CellPoint, TripPoint};
    use pol_hexgrid::Resolution;

    const SEG: MarketSegment = MarketSegment::Container;

    /// Builds an inventory whose route key follows a synthetic west→east
    /// chain of cells along 30°N.
    fn chain_inventory() -> (Inventory, Vec<LatLon>, LatLon) {
        let res = Resolution::new(6).unwrap();
        let positions: Vec<LatLon> = (0..30)
            .map(|i| LatLon::new(30.0, -40.0 + i as f64 * 0.08).unwrap())
            .collect();
        let cells: Vec<CellIndex> = positions.iter().map(|p| cell_at(*p, res)).collect();
        let mut entries: FxHashMap<GroupKey, CellStats> = FxHashMap::default();
        for (i, (&pos, &cell)) in positions.iter().zip(&cells).enumerate() {
            let next_cell = cells[i..].iter().copied().find(|c| *c != cell);
            let cp = CellPoint {
                point: TripPoint {
                    mmsi: pol_ais::types::Mmsi(42),
                    timestamp: i as i64,
                    pos,
                    sog_knots: Some(16.0),
                    cog_deg: Some(90.0),
                    heading_deg: Some(90.0),
                    segment: SEG,
                    trip_id: 7,
                    origin: 1,
                    dest: 2,
                    eto_secs: 0,
                    ata_secs: 0,
                },
                cell,
                next_cell,
            };
            entries
                .entry(GroupKey::CellRoute(cell, 1, 2, SEG))
                .or_insert_with(|| CellStats::new(0.02, 8))
                .observe(&cp);
        }
        let dest_pos = *positions.last().unwrap();
        (
            Inventory::from_entries(res, entries, positions.len() as u64),
            positions,
            dest_pos,
        )
    }

    #[test]
    fn graph_built_from_route_key() {
        let (inv, _, dest) = chain_inventory();
        let f = RouteForecaster::build(&inv, 1, 2, SEG, dest);
        assert!(f.cell_count() > 5);
        assert!(f.edge_sources() > 3);
        // Wrong key: empty graph.
        let empty = RouteForecaster::build(&inv, 1, 3, SEG, dest);
        assert_eq!(empty.cell_count(), 0);
    }

    #[test]
    fn forecast_reaches_destination_area() {
        let (inv, positions, dest) = chain_inventory();
        let f = RouteForecaster::build(&inv, 1, 2, SEG, dest);
        let fc = f
            .forecast(positions[2], Resolution::new(6).unwrap())
            .expect("on-lane position forecasts");
        assert!(fc.cells.len() >= 3, "path {:?}", fc.cells.len());
        // Path ends near the destination.
        let end = cell_center(*fc.cells.last().unwrap());
        assert!(haversine_km(end, dest) < 30.0);
        // Path length is comparable to the remaining great-circle distance.
        let direct = haversine_km(positions[2], dest);
        assert!(
            fc.distance_km >= direct * 0.7 && fc.distance_km < direct * 2.0 + 50.0,
            "distance {} vs direct {direct}",
            fc.distance_km
        );
    }

    #[test]
    fn forecast_path_follows_observed_transitions() {
        let (inv, positions, dest) = chain_inventory();
        let f = RouteForecaster::build(&inv, 1, 2, SEG, dest);
        let fc = f
            .forecast(positions[0], Resolution::new(6).unwrap())
            .unwrap();
        for w in fc.cells.windows(2) {
            let outs = f.edges.get(&w[0]).expect("edge source");
            assert!(outs.iter().any(|(n, _)| *n == w[1]), "unobserved hop");
        }
    }

    #[test]
    fn off_lane_position_returns_none() {
        let (inv, _, dest) = chain_inventory();
        let f = RouteForecaster::build(&inv, 1, 2, SEG, dest);
        let off = LatLon::new(-20.0, 100.0).unwrap();
        assert!(f.forecast(off, Resolution::new(6).unwrap()).is_none());
    }

    #[test]
    fn near_lane_position_snaps_to_lane() {
        let (inv, positions, dest) = chain_inventory();
        let f = RouteForecaster::build(&inv, 1, 2, SEG, dest);
        // ~8 km north of the lane.
        let near = pol_geo::destination(positions[3], 0.0, 8.0);
        assert!(f.forecast(near, Resolution::new(6).unwrap()).is_some());
    }
}
