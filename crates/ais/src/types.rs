//! Core AIS identity and classification types.

use std::fmt;

/// A Maritime Mobile Service Identity: the 9-digit vessel identifier every
/// AIS message carries. The pipeline partitions by MMSI (§3.3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mmsi(pub u32);

impl Mmsi {
    /// Validates the 9-digit range (and the 30-bit field width of AIS).
    pub fn new(raw: u32) -> Option<Mmsi> {
        (raw > 0 && raw < 1_000_000_000).then_some(Mmsi(raw))
    }
}

impl fmt::Display for Mmsi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:09}", self.0)
    }
}

/// Navigational status (4-bit field of position reports).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum NavStatus {
    /// Under way using engine (0).
    UnderWayUsingEngine = 0,
    /// At anchor (1).
    AtAnchor = 1,
    /// Not under command (2).
    NotUnderCommand = 2,
    /// Restricted manoeuvrability (3).
    RestrictedManoeuvrability = 3,
    /// Constrained by her draught (4).
    ConstrainedByDraught = 4,
    /// Moored (5).
    Moored = 5,
    /// Aground (6).
    Aground = 6,
    /// Engaged in fishing (7).
    EngagedInFishing = 7,
    /// Under way sailing (8).
    UnderWaySailing = 8,
    /// Reserved for future use (9).
    Reserved9 = 9,
    /// Reserved for future use (10).
    Reserved10 = 10,
    /// Power-driven vessel towing astern (11).
    PowerDrivenTowingAstern = 11,
    /// Power-driven vessel pushing ahead (12).
    PowerDrivenPushingAhead = 12,
    /// Reserved for future use (13).
    Reserved13 = 13,
    /// AIS-SART active (14).
    AisSartActive = 14,
    /// Undefined / default (15).
    Undefined = 15,
}

impl NavStatus {
    /// Maps the raw 4-bit field.
    pub fn from_raw(raw: u8) -> NavStatus {
        match raw {
            0 => Self::UnderWayUsingEngine,
            1 => Self::AtAnchor,
            2 => Self::NotUnderCommand,
            3 => Self::RestrictedManoeuvrability,
            4 => Self::ConstrainedByDraught,
            5 => Self::Moored,
            6 => Self::Aground,
            7 => Self::EngagedInFishing,
            8 => Self::UnderWaySailing,
            9 => Self::Reserved9,
            10 => Self::Reserved10,
            11 => Self::PowerDrivenTowingAstern,
            12 => Self::PowerDrivenPushingAhead,
            13 => Self::Reserved13,
            14 => Self::AisSartActive,
            _ => Self::Undefined,
        }
    }

    /// The raw 4-bit value.
    pub fn raw(self) -> u8 {
        self as u8
    }

    /// Whether the vessel is stationary by status (anchored/moored/aground).
    /// The AIS transmission interval stretches to 3 minutes in these states.
    pub fn is_stationary(self) -> bool {
        matches!(self, Self::AtAnchor | Self::Moored | Self::Aground)
    }
}

/// Raw AIS ship-type code (8-bit field of static reports, values 0–99).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShipTypeCode(pub u8);

impl ShipTypeCode {
    /// First-digit category of the two-digit code.
    pub fn category(self) -> u8 {
        self.0 / 10
    }
}

/// The market segment a vessel belongs to — the `vessel-type` dimension of
/// the paper's grouping sets (Table 2). The paper's inventory tracks the
/// commercial fleet (> 5000 GRT, class-A); segmentation follows the
/// industry convention MarineTraffic applies on top of the raw AIS
/// ship-type code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum MarketSegment {
    /// Container ships.
    Container = 0,
    /// Dry-bulk carriers.
    DryBulk = 1,
    /// Oil/chemical/product tankers.
    Tanker = 2,
    /// LNG/LPG carriers.
    Gas = 3,
    /// General cargo, ro-ro, vehicle carriers.
    GeneralCargo = 4,
    /// Cruise ships and ferries.
    Passenger = 5,
    /// Everything else (fishing, tugs, pleasure craft, …) — filtered out of
    /// the commercial inventory by the cleaning step.
    Other = 6,
}

impl MarketSegment {
    /// All segments, in discriminant order.
    pub const ALL: [MarketSegment; 7] = [
        Self::Container,
        Self::DryBulk,
        Self::Tanker,
        Self::Gas,
        Self::GeneralCargo,
        Self::Passenger,
        Self::Other,
    ];

    /// Commercial segments included in the inventory (the paper filters the
    /// fleet to logistics-chain vessels).
    pub const COMMERCIAL: [MarketSegment; 6] = [
        Self::Container,
        Self::DryBulk,
        Self::Tanker,
        Self::Gas,
        Self::GeneralCargo,
        Self::Passenger,
    ];

    /// Whether this segment belongs to the commercial fleet.
    pub fn is_commercial(self) -> bool {
        !matches!(self, Self::Other)
    }

    /// Stable numeric id (used by the inventory's binary codec).
    pub fn id(self) -> u8 {
        self as u8
    }

    /// Inverse of [`MarketSegment::id`].
    pub fn from_id(id: u8) -> Option<MarketSegment> {
        Self::ALL.get(id as usize).copied()
    }

    /// Classifies a raw AIS ship-type code into a market segment.
    ///
    /// The raw code distinguishes only coarse categories (6x passenger,
    /// 7x cargo, 8x tanker); real vessel databases refine 7x/8x with static
    /// data. The simulator emits refined codes via
    /// [`MarketSegment::representative_code`], so classification here
    /// round-trips.
    pub fn from_ship_type(code: ShipTypeCode) -> MarketSegment {
        match code.0 {
            60..=69 => Self::Passenger,
            71 => Self::Container, // industry refinement of "cargo, hazardous A"
            70 | 72..=74 => Self::GeneralCargo,
            75..=79 => Self::DryBulk,
            84 => Self::Gas, // refinement of "tanker, hazardous D"
            80..=83 | 85..=89 => Self::Tanker,
            _ => Self::Other,
        }
    }

    /// A representative AIS ship-type code for the segment (what the
    /// simulator writes into static reports).
    pub fn representative_code(self) -> ShipTypeCode {
        ShipTypeCode(match self {
            Self::Container => 71,
            Self::DryBulk => 75,
            Self::Tanker => 80,
            Self::Gas => 84,
            Self::GeneralCargo => 70,
            Self::Passenger => 60,
            Self::Other => 37, // pleasure craft
        })
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Container => "container",
            Self::DryBulk => "dry-bulk",
            Self::Tanker => "tanker",
            Self::Gas => "gas-carrier",
            Self::GeneralCargo => "general-cargo",
            Self::Passenger => "passenger",
            Self::Other => "other",
        }
    }
}

impl fmt::Display for MarketSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmsi_validation() {
        assert!(Mmsi::new(0).is_none());
        assert!(Mmsi::new(1_000_000_000).is_none());
        assert_eq!(Mmsi::new(211_339_980), Some(Mmsi(211_339_980)));
        assert_eq!(Mmsi(211_339_980).to_string(), "211339980");
        assert_eq!(Mmsi(99).to_string(), "000000099");
    }

    #[test]
    fn nav_status_round_trip() {
        for raw in 0..16u8 {
            let s = NavStatus::from_raw(raw);
            assert_eq!(s.raw(), raw);
        }
    }

    #[test]
    fn stationary_statuses() {
        assert!(NavStatus::Moored.is_stationary());
        assert!(NavStatus::AtAnchor.is_stationary());
        assert!(!NavStatus::UnderWayUsingEngine.is_stationary());
    }

    #[test]
    fn segment_classification() {
        assert_eq!(
            MarketSegment::from_ship_type(ShipTypeCode(71)),
            MarketSegment::Container
        );
        assert_eq!(
            MarketSegment::from_ship_type(ShipTypeCode(75)),
            MarketSegment::DryBulk
        );
        assert_eq!(
            MarketSegment::from_ship_type(ShipTypeCode(80)),
            MarketSegment::Tanker
        );
        assert_eq!(
            MarketSegment::from_ship_type(ShipTypeCode(84)),
            MarketSegment::Gas
        );
        assert_eq!(
            MarketSegment::from_ship_type(ShipTypeCode(65)),
            MarketSegment::Passenger
        );
        assert_eq!(
            MarketSegment::from_ship_type(ShipTypeCode(30)),
            MarketSegment::Other
        );
    }

    #[test]
    fn representative_codes_round_trip() {
        for seg in MarketSegment::ALL {
            assert_eq!(
                MarketSegment::from_ship_type(seg.representative_code()),
                seg,
                "segment {seg}"
            );
        }
    }

    #[test]
    fn segment_ids_round_trip() {
        for seg in MarketSegment::ALL {
            assert_eq!(MarketSegment::from_id(seg.id()), Some(seg));
        }
        assert_eq!(MarketSegment::from_id(7), None);
    }

    #[test]
    fn commercial_excludes_other() {
        assert!(!MarketSegment::Other.is_commercial());
        for seg in MarketSegment::COMMERCIAL {
            assert!(seg.is_commercial());
        }
    }
}
