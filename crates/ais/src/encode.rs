//! AIVDM payload encoding — the inverse of [`crate::decode`], used by the
//! fleet simulator to emit raw wire traffic and by the round-trip tests
//! that pin the codec down.

use crate::report::{PositionReport, StaticReport};
use crate::sixbit::BitWriter;

fn encode_sog(sog: Option<f64>) -> u64 {
    match sog {
        Some(s) => ((s.clamp(0.0, 102.2) * 10.0).round()) as u64,
        None => 1023,
    }
}

fn encode_cog(cog: Option<f64>) -> u64 {
    match cog {
        Some(c) => ((c.rem_euclid(360.0) * 10.0).round() as u64).min(3599),
        None => 3600,
    }
}

fn encode_heading(h: Option<f64>) -> u64 {
    match h {
        Some(h) => (h.rem_euclid(360.0).round() as u64).min(359),
        None => 511,
    }
}

fn pos_fields(report: &PositionReport) -> (i64, i64) {
    let lon = (report.pos.lon() * 600_000.0).round() as i64;
    let lat = (report.pos.lat() * 600_000.0).round() as i64;
    (lon, lat)
}

/// Encodes a class-A position report as a type-1 payload
/// (`(payload, fill_bits)`).
pub fn encode_position_a(report: &PositionReport) -> (String, u8) {
    let mut w = BitWriter::new();
    w.write_u64(1, 6); // type 1
    w.write_u64(0, 2); // repeat
    w.write_u64(report.mmsi.0 as u64, 30);
    w.write_u64(report.nav_status.raw() as u64, 4);
    w.write_i64(-128, 8); // ROT: not available
    w.write_u64(encode_sog(report.sog_knots), 10);
    w.write_u64(0, 1); // accuracy
    let (lon, lat) = pos_fields(report);
    w.write_i64(lon, 28);
    w.write_i64(lat, 27);
    w.write_u64(encode_cog(report.cog_deg), 12);
    w.write_u64(encode_heading(report.heading_deg), 9);
    w.write_u64((report.timestamp.rem_euclid(60)) as u64, 6);
    w.write_u64(0, 2); // manoeuvre
    w.write_u64(0, 3); // spare
    w.write_u64(0, 1); // RAIM
    w.write_u64(0, 19); // radio status
    debug_assert_eq!(w.len(), 168);
    w.into_payload()
}

/// Encodes a class-B position report as a type-18 payload.
pub fn encode_position_b(report: &PositionReport) -> (String, u8) {
    let mut w = BitWriter::new();
    w.write_u64(18, 6);
    w.write_u64(0, 2);
    w.write_u64(report.mmsi.0 as u64, 30);
    w.write_u64(0, 8); // regional reserved
    w.write_u64(encode_sog(report.sog_knots), 10);
    w.write_u64(0, 1);
    let (lon, lat) = pos_fields(report);
    w.write_i64(lon, 28);
    w.write_i64(lat, 27);
    w.write_u64(encode_cog(report.cog_deg), 12);
    w.write_u64(encode_heading(report.heading_deg), 9);
    w.write_u64((report.timestamp.rem_euclid(60)) as u64, 6);
    w.write_u64(0, 2); // regional
    w.write_u64(1, 1); // CS unit
    w.write_u64(0, 1 + 1 + 1 + 1 + 1); // display/DSC/band/msg22/assigned
    w.write_u64(0, 1); // RAIM
    w.write_u64(0, 20); // radio
    debug_assert_eq!(w.len(), 168);
    w.into_payload()
}

/// Encodes a static & voyage report as a type-5 payload (424 bits — spans
/// two NMEA sentences on the wire).
pub fn encode_static_voyage(s: &StaticReport, destination: &str, draught_m: f64) -> (String, u8) {
    let mut w = BitWriter::new();
    w.write_u64(5, 6);
    w.write_u64(0, 2);
    w.write_u64(s.mmsi.0 as u64, 30);
    w.write_u64(0, 2); // AIS version
    w.write_u64(s.imo.unwrap_or(0) as u64, 30);
    w.write_text("", 7); // callsign
    w.write_text(&s.name, 20);
    w.write_u64(s.ship_type.0 as u64, 8);
    // Dimensions: fabricate a length split 90/10 bow/stern, beam 0.
    let length = (s.gross_tonnage as f64).sqrt() as u64; // crude but monotone
    w.write_u64((length * 9 / 10).min(511), 9);
    w.write_u64((length / 10).min(511), 9);
    w.write_u64(0, 6);
    w.write_u64(0, 6);
    w.write_u64(1, 4); // EPFD: GPS
    w.write_u64(0, 20); // ETA
    w.write_u64(((draught_m * 10.0).round() as u64).min(255), 8);
    w.write_text(destination, 20);
    w.write_u64(0, 1); // DTE
    w.write_u64(0, 1); // spare
    debug_assert_eq!(w.len(), 424);
    w.into_payload()
}

/// Encodes a type-24 part A (name) payload.
pub fn encode_static_24a(s: &StaticReport) -> (String, u8) {
    let mut w = BitWriter::new();
    w.write_u64(24, 6);
    w.write_u64(0, 2);
    w.write_u64(s.mmsi.0 as u64, 30);
    w.write_u64(0, 2); // part A
    w.write_text(&s.name, 20);
    w.into_payload()
}

/// Encodes a type-24 part B (type/callsign) payload.
pub fn encode_static_24b(s: &StaticReport) -> (String, u8) {
    let mut w = BitWriter::new();
    w.write_u64(24, 6);
    w.write_u64(0, 2);
    w.write_u64(s.mmsi.0 as u64, 30);
    w.write_u64(1, 2); // part B
    w.write_u64(s.ship_type.0 as u64, 8);
    w.write_u64(0, 42); // vendor
    w.write_text("", 7); // callsign
    w.write_u64(0, 30); // dimensions
    w.write_u64(0, 6); // spare
    w.into_payload()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode_payload, AisMessage};
    use crate::types::{Mmsi, NavStatus, ShipTypeCode};
    use pol_geo::LatLon;

    fn sample_position() -> PositionReport {
        PositionReport {
            mmsi: Mmsi(235_087_123),
            timestamp: 1_650_000_037,
            pos: LatLon::new(50.123_456, -1.987_654).unwrap(),
            sog_knots: Some(14.3),
            cog_deg: Some(237.4),
            heading_deg: Some(235.0),
            nav_status: NavStatus::UnderWayUsingEngine,
        }
    }

    #[test]
    fn position_a_round_trip() {
        let r = sample_position();
        let (p, f) = encode_position_a(&r);
        match decode_payload(&p, f).unwrap() {
            AisMessage::PositionA {
                msg_type,
                mmsi,
                nav_status,
                sog_knots,
                pos,
                cog_deg,
                heading_deg,
                utc_second,
            } => {
                assert_eq!(msg_type, 1);
                assert_eq!(mmsi, r.mmsi);
                assert_eq!(nav_status, r.nav_status);
                assert!((sog_knots.unwrap() - 14.3).abs() < 0.051);
                let q = pos.unwrap();
                assert!((q.lat() - r.pos.lat()).abs() < 1e-5);
                assert!((q.lon() - r.pos.lon()).abs() < 1e-5);
                assert!((cog_deg.unwrap() - 237.4).abs() < 0.051);
                assert_eq!(heading_deg, Some(235.0));
                assert_eq!(utc_second as i64, r.timestamp % 60);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn position_b_round_trip() {
        let r = sample_position();
        let (p, f) = encode_position_b(&r);
        match decode_payload(&p, f).unwrap() {
            AisMessage::PositionB {
                mmsi,
                sog_knots,
                pos,
                ..
            } => {
                assert_eq!(mmsi, r.mmsi);
                assert!((sog_knots.unwrap() - 14.3).abs() < 0.051);
                assert!(pos.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_fields_round_trip_as_none() {
        let mut r = sample_position();
        r.sog_knots = None;
        r.cog_deg = None;
        r.heading_deg = None;
        let (p, f) = encode_position_a(&r);
        match decode_payload(&p, f).unwrap() {
            AisMessage::PositionA {
                sog_knots,
                cog_deg,
                heading_deg,
                ..
            } => {
                assert_eq!(sog_knots, None);
                assert_eq!(cog_deg, None);
                assert_eq!(heading_deg, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn static_voyage_round_trip() {
        let s = StaticReport {
            mmsi: Mmsi(636_012_345),
            imo: Some(9_321_483),
            name: "MAERSK TESTER".into(),
            ship_type: ShipTypeCode(71),
            gross_tonnage: 90_000,
        };
        let (p, f) = encode_static_voyage(&s, "SGSIN", 11.3);
        match decode_payload(&p, f).unwrap() {
            AisMessage::StaticVoyage {
                mmsi,
                imo,
                name,
                ship_type,
                draught_m,
                destination,
                length_m,
                ..
            } => {
                assert_eq!(mmsi, s.mmsi);
                assert_eq!(imo, s.imo);
                assert_eq!(name, "MAERSK TESTER");
                assert_eq!(ship_type, ShipTypeCode(71));
                assert!((draught_m - 11.3).abs() < 0.051);
                assert_eq!(destination, "SGSIN");
                assert!(length_m > 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn type24_round_trips() {
        let s = StaticReport {
            mmsi: Mmsi(244_123_456),
            imo: None,
            name: "LITTLE FEEDER".into(),
            ship_type: ShipTypeCode(70),
            gross_tonnage: 6_000,
        };
        let (pa, fa) = encode_static_24a(&s);
        match decode_payload(&pa, fa).unwrap() {
            AisMessage::StaticPartA { mmsi, name } => {
                assert_eq!(mmsi, s.mmsi);
                assert_eq!(name, "LITTLE FEEDER");
            }
            other => panic!("{other:?}"),
        }
        let (pb, fb) = encode_static_24b(&s);
        match decode_payload(&pb, fb).unwrap() {
            AisMessage::StaticPartB {
                mmsi, ship_type, ..
            } => {
                assert_eq!(mmsi, s.mmsi);
                assert_eq!(ship_type, ShipTypeCode(70));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn type5_spans_two_sentences() {
        let s = StaticReport {
            mmsi: Mmsi(1),
            imo: None,
            name: "N".into(),
            ship_type: ShipTypeCode(80),
            gross_tonnage: 10_000,
        };
        let (p, f) = encode_static_voyage(&s, "NLRTM", 9.0);
        let sentences = crate::nmea::Sentence::wrap(&p, f, 1);
        assert_eq!(sentences.len(), 2, "424 bits = 71 chars -> 2 sentences");
        // And reassembly decodes.
        let mut asm = crate::nmea::Assembler::new();
        let mut out = None;
        for s in sentences {
            let line = s.to_line();
            let parsed = crate::nmea::Sentence::parse(&line).unwrap();
            out = asm.push(parsed);
        }
        let (payload, fill) = out.expect("assembled");
        assert!(decode_payload(&payload, fill).is_ok());
    }
}
