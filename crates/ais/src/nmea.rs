//! NMEA 0183 sentence framing for AIVDM/AIVDO.
//!
//! A sentence looks like `!AIVDM,2,1,3,B,<payload>,0*5C`: fragment count,
//! fragment number, sequential message id (for multi-fragment messages),
//! radio channel, armoured payload, fill bits, and a `*`-prefixed XOR
//! checksum over everything between `!` and `*`. Message type 5 payloads
//! exceed one sentence and arrive as two fragments; the [`Assembler`]
//! reassembles them.

use std::collections::HashMap;
use std::fmt;

/// Error for malformed NMEA sentences.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NmeaError {
    /// Sentence doesn't start with `!AIVDM`/`!AIVDO` or lacks fields.
    Malformed(String),
    /// Checksum mismatch: `(expected, computed)`.
    Checksum(u8, u8),
    /// A numeric field failed to parse.
    BadField(&'static str),
}

impl fmt::Display for NmeaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Malformed(s) => write!(f, "malformed NMEA sentence: {s:?}"),
            Self::Checksum(e, c) => write!(
                f,
                "checksum mismatch: sentence says {e:02X}, computed {c:02X}"
            ),
            Self::BadField(name) => write!(f, "unparseable field: {name}"),
        }
    }
}

impl std::error::Error for NmeaError {}

/// One parsed AIVDM sentence (possibly a fragment of a longer message).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sentence {
    /// Total fragments of this message (1 for single-sentence messages).
    pub fragments: u8,
    /// This fragment's 1-based number.
    pub fragment_no: u8,
    /// Sequential message id linking fragments (empty for single-fragment).
    pub message_id: Option<u8>,
    /// Radio channel (`A`/`B`), when present.
    pub channel: Option<char>,
    /// Armoured payload.
    pub payload: String,
    /// Pad bits in the last payload character.
    pub fill_bits: u8,
}

/// XOR checksum over the characters between `!` and `*`.
pub fn checksum(body: &str) -> u8 {
    body.bytes().fold(0, |acc, b| acc ^ b)
}

impl Sentence {
    /// Parses a full `!AIVDM,...*CS` line (also accepts `!AIVDO`).
    pub fn parse(line: &str) -> Result<Sentence, NmeaError> {
        let line = line.trim();
        let rest = line
            .strip_prefix('!')
            .ok_or_else(|| NmeaError::Malformed(line.into()))?;
        let (body, cs_str) = rest
            .rsplit_once('*')
            .ok_or_else(|| NmeaError::Malformed(line.into()))?;
        let expected =
            u8::from_str_radix(cs_str.trim(), 16).map_err(|_| NmeaError::BadField("checksum"))?;
        let computed = checksum(body);
        if expected != computed {
            return Err(NmeaError::Checksum(expected, computed));
        }
        let fields: Vec<&str> = body.split(',').collect();
        let [talker, f_fragments, f_fragment_no, f_message_id, f_channel, f_payload, f_fill] =
            fields[..]
        else {
            return Err(NmeaError::Malformed(line.into()));
        };
        if !(talker == "AIVDM" || talker == "AIVDO") {
            return Err(NmeaError::Malformed(line.into()));
        }
        let fragments: u8 = f_fragments
            .parse()
            .map_err(|_| NmeaError::BadField("fragments"))?;
        let fragment_no: u8 = f_fragment_no
            .parse()
            .map_err(|_| NmeaError::BadField("fragment_no"))?;
        let message_id = if f_message_id.is_empty() {
            None
        } else {
            Some(
                f_message_id
                    .parse()
                    .map_err(|_| NmeaError::BadField("message_id"))?,
            )
        };
        let channel = f_channel.chars().next();
        let payload = f_payload.to_string();
        let fill_bits: u8 = f_fill
            .parse()
            .map_err(|_| NmeaError::BadField("fill_bits"))?;
        if fragments == 0 || fragment_no == 0 || fragment_no > fragments || fill_bits > 5 {
            return Err(NmeaError::Malformed(line.into()));
        }
        Ok(Sentence {
            fragments,
            fragment_no,
            message_id,
            channel,
            payload,
            fill_bits,
        })
    }

    /// Formats the sentence as a wire line with checksum.
    pub fn to_line(&self) -> String {
        let body = format!(
            "AIVDM,{},{},{},{},{},{}",
            self.fragments,
            self.fragment_no,
            self.message_id.map(|i| i.to_string()).unwrap_or_default(),
            self.channel.map(String::from).unwrap_or_default(),
            self.payload,
            self.fill_bits
        );
        format!("!{body}*{:02X}", checksum(&body))
    }

    /// Wraps an armoured payload into one or more sentences
    /// (fragmenting at 60 payload characters, the radio limit).
    pub fn wrap(payload: &str, fill_bits: u8, message_id: u8) -> Vec<Sentence> {
        const MAX_CHARS: usize = 60;
        let chunks: Vec<&str> = payload
            .as_bytes()
            .chunks(MAX_CHARS)
            // lint: allow(no_unwrap) — sixbit armouring emits only ASCII
            // bytes, so every 60-byte chunk boundary is a char boundary.
            .map(|c| std::str::from_utf8(c).expect("armoured payload is ASCII"))
            .collect();
        let total = chunks.len().max(1) as u8;
        chunks
            .iter()
            .enumerate()
            .map(|(i, chunk)| Sentence {
                fragments: total,
                fragment_no: i as u8 + 1,
                message_id: (total > 1).then_some(message_id),
                channel: Some('A'),
                payload: (*chunk).to_string(),
                fill_bits: if i as u8 + 1 == total { fill_bits } else { 0 },
            })
            .collect()
    }
}

/// Reassembles multi-fragment messages. Feed sentences in arrival order;
/// complete messages pop out as `(payload, fill_bits)`.
#[derive(Default)]
pub struct Assembler {
    pending: HashMap<u8, Vec<Option<Sentence>>>,
}

impl Assembler {
    /// A fresh assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes one sentence; returns the full payload when it completes a
    /// message.
    pub fn push(&mut self, s: Sentence) -> Option<(String, u8)> {
        if s.fragments == 1 {
            return Some((s.payload, s.fill_bits));
        }
        let key = s.message_id.unwrap_or(0);
        let slot = self
            .pending
            .entry(key)
            .or_insert_with(|| vec![None; s.fragments as usize]);
        if slot.len() != s.fragments as usize {
            // Conflicting fragment count: restart the slot.
            *slot = vec![None; s.fragments as usize];
        }
        let idx = (s.fragment_no - 1) as usize;
        slot[idx] = Some(s);
        if slot.iter().all(Option::is_some) {
            // lint: allow(no_unwrap) — `key` was materialised by the
            // `entry()` call above and nothing removes it in between.
            let parts = self.pending.remove(&key).expect("just inserted");
            let mut payload = String::new();
            let mut fill = 0;
            for p in parts.into_iter().flatten() {
                payload.push_str(&p.payload);
                fill = p.fill_bits;
            }
            return Some((payload, fill));
        }
        None
    }

    /// Number of messages awaiting fragments.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A classic known-good AIVDM type-1 sentence from the public AIS docs.
    const KNOWN: &str = "!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0*5C";

    #[test]
    fn parse_known_sentence() {
        let s = Sentence::parse(KNOWN).unwrap();
        assert_eq!(s.fragments, 1);
        assert_eq!(s.fragment_no, 1);
        assert_eq!(s.message_id, None);
        assert_eq!(s.channel, Some('B'));
        assert_eq!(s.payload, "177KQJ5000G?tO`K>RA1wUbN0TKH");
        assert_eq!(s.fill_bits, 0);
    }

    #[test]
    fn round_trip_format() {
        let s = Sentence::parse(KNOWN).unwrap();
        assert_eq!(s.to_line(), KNOWN);
        let re = Sentence::parse(&s.to_line()).unwrap();
        assert_eq!(re, s);
    }

    #[test]
    fn checksum_detects_corruption() {
        let corrupted = KNOWN.replace("177K", "177L");
        match Sentence::parse(&corrupted) {
            Err(NmeaError::Checksum(_, _)) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(Sentence::parse("AIVDM,1,1,,B,xyz,0*00").is_err()); // no '!'
        assert!(Sentence::parse("!AIVDM,1,1,,B,xyz").is_err()); // no checksum
        assert!(Sentence::parse("!GPGGA,1,1,,B,xyz,0*2A").is_err()); // wrong talker
                                                                     // fill bits out of range (recompute checksum so it passes that stage)
        let body = "AIVDM,1,1,,B,xyz,6";
        let line = format!("!{body}*{:02X}", checksum(body));
        assert!(Sentence::parse(&line).is_err());
    }

    #[test]
    fn wrap_single() {
        let ss = Sentence::wrap("SHORT", 2, 7);
        assert_eq!(ss.len(), 1);
        assert_eq!(ss[0].fragments, 1);
        assert_eq!(ss[0].message_id, None);
        assert_eq!(ss[0].fill_bits, 2);
    }

    #[test]
    fn wrap_and_assemble_multi() {
        let long_payload: String = std::iter::repeat('0').take(71).collect();
        let ss = Sentence::wrap(&long_payload, 2, 3);
        assert_eq!(ss.len(), 2);
        assert_eq!(ss[0].fragments, 2);
        assert_eq!(ss[0].fill_bits, 0, "only last fragment carries fill");
        assert_eq!(ss[1].fill_bits, 2);
        let mut asm = Assembler::new();
        assert_eq!(asm.push(ss[0].clone()), None);
        assert_eq!(asm.pending(), 1);
        let (payload, fill) = asm.push(ss[1].clone()).unwrap();
        assert_eq!(payload, long_payload);
        assert_eq!(fill, 2);
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn assemble_out_of_order() {
        let long_payload: String = std::iter::repeat('A').take(100).collect();
        let ss = Sentence::wrap(&long_payload, 4, 9);
        let mut asm = Assembler::new();
        assert_eq!(asm.push(ss[1].clone()), None);
        let (payload, fill) = asm.push(ss[0].clone()).unwrap();
        assert_eq!(payload, long_payload);
        assert_eq!(fill, 4);
    }

    #[test]
    fn interleaved_messages_by_id() {
        let a = Sentence::wrap(&"1".repeat(70), 0, 1);
        let b = Sentence::wrap(&"2".repeat(70), 0, 2);
        let mut asm = Assembler::new();
        assert_eq!(asm.push(a[0].clone()), None);
        assert_eq!(asm.push(b[0].clone()), None);
        assert_eq!(asm.pending(), 2);
        let (pa, _) = asm.push(a[1].clone()).unwrap();
        assert_eq!(pa, "1".repeat(70));
        let (pb, _) = asm.push(b[1].clone()).unwrap();
        assert_eq!(pb, "2".repeat(70));
    }
}
