//! The 6-bit layer of the AIVDM wire format.
//!
//! AIS payloads are bit strings transported as printable ASCII: each
//! character carries 6 bits ("payload armouring", values 0–63 mapped to the
//! ranges `0x30..=0x57` and `0x60..=0x77`). Text fields inside the payload
//! use a separate 6-bit ASCII alphabet (`@` = 0, `A`–`Z`, digits, space…).

use std::fmt;

/// Error for malformed 6-bit data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SixBitError {
    /// A payload character outside the armouring alphabet.
    BadArmorChar(char),
    /// A read past the end of the bit buffer.
    OutOfBits {
        /// Bits requested by the read.
        wanted: usize,
        /// Bits remaining in the buffer.
        available: usize,
    },
}

impl fmt::Display for SixBitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadArmorChar(c) => write!(f, "invalid AIS payload character {c:?}"),
            Self::OutOfBits { wanted, available } => {
                write!(
                    f,
                    "payload too short: wanted {wanted} bits, had {available}"
                )
            }
        }
    }
}

impl std::error::Error for SixBitError {}

/// Decodes one armoured payload character to its 6-bit value.
pub fn unarmor_char(c: char) -> Result<u8, SixBitError> {
    let v = c as u32;
    match v {
        0x30..=0x57 => Ok((v - 48) as u8),
        0x60..=0x77 => Ok((v - 56) as u8),
        _ => Err(SixBitError::BadArmorChar(c)),
    }
}

/// Encodes a 6-bit value (0–63) to its armoured payload character.
///
/// # Panics
/// When `v > 63`.
pub fn armor_char(v: u8) -> char {
    assert!(v < 64, "six-bit value out of range: {v}");
    if v < 40 {
        (v + 48) as char
    } else {
        (v + 56) as char
    }
}

/// A bit-level reader over an armoured payload.
pub struct BitReader {
    bits: Vec<bool>,
    pos: usize,
}

impl BitReader {
    /// Parses an armoured payload string, dropping `fill` trailing pad bits.
    pub fn from_payload(payload: &str, fill: u8) -> Result<BitReader, SixBitError> {
        let mut bits = Vec::with_capacity(payload.len() * 6);
        for c in payload.chars() {
            let v = unarmor_char(c)?;
            for i in (0..6).rev() {
                bits.push((v >> i) & 1 == 1);
            }
        }
        let keep = bits.len().saturating_sub(fill as usize);
        bits.truncate(keep);
        Ok(BitReader { bits, pos: 0 })
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Reads `n ≤ 64` bits as an unsigned big-endian integer.
    pub fn read_u64(&mut self, n: usize) -> Result<u64, SixBitError> {
        assert!(n <= 64);
        if self.remaining() < n {
            return Err(SixBitError::OutOfBits {
                wanted: n,
                available: self.remaining(),
            });
        }
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.bits[self.pos] as u64;
            self.pos += 1;
        }
        Ok(v)
    }

    /// Reads `n` bits as a two's-complement signed integer.
    pub fn read_i64(&mut self, n: usize) -> Result<i64, SixBitError> {
        let raw = self.read_u64(n)?;
        let sign_bit = 1u64 << (n - 1);
        Ok(if raw & sign_bit != 0 {
            (raw as i64) - (1i64 << n)
        } else {
            raw as i64
        })
    }

    /// Reads a 6-bit-ASCII text field of `chars` characters, trimming
    /// trailing `@` (the null of the AIS alphabet) and spaces.
    pub fn read_text(&mut self, chars: usize) -> Result<String, SixBitError> {
        let mut s = String::with_capacity(chars);
        for _ in 0..chars {
            let v = self.read_u64(6)? as u8;
            s.push(sixbit_ascii(v));
        }
        Ok(s.trim_end_matches(['@', ' ']).to_string())
    }

    /// Skips `n` bits.
    pub fn skip(&mut self, n: usize) -> Result<(), SixBitError> {
        if self.remaining() < n {
            return Err(SixBitError::OutOfBits {
                wanted: n,
                available: self.remaining(),
            });
        }
        self.pos += n;
        Ok(())
    }
}

/// A bit-level writer producing armoured payloads.
#[derive(Default)]
pub struct BitWriter {
    bits: Vec<bool>,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `n ≤ 64` bits of `v`, big-endian.
    pub fn write_u64(&mut self, v: u64, n: usize) {
        assert!(n <= 64);
        debug_assert!(n == 64 || v < (1u64 << n), "value {v} overflows {n} bits");
        for i in (0..n).rev() {
            self.bits.push((v >> i) & 1 == 1);
        }
    }

    /// Appends `n` bits of a signed value (two's complement).
    pub fn write_i64(&mut self, v: i64, n: usize) {
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        self.write_u64((v as u64) & mask, n);
    }

    /// Appends a text field of exactly `chars` 6-bit-ASCII characters,
    /// padding with `@`.
    pub fn write_text(&mut self, text: &str, chars: usize) {
        let mut written = 0;
        for c in text.chars().take(chars) {
            self.write_u64(ascii_sixbit(c) as u64, 6);
            written += 1;
        }
        for _ in written..chars {
            self.write_u64(0, 6); // '@' padding
        }
    }

    /// Bit length so far.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Produces `(payload, fill_bits)`: the armoured string plus how many
    /// pad bits the last character carries.
    pub fn into_payload(self) -> (String, u8) {
        let fill = (6 - self.bits.len() % 6) % 6;
        let mut payload = String::with_capacity(self.bits.len() / 6 + 1);
        let mut acc = 0u8;
        let mut nbits = 0;
        for b in self
            .bits
            .iter()
            .copied()
            .chain(std::iter::repeat_n(false, fill))
        {
            acc = (acc << 1) | b as u8;
            nbits += 1;
            if nbits == 6 {
                payload.push(armor_char(acc));
                acc = 0;
                nbits = 0;
            }
        }
        (payload, fill as u8)
    }
}

/// 6-bit value → AIS text character.
fn sixbit_ascii(v: u8) -> char {
    debug_assert!(v < 64);
    if v < 32 {
        (v + 64) as char // '@', 'A'..'Z', '[', '\', ']', '^', '_'
    } else {
        v as char // ' ', '!', …, '0'..'9', …, '?'
    }
}

/// AIS text character → 6-bit value (unknown characters map to '@').
fn ascii_sixbit(c: char) -> u8 {
    let v = c.to_ascii_uppercase() as u32;
    match v {
        64..=95 => (v - 64) as u8,
        32..=63 => v as u8,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armor_round_trip_all_values() {
        for v in 0..64u8 {
            let c = armor_char(v);
            assert_eq!(unarmor_char(c), Ok(v));
        }
    }

    #[test]
    fn unarmor_rejects_gaps() {
        // 0x58..0x5F is a hole in the armouring alphabet.
        for c in ['X', 'Y', 'Z', '[', '\\', ']', '^', '_', '\n', '!'] {
            assert!(unarmor_char(c).is_err(), "{c:?}");
        }
    }

    #[test]
    fn reader_writer_round_trip() {
        let mut w = BitWriter::new();
        w.write_u64(6, 6); // message type
        w.write_u64(0, 2);
        w.write_u64(211_339_980, 30);
        w.write_i64(-12_345, 28);
        w.write_text("HELLO 42", 10);
        let total = w.len();
        let (payload, fill) = w.into_payload();
        let mut r = BitReader::from_payload(&payload, fill).unwrap();
        assert_eq!(r.remaining(), total);
        assert_eq!(r.read_u64(6).unwrap(), 6);
        assert_eq!(r.read_u64(2).unwrap(), 0);
        assert_eq!(r.read_u64(30).unwrap(), 211_339_980);
        assert_eq!(r.read_i64(28).unwrap(), -12_345);
        assert_eq!(r.read_text(10).unwrap(), "HELLO 42");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn signed_extremes() {
        let mut w = BitWriter::new();
        w.write_i64(-1, 28);
        w.write_i64((1 << 27) - 1, 28);
        w.write_i64(-(1 << 27), 28);
        let (p, f) = w.into_payload();
        let mut r = BitReader::from_payload(&p, f).unwrap();
        assert_eq!(r.read_i64(28).unwrap(), -1);
        assert_eq!(r.read_i64(28).unwrap(), (1 << 27) - 1);
        assert_eq!(r.read_i64(28).unwrap(), -(1 << 27));
    }

    #[test]
    fn out_of_bits_error() {
        let mut r = BitReader::from_payload("0", 0).unwrap(); // 6 bits
        assert_eq!(r.read_u64(6).unwrap(), 0);
        assert!(matches!(
            r.read_u64(1),
            Err(SixBitError::OutOfBits {
                wanted: 1,
                available: 0
            })
        ));
    }

    #[test]
    fn fill_bits_truncated() {
        let mut w = BitWriter::new();
        w.write_u64(0b1010101, 7); // 7 bits -> 2 chars, 5 fill
        let (p, fill) = w.into_payload();
        assert_eq!(p.len(), 2);
        assert_eq!(fill, 5);
        let r = BitReader::from_payload(&p, fill).unwrap();
        assert_eq!(r.remaining(), 7);
    }

    #[test]
    fn text_alphabet_round_trip() {
        let mut w = BitWriter::new();
        w.write_text("ABC XYZ 0189?", 13);
        let (p, f) = w.into_payload();
        let mut r = BitReader::from_payload(&p, f).unwrap();
        assert_eq!(r.read_text(13).unwrap(), "ABC XYZ 0189?");
    }

    #[test]
    fn text_pads_and_trims() {
        let mut w = BitWriter::new();
        w.write_text("AB", 6);
        let (p, f) = w.into_payload();
        let mut r = BitReader::from_payload(&p, f).unwrap();
        assert_eq!(r.read_text(6).unwrap(), "AB");
    }

    #[test]
    fn skip_advances() {
        let mut w = BitWriter::new();
        w.write_u64(0xFF, 8);
        w.write_u64(0b101, 3);
        let (p, f) = w.into_payload();
        let mut r = BitReader::from_payload(&p, f).unwrap();
        r.skip(8).unwrap();
        assert_eq!(r.read_u64(3).unwrap(), 0b101);
        assert!(r.skip(10).is_err());
    }
}
