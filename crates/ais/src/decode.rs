//! AIVDM payload decoding for the message types the paper's pipeline
//! consumes: 1/2/3 (class-A position), 5 (class-A static & voyage),
//! 18 (class-B position) and 24 (class-B static).

use crate::sixbit::{BitReader, SixBitError};
use crate::types::{Mmsi, NavStatus, ShipTypeCode};
use pol_geo::LatLon;
use std::fmt;

/// Error for undecodable payloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Bit-level problem (bad armour character, truncated payload).
    Bits(SixBitError),
    /// A message type this decoder does not handle.
    UnsupportedType(u8),
    /// MMSI field was zero/out of range.
    BadMmsi(u32),
}

impl From<SixBitError> for DecodeError {
    fn from(e: SixBitError) -> Self {
        DecodeError::Bits(e)
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Bits(e) => write!(f, "payload bit error: {e}"),
            Self::UnsupportedType(t) => write!(f, "unsupported AIS message type {t}"),
            Self::BadMmsi(m) => write!(f, "invalid MMSI {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A decoded AIS message.
#[derive(Clone, Debug, PartialEq)]
pub enum AisMessage {
    /// Types 1–3: class-A position report.
    PositionA {
        /// Which of types 1/2/3 this was.
        msg_type: u8,
        /// Reporting vessel.
        mmsi: Mmsi,
        /// Navigational status field.
        nav_status: NavStatus,
        /// Speed over ground in knots; `None` = not available.
        sog_knots: Option<f64>,
        /// Position; `None` when the payload carries the "not available"
        /// marker (lon 181 / lat 91).
        pos: Option<LatLon>,
        /// Course over ground in degrees; `None` = not available.
        cog_deg: Option<f64>,
        /// True heading in degrees; `None` = not available.
        heading_deg: Option<f64>,
        /// UTC second of the fix (0–59; 60+ = unavailable markers).
        utc_second: u8,
    },
    /// Type 5: class-A static and voyage data.
    StaticVoyage {
        /// Reporting vessel.
        mmsi: Mmsi,
        /// IMO number; `None` when 0 on the wire.
        imo: Option<u32>,
        /// Radio callsign, `@`-padding stripped.
        callsign: String,
        /// Vessel name, `@`-padding stripped.
        name: String,
        /// Raw AIS ship-type code.
        ship_type: ShipTypeCode,
        /// Overall length derived from the bow+stern dimension fields, m.
        length_m: u32,
        /// Static draught in metres.
        draught_m: f64,
        /// Declared destination, `@`-padding stripped.
        destination: String,
    },
    /// Type 18: class-B position report.
    PositionB {
        /// Reporting vessel.
        mmsi: Mmsi,
        /// Speed over ground in knots; `None` = not available.
        sog_knots: Option<f64>,
        /// Position; `None` for the "not available" marker.
        pos: Option<LatLon>,
        /// Course over ground in degrees; `None` = not available.
        cog_deg: Option<f64>,
        /// True heading in degrees; `None` = not available.
        heading_deg: Option<f64>,
        /// UTC second of the fix (0–59; 60+ = unavailable markers).
        utc_second: u8,
    },
    /// Type 24 part A: class-B static (name).
    StaticPartA {
        /// Reporting vessel.
        mmsi: Mmsi,
        /// Vessel name, `@`-padding stripped.
        name: String,
    },
    /// Type 24 part B: class-B static (type & callsign).
    StaticPartB {
        /// Reporting vessel.
        mmsi: Mmsi,
        /// Raw AIS ship-type code.
        ship_type: ShipTypeCode,
        /// Radio callsign, `@`-padding stripped.
        callsign: String,
    },
}

impl AisMessage {
    /// The reporting vessel.
    pub fn mmsi(&self) -> Mmsi {
        match self {
            Self::PositionA { mmsi, .. }
            | Self::StaticVoyage { mmsi, .. }
            | Self::PositionB { mmsi, .. }
            | Self::StaticPartA { mmsi, .. }
            | Self::StaticPartB { mmsi, .. } => *mmsi,
        }
    }

    /// Whether this is a positional report (types 1–3, 18).
    pub fn is_positional(&self) -> bool {
        matches!(self, Self::PositionA { .. } | Self::PositionB { .. })
    }
}

fn decode_sog(raw: u64) -> Option<f64> {
    (raw != 1023).then(|| raw as f64 / 10.0)
}

fn decode_cog(raw: u64) -> Option<f64> {
    (raw != 3600).then(|| raw as f64 / 10.0)
}

fn decode_heading(raw: u64) -> Option<f64> {
    (raw != 511).then(|| raw as f64)
}

/// Decodes the 28+27-bit lon/lat pair (1/600 000 degree units); the
/// protocol's "not available" markers (181°E / 91°N) yield `None`.
fn decode_pos(lon_raw: i64, lat_raw: i64) -> Option<LatLon> {
    if lon_raw == 181 * 600_000 || lat_raw == 91 * 600_000 {
        return None;
    }
    LatLon::new(lat_raw as f64 / 600_000.0, lon_raw as f64 / 600_000.0)
}

fn read_mmsi(r: &mut BitReader) -> Result<Mmsi, DecodeError> {
    let raw = r.read_u64(30)? as u32;
    Mmsi::new(raw).ok_or(DecodeError::BadMmsi(raw))
}

/// Decodes an assembled armoured payload into a message.
pub fn decode_payload(payload: &str, fill_bits: u8) -> Result<AisMessage, DecodeError> {
    let mut r = BitReader::from_payload(payload, fill_bits)?;
    let msg_type = r.read_u64(6)? as u8;
    match msg_type {
        1..=3 => {
            r.skip(2)?; // repeat indicator
            let mmsi = read_mmsi(&mut r)?;
            let nav_status = NavStatus::from_raw(r.read_u64(4)? as u8);
            r.skip(8)?; // rate of turn
            let sog = decode_sog(r.read_u64(10)?);
            r.skip(1)?; // position accuracy
            let lon = r.read_i64(28)?;
            let lat = r.read_i64(27)?;
            let cog = decode_cog(r.read_u64(12)?);
            let hdg = decode_heading(r.read_u64(9)?);
            let utc_second = r.read_u64(6)? as u8;
            Ok(AisMessage::PositionA {
                msg_type,
                mmsi,
                nav_status,
                sog_knots: sog,
                pos: decode_pos(lon, lat),
                cog_deg: cog,
                heading_deg: hdg,
                utc_second,
            })
        }
        5 => {
            r.skip(2)?;
            let mmsi = read_mmsi(&mut r)?;
            r.skip(2)?; // AIS version
            let imo_raw = r.read_u64(30)? as u32;
            let callsign = r.read_text(7)?;
            let name = r.read_text(20)?;
            let ship_type = ShipTypeCode(r.read_u64(8)? as u8);
            let to_bow = r.read_u64(9)? as u32;
            let to_stern = r.read_u64(9)? as u32;
            r.skip(6 + 6)?; // to port / to starboard
            r.skip(4)?; // EPFD
            r.skip(20)?; // ETA month/day/hour/minute
            let draught = r.read_u64(8)? as f64 / 10.0;
            let destination = r.read_text(20)?;
            Ok(AisMessage::StaticVoyage {
                mmsi,
                imo: (imo_raw != 0).then_some(imo_raw),
                callsign,
                name,
                ship_type,
                length_m: to_bow + to_stern,
                draught_m: draught,
                destination,
            })
        }
        18 => {
            r.skip(2)?;
            let mmsi = read_mmsi(&mut r)?;
            r.skip(8)?; // regional reserved
            let sog = decode_sog(r.read_u64(10)?);
            r.skip(1)?;
            let lon = r.read_i64(28)?;
            let lat = r.read_i64(27)?;
            let cog = decode_cog(r.read_u64(12)?);
            let hdg = decode_heading(r.read_u64(9)?);
            let utc_second = r.read_u64(6)? as u8;
            Ok(AisMessage::PositionB {
                mmsi,
                sog_knots: sog,
                pos: decode_pos(lon, lat),
                cog_deg: cog,
                heading_deg: hdg,
                utc_second,
            })
        }
        24 => {
            r.skip(2)?;
            let mmsi = read_mmsi(&mut r)?;
            let part = r.read_u64(2)?;
            if part == 0 {
                let name = r.read_text(20)?;
                Ok(AisMessage::StaticPartA { mmsi, name })
            } else {
                let ship_type = ShipTypeCode(r.read_u64(8)? as u8);
                r.skip(42)?; // vendor id
                let callsign = r.read_text(7)?;
                Ok(AisMessage::StaticPartB {
                    mmsi,
                    ship_type,
                    callsign,
                })
            }
        }
        other => Err(DecodeError::UnsupportedType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmea::Sentence;

    /// Reference sentence from the public AIVDM protocol documentation.
    const KNOWN: &str = "!AIVDM,1,1,,B,177KQJ5000G?tO`K>RA1wUbN0TKH,0*5C";

    #[test]
    fn decode_documented_type1() {
        let s = Sentence::parse(KNOWN).unwrap();
        let m = decode_payload(&s.payload, s.fill_bits).unwrap();
        match m {
            AisMessage::PositionA {
                msg_type,
                mmsi,
                nav_status,
                sog_knots,
                pos,
                ..
            } => {
                assert_eq!(msg_type, 1);
                assert_eq!(mmsi, Mmsi(477_553_000));
                assert_eq!(nav_status, NavStatus::Moored);
                assert_eq!(sog_knots, Some(0.0));
                let p = pos.expect("position available");
                assert!((p.lat() - 47.582_833).abs() < 1e-4, "lat {}", p.lat());
                assert!((p.lon() - (-122.345_833)).abs() < 1e-3, "lon {}", p.lon());
            }
            other => panic!("expected PositionA, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_type_reported() {
        // Type 4 (base station) starts with payload char '4'.
        let mut w = crate::sixbit::BitWriter::new();
        w.write_u64(4, 6);
        for _ in 0..162 {
            w.write_u64(0, 1);
        }
        let (p, f) = w.into_payload();
        assert_eq!(decode_payload(&p, f), Err(DecodeError::UnsupportedType(4)));
    }

    #[test]
    fn truncated_payload_errors() {
        // Type 1 marker then nothing.
        let mut w = crate::sixbit::BitWriter::new();
        w.write_u64(1, 6);
        let (p, f) = w.into_payload();
        assert!(matches!(
            decode_payload(&p, f),
            Err(DecodeError::Bits(SixBitError::OutOfBits { .. }))
        ));
    }

    #[test]
    fn zero_mmsi_rejected() {
        let mut w = crate::sixbit::BitWriter::new();
        w.write_u64(1, 6);
        w.write_u64(0, 2);
        w.write_u64(0, 30); // MMSI 0
        for _ in 0..130 {
            w.write_u64(0, 1);
        }
        let (p, f) = w.into_payload();
        assert_eq!(decode_payload(&p, f), Err(DecodeError::BadMmsi(0)));
    }

    #[test]
    fn not_available_markers_decode_to_none() {
        let mut w = crate::sixbit::BitWriter::new();
        w.write_u64(1, 6);
        w.write_u64(0, 2);
        w.write_u64(123_456_789, 30);
        w.write_u64(15, 4); // status undefined
        w.write_i64(-128, 8); // ROT N/A
        w.write_u64(1023, 10); // SOG N/A
        w.write_u64(0, 1);
        w.write_i64(181 * 600_000, 28); // lon N/A
        w.write_i64(91 * 600_000, 27); // lat N/A
        w.write_u64(3600, 12); // COG N/A
        w.write_u64(511, 9); // HDG N/A
        w.write_u64(60, 6); // ts N/A
        w.write_u64(0, 2 + 3 + 1 + 19);
        let (p, f) = w.into_payload();
        match decode_payload(&p, f).unwrap() {
            AisMessage::PositionA {
                sog_knots,
                pos,
                cog_deg,
                heading_deg,
                ..
            } => {
                assert_eq!(sog_knots, None);
                assert_eq!(pos, None);
                assert_eq!(cog_deg, None);
                assert_eq!(heading_deg, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mmsi_accessor_covers_variants() {
        let a = AisMessage::StaticPartA {
            mmsi: Mmsi(7),
            name: "X".into(),
        };
        assert_eq!(a.mmsi(), Mmsi(7));
        assert!(!a.is_positional());
    }
}
