//! # pol-ais — the AIS protocol substrate
//!
//! The paper's pipeline (§3.1.1) consumes AIS positional reports (message
//! types 1–3 and 18) and static reports. This crate provides:
//!
//! * [`types`] — MMSI, navigational status, AIS ship-type codes and the
//!   market segments the inventory groups by,
//! * [`report`] — the decoded [`PositionReport`] / [`StaticReport`] records
//!   the rest of the workspace operates on,
//! * [`sixbit`] — the 6-bit payload armouring and bit-level readers/writers
//!   of the AIVDM wire format,
//! * [`nmea`] — NMEA 0183 sentence framing, checksums and multi-sentence
//!   assembly,
//! * [`decode`] / [`encode`] — payload codecs for message types 1/2/3
//!   (class-A position), 5 (class-A static & voyage), 18 (class-B position)
//!   and 24 (class-B static), round-trip tested,
//! * [`csvio`] — the bulk CSV representation used to persist simulated
//!   datasets (the stand-in for the paper's 600 GB archive format).
//!
//! Message types 19 (extended class-B) and the binary/application types are
//! out of scope: the paper's pipeline never consumes them.

#![deny(missing_docs)]

pub mod csvio;
pub mod decode;
pub mod encode;
pub mod nmea;
pub mod report;
pub mod sixbit;
pub mod types;

pub use decode::{decode_payload, AisMessage, DecodeError};
pub use nmea::{Assembler, Sentence};
pub use report::{PositionReport, StaticReport};
pub use types::{MarketSegment, Mmsi, NavStatus, ShipTypeCode};
