//! Decoded records — the rows of the paper's Table 1 datasets.

use crate::types::{MarketSegment, Mmsi, NavStatus, ShipTypeCode};
use pol_geo::LatLon;

/// A positional report: one row of the paper's 2.7-billion-record dataset.
///
/// Fields mirror the AIS position payload plus the receiver-assigned
/// timestamp (AIS itself transmits only a UTC-second counter; full
/// timestamps are stamped by the receiving network, as at MarineTraffic).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PositionReport {
    /// Vessel identity.
    pub mmsi: Mmsi,
    /// Receiver-assigned Unix timestamp, seconds.
    pub timestamp: i64,
    /// Reported position.
    pub pos: LatLon,
    /// Speed over ground, knots. AIS encodes 0–102.2 in 0.1 kn steps;
    /// `None` = "not available" (raw 1023).
    pub sog_knots: Option<f64>,
    /// Course over ground, degrees. `None` = not available (raw 3600).
    pub cog_deg: Option<f64>,
    /// True heading, degrees 0–359. `None` = not available (raw 511).
    pub heading_deg: Option<f64>,
    /// Navigational status.
    pub nav_status: NavStatus,
}

impl PositionReport {
    /// Whether the kinematic fields are within protocol ranges — the value
    /// check of the paper's cleaning step (§3.3.1). Positions are validated
    /// at construction of [`LatLon`].
    pub fn in_protocol_ranges(&self) -> bool {
        let sog_ok = self.sog_knots.is_none_or(|s| (0.0..=102.2).contains(&s));
        let cog_ok = self.cog_deg.is_none_or(|c| (0.0..360.0).contains(&c));
        let hdg_ok = self.heading_deg.is_none_or(|h| (0.0..360.0).contains(&h));
        sog_ok && cog_ok && hdg_ok
    }
}

/// A static (vessel-particulars) report — one row of the paper's
/// 60-thousand-vessel static inventory.
#[derive(Clone, Debug, PartialEq)]
pub struct StaticReport {
    /// Vessel identity.
    pub mmsi: Mmsi,
    /// IMO number (7 digits) when known.
    pub imo: Option<u32>,
    /// Vessel name (6-bit ASCII uppercase on the wire).
    pub name: String,
    /// Raw AIS ship-type code.
    pub ship_type: ShipTypeCode,
    /// Gross tonnage from the vessel database (not carried by AIS itself;
    /// the paper's commercial filter keeps > 5000 GRT).
    pub gross_tonnage: u32,
}

impl StaticReport {
    /// The market segment this vessel belongs to.
    pub fn segment(&self) -> MarketSegment {
        MarketSegment::from_ship_type(self.ship_type)
    }

    /// The paper's commercial-fleet filter: commercial segment, above
    /// 5000 GRT (class-A carriage is implied at that tonnage).
    pub fn is_commercial_fleet(&self) -> bool {
        self.segment().is_commercial() && self.gross_tonnage > 5000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PositionReport {
        PositionReport {
            mmsi: Mmsi(211_000_001),
            timestamp: 1_640_995_200,
            pos: LatLon::new(51.0, 1.5).unwrap(),
            sog_knots: Some(14.2),
            cog_deg: Some(123.0),
            heading_deg: Some(121.0),
            nav_status: NavStatus::UnderWayUsingEngine,
        }
    }

    #[test]
    fn protocol_ranges_accept_valid() {
        assert!(report().in_protocol_ranges());
        let mut r = report();
        r.sog_knots = None;
        r.cog_deg = None;
        r.heading_deg = None;
        assert!(r.in_protocol_ranges(), "not-available fields are valid");
    }

    #[test]
    fn protocol_ranges_reject_invalid() {
        let mut r = report();
        r.sog_knots = Some(150.0);
        assert!(!r.in_protocol_ranges());
        let mut r = report();
        r.cog_deg = Some(360.0);
        assert!(!r.in_protocol_ranges());
        let mut r = report();
        r.heading_deg = Some(-1.0);
        assert!(!r.in_protocol_ranges());
    }

    #[test]
    fn commercial_filter() {
        let mut s = StaticReport {
            mmsi: Mmsi(1),
            imo: Some(9_300_000),
            name: "EVER TEST".into(),
            ship_type: ShipTypeCode(71),
            gross_tonnage: 150_000,
        };
        assert_eq!(s.segment(), MarketSegment::Container);
        assert!(s.is_commercial_fleet());
        s.gross_tonnage = 4_000;
        assert!(!s.is_commercial_fleet(), "small vessels excluded");
        s.gross_tonnage = 150_000;
        s.ship_type = ShipTypeCode(30);
        assert!(!s.is_commercial_fleet(), "fishing excluded");
    }
}
