//! Bulk CSV persistence for decoded reports — the stand-in for the paper's
//! archived positional-report format (Table 1's 60 GB commercial dataset).
//!
//! One row per report:
//! `mmsi,timestamp,lat,lon,sog,cog,heading,status` with empty fields for
//! "not available". The reader is tolerant of malformed rows (returns them
//! as errors so the cleaning stage can count rejects, mirroring §3.3.1).

use crate::report::PositionReport;
use crate::types::{Mmsi, NavStatus};
use pol_geo::LatLon;
use std::io::{self, BufRead, Write};

/// Header line written by [`write_positions`].
pub const HEADER: &str = "mmsi,timestamp,lat,lon,sog,cog,heading,status";

/// Serializes one report as a CSV row (no newline).
pub fn position_to_row(r: &PositionReport) -> String {
    fn opt(v: Option<f64>) -> String {
        v.map(|x| format!("{x:.1}")).unwrap_or_default()
    }
    format!(
        "{},{},{:.6},{:.6},{},{},{},{}",
        r.mmsi.0,
        r.timestamp,
        r.pos.lat(),
        r.pos.lon(),
        opt(r.sog_knots),
        opt(r.cog_deg),
        opt(r.heading_deg),
        r.nav_status.raw()
    )
}

/// Error for a row that does not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowError {
    /// 1-based line number when known.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

/// Parses one CSV row into a report.
pub fn position_from_row(row: &str, line: usize) -> Result<PositionReport, RowError> {
    let err = |reason: &str| RowError {
        line,
        reason: reason.to_string(),
    };
    let fields: Vec<&str> = row.split(',').collect();
    let [f_mmsi, f_ts, f_lat, f_lon, f_sog, f_cog, f_heading, f_status] = fields[..] else {
        return Err(err("wrong field count"));
    };
    let mmsi = f_mmsi
        .parse::<u32>()
        .ok()
        .and_then(Mmsi::new)
        .ok_or_else(|| err("bad mmsi"))?;
    let timestamp = f_ts.parse::<i64>().map_err(|_| err("bad timestamp"))?;
    let lat = f_lat.parse::<f64>().map_err(|_| err("bad lat"))?;
    let lon = f_lon.parse::<f64>().map_err(|_| err("bad lon"))?;
    let pos = LatLon::new(lat, lon).ok_or_else(|| err("position out of range"))?;
    let opt = |s: &str, name: &str| -> Result<Option<f64>, RowError> {
        if s.is_empty() {
            Ok(None)
        } else {
            s.parse::<f64>().map(Some).map_err(|_| err(name))
        }
    };
    let sog_knots = opt(f_sog, "bad sog")?;
    let cog_deg = opt(f_cog, "bad cog")?;
    let heading_deg = opt(f_heading, "bad heading")?;
    let status_raw = f_status.parse::<u8>().map_err(|_| err("bad status"))?;
    if status_raw > 15 {
        return Err(err("status out of range"));
    }
    Ok(PositionReport {
        mmsi,
        timestamp,
        pos,
        sog_knots,
        cog_deg,
        heading_deg,
        nav_status: NavStatus::from_raw(status_raw),
    })
}

/// Writes a header plus all reports to `out` (buffer it for bulk writes).
pub fn write_positions<W: Write>(out: &mut W, reports: &[PositionReport]) -> io::Result<()> {
    writeln!(out, "{HEADER}")?;
    for r in reports {
        writeln!(out, "{}", position_to_row(r))?;
    }
    Ok(())
}

/// Reads reports from CSV, returning parsed rows and per-row errors
/// separately (the cleaning stage accounts for both).
pub fn read_positions<R: BufRead>(input: R) -> io::Result<(Vec<PositionReport>, Vec<RowError>)> {
    let mut reports = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (i == 0 && trimmed == HEADER) {
            continue;
        }
        match position_from_row(trimmed, i + 1) {
            Ok(r) => reports.push(r),
            Err(e) => errors.push(e),
        }
    }
    Ok((reports, errors))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PositionReport {
        PositionReport {
            mmsi: Mmsi(211_000_001),
            timestamp: 1_640_995_200,
            pos: LatLon::new(51.000001, 1.500002).unwrap(),
            sog_knots: Some(14.2),
            cog_deg: None,
            heading_deg: Some(121.0),
            nav_status: NavStatus::UnderWayUsingEngine,
        }
    }

    #[test]
    fn row_round_trip() {
        let r = sample();
        let row = position_to_row(&r);
        let back = position_from_row(&row, 1).unwrap();
        assert_eq!(back.mmsi, r.mmsi);
        assert_eq!(back.timestamp, r.timestamp);
        assert!((back.pos.lat() - r.pos.lat()).abs() < 1e-6);
        assert_eq!(back.sog_knots, Some(14.2));
        assert_eq!(back.cog_deg, None);
        assert_eq!(back.nav_status, r.nav_status);
    }

    #[test]
    fn bulk_round_trip() {
        let reports = vec![sample(), {
            let mut r = sample();
            r.mmsi = Mmsi(9);
            r.sog_knots = None;
            r
        }];
        let mut buf = Vec::new();
        write_positions(&mut buf, &reports).unwrap();
        let (back, errs) = read_positions(&buf[..]).unwrap();
        assert!(errs.is_empty());
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].mmsi, Mmsi(9));
        assert_eq!(back[1].sog_knots, None);
    }

    #[test]
    fn bad_rows_reported_not_fatal() {
        let data = format!(
            "{HEADER}\n\
             garbage line\n\
             {}\n\
             0,123,51.0,1.0,,,,,0\n\
             123,123,99.0,1.0,,,,0\n",
            position_to_row(&sample())
        );
        let (ok, errs) = read_positions(data.as_bytes()).unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(errs.len(), 3);
        assert_eq!(errs[0].line, 2);
        assert!(errs[2].reason.contains("position out of range"));
    }

    #[test]
    fn skips_blank_lines_and_header() {
        let data = format!("{HEADER}\n\n{}\n\n", position_to_row(&sample()));
        let (ok, errs) = read_positions(data.as_bytes()).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(errs.is_empty());
    }
}
