//! Property tests for the bulk CSV codec: round-trips and rejection.

use pol_ais::csvio::{position_from_row, position_to_row, read_positions, write_positions};
use pol_ais::types::{Mmsi, NavStatus};
use pol_ais::PositionReport;
use pol_geo::LatLon;
use proptest::prelude::*;

fn arb_report() -> impl Strategy<Value = PositionReport> {
    (
        1u32..999_999_999,
        -2_000_000_000i64..2_000_000_000,
        -89.999f64..89.999,
        -179.999f64..179.999,
        prop::option::of(0.0f64..102.2),
        prop::option::of(0.0f64..359.9),
        prop::option::of(0.0f64..359.9),
        0u8..16,
    )
        .prop_map(|(m, t, lat, lon, sog, cog, hdg, st)| PositionReport {
            mmsi: Mmsi(m),
            timestamp: t,
            pos: LatLon::new(lat, lon).unwrap(),
            sog_knots: sog,
            cog_deg: cog,
            heading_deg: hdg,
            nav_status: NavStatus::from_raw(st),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn row_round_trip(r in arb_report()) {
        let row = position_to_row(&r);
        let back = position_from_row(&row, 1).expect("own rows parse");
        prop_assert_eq!(back.mmsi, r.mmsi);
        prop_assert_eq!(back.timestamp, r.timestamp);
        // Positions serialise at 1e-6 degrees; kinematics at 0.1 units.
        prop_assert!((back.pos.lat() - r.pos.lat()).abs() <= 5e-7 + 1e-12);
        prop_assert!((back.pos.lon() - r.pos.lon()).abs() <= 5e-7 + 1e-12);
        match (back.sog_knots, r.sog_knots) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() <= 0.05 + 1e-9),
            (None, None) => {}
            other => prop_assert!(false, "{other:?}"),
        }
        prop_assert_eq!(back.nav_status, r.nav_status);
    }

    #[test]
    fn bulk_round_trip(reports in prop::collection::vec(arb_report(), 0..60)) {
        let mut buf = Vec::new();
        write_positions(&mut buf, &reports).unwrap();
        let (back, errors) = read_positions(&buf[..]).unwrap();
        prop_assert!(errors.is_empty(), "{errors:?}");
        prop_assert_eq!(back.len(), reports.len());
        for (b, r) in back.iter().zip(&reports) {
            prop_assert_eq!(b.mmsi, r.mmsi);
            prop_assert_eq!(b.timestamp, r.timestamp);
        }
    }

    #[test]
    fn corrupted_fields_never_panic(r in arb_report(), field in 0usize..8, garbage in "[a-z!@#]{1,8}") {
        let row = position_to_row(&r);
        let mut fields: Vec<&str> = row.split(',').collect();
        fields[field] = &garbage;
        let mangled = fields.join(",");
        // Must either parse (if the field was optional/emptyable) or fail
        // cleanly — never panic.
        let _ = position_from_row(&mangled, 3);
    }

    #[test]
    fn truncated_rows_rejected(r in arb_report(), cut in 1usize..20) {
        let row = position_to_row(&r);
        let cut = cut.min(row.len() - 1);
        let truncated = &row[..row.len() - cut];
        // Removing trailing characters may still leave a valid shorter
        // number; only the field-count failure is guaranteed when a comma
        // was cut.
        if truncated.matches(',').count() != 7 {
            prop_assert!(position_from_row(truncated, 1).is_err());
        }
    }
}
