//! Property test: any valid position report survives the *full* wire path
//! (encode → NMEA wrap → line format → parse → assemble → decode) within
//! protocol quantisation.

use pol_ais::decode::{decode_payload, AisMessage};
use pol_ais::encode::{encode_position_a, encode_position_b};
use pol_ais::nmea::{Assembler, Sentence};
use pol_ais::report::PositionReport;
use pol_ais::types::{Mmsi, NavStatus};
use pol_geo::LatLon;
use proptest::prelude::*;

fn arb_report() -> impl Strategy<Value = PositionReport> {
    (
        1u32..999_999_999,
        0i64..2_000_000_000,
        -89.99f64..89.99,
        -179.99f64..179.99,
        prop::option::of(0.0f64..102.2),
        prop::option::of(0.0f64..359.94),
        prop::option::of(0.0f64..359.49),
        0u8..15,
    )
        .prop_map(|(mmsi, ts, lat, lon, sog, cog, hdg, st)| PositionReport {
            mmsi: Mmsi(mmsi),
            timestamp: ts,
            pos: LatLon::new(lat, lon).unwrap(),
            sog_knots: sog,
            cog_deg: cog,
            heading_deg: hdg,
            nav_status: NavStatus::from_raw(st),
        })
}

fn through_wire(payload: String, fill: u8) -> AisMessage {
    let sentences = Sentence::wrap(&payload, fill, 5);
    let mut asm = Assembler::new();
    let mut result = None;
    for s in sentences {
        let line = s.to_line();
        let parsed = Sentence::parse(&line).expect("self-produced line parses");
        result = asm.push(parsed);
    }
    let (p, f) = result.expect("message completes");
    decode_payload(&p, f).expect("self-produced payload decodes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn class_a_full_wire_round_trip(r in arb_report()) {
        let (payload, fill) = encode_position_a(&r);
        match through_wire(payload, fill) {
            AisMessage::PositionA { mmsi, nav_status, sog_knots, pos, cog_deg, heading_deg, utc_second, .. } => {
                prop_assert_eq!(mmsi, r.mmsi);
                prop_assert_eq!(nav_status, r.nav_status);
                match (sog_knots, r.sog_knots) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() <= 0.05 + 1e-9),
                    (None, None) => {}
                    other => prop_assert!(false, "sog mismatch {other:?}"),
                }
                let p = pos.expect("valid position encodes as available");
                prop_assert!((p.lat() - r.pos.lat()).abs() < 1.0 / 600_000.0 + 1e-9);
                prop_assert!((p.lon() - r.pos.lon()).abs() < 1.0 / 600_000.0 + 1e-9);
                match (cog_deg, r.cog_deg) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() <= 0.05 + 1e-9),
                    (None, None) => {}
                    other => prop_assert!(false, "cog mismatch {other:?}"),
                }
                match (heading_deg, r.heading_deg) {
                    (Some(a), Some(b)) => prop_assert!((a - b).abs() <= 0.5 + 1e-9),
                    (None, None) => {}
                    other => prop_assert!(false, "heading mismatch {other:?}"),
                }
                prop_assert_eq!(utc_second as i64, r.timestamp.rem_euclid(60));
            }
            other => prop_assert!(false, "wrong variant {other:?}"),
        }
    }

    #[test]
    fn class_b_full_wire_round_trip(r in arb_report()) {
        let (payload, fill) = encode_position_b(&r);
        match through_wire(payload, fill) {
            AisMessage::PositionB { mmsi, pos, .. } => {
                prop_assert_eq!(mmsi, r.mmsi);
                let p = pos.expect("valid position encodes as available");
                prop_assert!((p.lat() - r.pos.lat()).abs() < 1.0 / 600_000.0 + 1e-9);
            }
            other => prop_assert!(false, "wrong variant {other:?}"),
        }
    }

    #[test]
    fn corrupting_any_payload_char_is_detected_or_changes_message(
        r in arb_report(),
        pos in 0usize..28,
        bump in 1u8..63,
    ) {
        // Flip one payload character; the NMEA checksum must catch it.
        let (payload, fill) = encode_position_a(&r);
        let line = Sentence::wrap(&payload, fill, 0)[0].to_line();
        let bytes = line.clone().into_bytes();
        // Payload starts after "!AIVDM,1,1,,A," = 14 chars.
        let idx = 14 + pos.min(payload.len() - 1);
        let mut corrupted = bytes.clone();
        let orig = corrupted[idx];
        let alphabet: Vec<u8> = (48u8..=87).chain(96..=119).collect();
        let new = alphabet[(alphabet.iter().position(|&c| c == orig).unwrap_or(0) + bump as usize) % alphabet.len()];
        prop_assume!(new != orig);
        corrupted[idx] = new;
        let corrupted = String::from_utf8(corrupted).unwrap();
        prop_assert!(Sentence::parse(&corrupted).is_err(), "checksum must catch single-char corruption");
    }
}
