//! Engine stress and ordering guarantees under larger loads.

use pol_engine::{Dataset, Engine};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn large_shuffle_preserves_every_record() {
    let engine = Engine::new(4);
    let n = 500_000usize;
    let data: Vec<(u32, u64)> = (0..n).map(|i| ((i % 9973) as u32, i as u64)).collect();
    let out = Dataset::from_vec(data, 16)
        .into_keyed()
        .partition_by_key(&engine, "big-shuffle", 11)
        .unwrap()
        .into_inner()
        .collect();
    assert_eq!(out.len(), n);
    let sum: u64 = out.iter().map(|(_, v)| *v).sum();
    assert_eq!(sum, (n as u64 - 1) * n as u64 / 2);
}

#[test]
fn aggregate_many_keys() {
    let engine = Engine::new(4);
    let n = 300_000usize;
    let keys = 50_000u32;
    let data: Vec<(u32, u64)> = (0..n)
        .map(|i| (((i as u32).wrapping_mul(2_654_435_761)) % keys, 1))
        .collect();
    let out = Dataset::from_vec(data, 8)
        .into_keyed()
        .reduce_by_key(&engine, "many-keys", |a, b| *a += b)
        .unwrap()
        .collect();
    assert!(out.len() <= keys as usize);
    let total: u64 = out.iter().map(|(_, v)| *v).sum();
    assert_eq!(total, n as u64);
}

#[test]
fn map_partitions_called_once_per_partition() {
    let engine = Engine::new(3);
    let calls = Arc::new(AtomicUsize::new(0));
    let c = calls.clone();
    let d = Dataset::from_vec((0..100).collect::<Vec<i32>>(), 7);
    let out = d
        .map_partitions(&engine, "count-calls", move |p| {
            c.fetch_add(1, Ordering::SeqCst);
            p
        })
        .unwrap();
    assert_eq!(out.count(), 100);
    assert_eq!(calls.load(Ordering::SeqCst), 7);
}

#[test]
fn deeply_chained_stages() {
    let engine = Engine::new(2);
    let mut d = Dataset::from_vec((0..10_000i64).collect::<Vec<_>>(), 4);
    for i in 0..20 {
        d = d.map(&engine, &format!("chain-{i}"), |x| x + 1).unwrap();
    }
    let out = d.collect();
    assert_eq!(out[0], 20);
    assert_eq!(out.len(), 10_000);
    assert!(engine.metrics().report().len() >= 20);
}

#[test]
fn empty_dataset_through_all_operations() {
    let engine = Engine::new(2);
    let d: Dataset<(u32, u32)> = Dataset::from_vec(Vec::new(), 4);
    let out = d
        .filter(&engine, "f", |_| true)
        .unwrap()
        .into_keyed()
        .aggregate_by_key(&engine, "agg", || 0u32, |a, v| *a += v, |a, b| *a += b)
        .unwrap()
        .collect();
    assert!(out.is_empty());
}

#[test]
fn join_with_skewed_keys() {
    let engine = Engine::new(3);
    // One hot key with 1000 left rows and 3 right rows -> 3000 pairs.
    let mut left: Vec<(u8, u32)> = (0..1000).map(|i| (7u8, i)).collect();
    left.push((1, 1));
    let right: Vec<(u8, &str)> = vec![(7, "a"), (7, "b"), (7, "c"), (2, "z")];
    let out = Dataset::from_vec(left, 5)
        .into_keyed()
        .join(
            &engine,
            "skew-join",
            Dataset::from_vec(right, 2).into_keyed(),
        )
        .unwrap()
        .collect();
    assert_eq!(out.len(), 3000);
    assert!(out.iter().all(|(k, _)| *k == 7));
}

#[test]
fn metrics_totals_are_consistent() {
    let engine = Engine::new(2);
    let d = Dataset::from_vec((0..1000u32).collect::<Vec<_>>(), 4);
    let _ = d
        .filter(&engine, "even", |x| x % 2 == 0)
        .unwrap()
        .map(&engine, "halve", |x| x / 2)
        .unwrap()
        .collect();
    let stages = engine.metrics().report();
    let even = stages.iter().find(|s| s.name == "even").unwrap();
    let halve = stages.iter().find(|s| s.name == "halve").unwrap();
    assert_eq!(even.input_records, 1000);
    assert_eq!(even.output_records, 500);
    assert_eq!(halve.input_records, 500);
    assert_eq!(halve.output_records, 500);
    assert!(engine.metrics().total_wall() > std::time::Duration::ZERO);
}
