//! The engine's core correctness property: keyed aggregation is invariant
//! to partition count and thread count, and equals a sequential fold.

use pol_engine::{Dataset, Engine};
use pol_sketch::{MergeSketch, Welford};
use proptest::prelude::*;
use std::collections::HashMap;

fn sequential_fold(data: &[(u8, f64)]) -> HashMap<u8, Welford> {
    let mut out: HashMap<u8, Welford> = HashMap::new();
    for (k, v) in data {
        out.entry(*k).or_insert_with(Welford::new).add(*v);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn aggregate_invariant_to_partitions_and_threads(
        data in prop::collection::vec((0u8..12, -1e3f64..1e3), 0..800),
        partitions in 1usize..16,
        threads in 1usize..8,
    ) {
        let expect = sequential_fold(&data);
        let engine = Engine::new(threads);
        let got: HashMap<u8, Welford> = Dataset::from_vec(data, partitions)
            .into_keyed()
            .aggregate_by_key(
                &engine,
                "welford",
                Welford::new,
                |acc, v| acc.add(v),
                |acc, o| acc.merge(&o),
            )
            .unwrap()
            .collect()
            .into_iter()
            .collect();
        prop_assert_eq!(got.len(), expect.len());
        for (k, w) in &expect {
            let g = got.get(k).expect("key present");
            prop_assert_eq!(g.count(), w.count());
            match (g.mean(), w.mean()) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6),
                (None, None) => {}
                other => prop_assert!(false, "{other:?}"),
            }
        }
    }

    #[test]
    fn narrow_chain_preserves_multiset(
        data in prop::collection::vec(0i64..1000, 0..500),
        partitions in 1usize..10,
    ) {
        let engine = Engine::new(4);
        let mut expect: Vec<i64> = data.iter().map(|x| x * 3 + 1).filter(|x| x % 2 == 1).collect();
        let mut got = Dataset::from_vec(data, partitions)
            .map(&engine, "affine", |x| x * 3 + 1)
            .unwrap()
            .filter(&engine, "odd", |x| x % 2 == 1)
            .unwrap()
            .collect();
        expect.sort();
        got.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn shuffle_is_permutation(
        data in prop::collection::vec((0u16..50, 0u32..10_000), 0..500),
        partitions in 1usize..8,
        out_partitions in 1usize..8,
    ) {
        let engine = Engine::new(3);
        let mut expect = data.clone();
        let mut got = Dataset::from_vec(data, partitions)
            .into_keyed()
            .partition_by_key(&engine, "shuffle", out_partitions)
            .unwrap()
            .into_inner()
            .collect();
        expect.sort();
        got.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn reduce_by_key_matches_hashmap(
        data in prop::collection::vec((0u8..20, 1u64..100), 0..400),
    ) {
        let engine = Engine::new(2);
        let mut expect: HashMap<u8, u64> = HashMap::new();
        for (k, v) in &data {
            *expect.entry(*k).or_insert(0) += *v;
        }
        let got: HashMap<u8, u64> = Dataset::from_vec(data, 5)
            .into_keyed()
            .reduce_by_key(&engine, "sum", |a, b| *a += b)
            .unwrap()
            .collect()
            .into_iter()
            .collect();
        prop_assert_eq!(got, expect);
    }
}
