//! Wide (shuffle) transformations over keyed datasets.
//!
//! This is the reduce side of the paper's methodology: grouping-set keys
//! (Table 2) are hashed to reduce partitions, and per-key statistics are
//! combined map-side first (`aggregate_by_key`'s `seq` operator) then
//! merged across partitions (`comb` operator) — Spark's `aggregateByKey`
//! contract, which is exactly what makes `pol-sketch`'s mergeable
//! statistics partition-invariant.
//!
//! Like the narrow transformations, every shuffle returns `Result`: a
//! panic inside a user-supplied operator is reported as an
//! [`EngineError`] instead of aborting the process.

use crate::dataset::Dataset;
use crate::error::EngineError;
use crate::metrics::StageReport;
use crate::Engine;
use pol_sketch::hash::{hash64, FxHashMap};
use std::hash::Hash;
use std::sync::Arc;
use std::time::Instant;

/// A dataset of `(K, V)` pairs supporting shuffles and keyed aggregation.
pub struct KeyedDataset<K, V> {
    inner: Dataset<(K, V)>,
}

impl<K, V> KeyedDataset<K, V>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Send + 'static,
{
    /// Wraps a pair dataset.
    pub fn from_dataset(inner: Dataset<(K, V)>) -> Self {
        KeyedDataset { inner }
    }

    /// The underlying pair dataset.
    pub fn into_inner(self) -> Dataset<(K, V)> {
        self.inner
    }

    /// Total record count.
    pub fn count(&self) -> usize {
        self.inner.count()
    }

    /// Hash-partitions records so all pairs of one key land in the same
    /// partition (the shuffle). Deterministic: uses the workspace's FxHash.
    pub fn partition_by_key(
        self,
        engine: &Engine,
        stage: &str,
        num_partitions: usize,
    ) -> Result<Self, EngineError> {
        let num = num_partitions.max(1);
        let started = Instant::now();
        let input_records = self.inner.count() as u64;
        // Map side: split every input partition into `num` buckets.
        let bucketed: Vec<Vec<Vec<(K, V)>>> =
            engine.run_tasks(stage, self.inner.into_partitions(), move |_, part| {
                let mut buckets: Vec<Vec<(K, V)>> = (0..num).map(|_| Vec::new()).collect();
                for (k, v) in part {
                    let b = (hash64(&k) % num as u64) as usize;
                    buckets[b].push((k, v));
                }
                buckets
            })?;
        // Reduce side: transpose-concatenate bucket b of every map output.
        let mut out: Vec<Vec<(K, V)>> = (0..num).map(|_| Vec::new()).collect();
        for map_out in bucketed {
            for (b, bucket) in map_out.into_iter().enumerate() {
                out[b].extend(bucket);
            }
        }
        let result = Dataset::from_partitions(out);
        engine.metrics().record(StageReport {
            name: stage.to_string(),
            input_records,
            output_records: result.count() as u64,
            shuffled_records: input_records,
            wall: started.elapsed(),
        });
        Ok(KeyedDataset { inner: result })
    }

    /// Spark's `aggregateByKey`: builds a per-key accumulator with `seq`
    /// map-side (one pass per input partition, combiner style), shuffles the
    /// combiners, then merges them with `comb`.
    ///
    /// Correctness requires `comb` to be commutative and associative, and
    /// `seq`/`comb` to agree (folding values then combining must equal
    /// folding all values into one accumulator) — the [`pol_sketch`]
    /// statistics satisfy this by construction.
    pub fn aggregate_by_key<A, Z, S, C>(
        self,
        engine: &Engine,
        stage: &str,
        zero: Z,
        seq: S,
        comb: C,
    ) -> Result<Dataset<(K, A)>, EngineError>
    where
        A: Send + 'static,
        Z: Fn() -> A + Send + Sync + 'static,
        S: Fn(&mut A, V) + Send + Sync + 'static,
        C: Fn(&mut A, A) + Send + Sync + 'static,
    {
        let started = Instant::now();
        let input_records = self.inner.count() as u64;
        let num = engine.default_partitions();
        let zero = Arc::new(zero);
        let seq = Arc::new(seq);

        // Map side: per-partition combiners, radix-partitioned into `num`
        // shards *inside the worker* so the driver never touches
        // individual entries — it only moves shard pointers.
        let z1 = zero.clone();
        let s1 = seq.clone();
        let sharded: Vec<Vec<Vec<(K, A)>>> =
            engine.run_tasks(stage, self.inner.into_partitions(), move |_, part| {
                let mut acc: FxHashMap<K, A> = FxHashMap::default();
                for (k, v) in part {
                    s1(acc.entry(k).or_insert_with(|| z1()), v);
                }
                radix_partition(acc, num)
            })?;
        let shuffled: u64 = sharded
            .iter()
            .flat_map(|w| w.iter())
            .map(|s| s.len() as u64)
            .sum();

        // Reduce side: one parallel merge task per shard.
        let result = merge_combiner_shards(engine, stage, sharded, comb)?;
        engine.metrics().record(StageReport {
            name: stage.to_string(),
            input_records,
            output_records: result.count() as u64,
            shuffled_records: shuffled,
            wall: started.elapsed(),
        });
        Ok(result)
    }

    /// `reduceByKey`: aggregation where the accumulator is the value type.
    pub fn reduce_by_key<F>(
        self,
        engine: &Engine,
        stage: &str,
        f: F,
    ) -> Result<Dataset<(K, V)>, EngineError>
    where
        V: Clone,
        F: Fn(&mut V, V) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let f2 = f.clone();
        self.aggregate_by_key(
            engine,
            stage,
            || None::<V>,
            move |acc, v| match acc {
                Some(a) => f(a, v),
                None => *acc = Some(v),
            },
            move |acc, other| match (acc.as_mut(), other) {
                (Some(a), Some(o)) => f2(a, o),
                (None, o) => *acc = o,
                (_, None) => {}
            },
        )?
        // An accumulator exists only for keys that saw a value, so `None`
        // is unreachable and the flatten drops nothing.
        .flat_map(engine, &format!("{stage}:unwrap"), |(k, v)| {
            v.map(|v| (k, v))
        })
    }

    /// `groupByKey`: collects all values per key (use `aggregate_by_key`
    /// when a bounded accumulator exists — same advice as Spark's docs).
    pub fn group_by_key(
        self,
        engine: &Engine,
        stage: &str,
    ) -> Result<Dataset<(K, Vec<V>)>, EngineError> {
        self.aggregate_by_key(
            engine,
            stage,
            Vec::new,
            |acc, v| acc.push(v),
            |acc, mut other| acc.append(&mut other),
        )
    }

    /// Number of distinct keys.
    pub fn count_keys(self, engine: &Engine, stage: &str) -> Result<usize, EngineError> {
        Ok(self
            .aggregate_by_key(engine, stage, || (), |_, _| (), |_, _| ())?
            .count())
    }

    /// Inner join on key with `other` (both sides shuffled to the same
    /// partitioning).
    pub fn join<W>(
        self,
        engine: &Engine,
        stage: &str,
        other: KeyedDataset<K, W>,
    ) -> Result<Dataset<(K, (V, W))>, EngineError>
    where
        V: Clone,
        W: Clone + Send + 'static,
    {
        let started = Instant::now();
        let input_records = (self.count() + other.count()) as u64;
        let num = engine.default_partitions();
        let left = self
            .partition_by_key(engine, &format!("{stage}:shuffle-left"), num)?
            .inner
            .into_partitions();
        let right = other
            .partition_by_key(engine, &format!("{stage}:shuffle-right"), num)?
            .inner
            .into_partitions();
        let zipped: Vec<(Vec<(K, V)>, Vec<(K, W)>)> = left.into_iter().zip(right).collect();
        let joined: Vec<Vec<(K, (V, W))>> = engine.run_tasks(stage, zipped, |_, (l, r)| {
            let mut by_key: FxHashMap<K, Vec<W>> = FxHashMap::default();
            for (k, w) in r {
                by_key.entry(k).or_default().push(w);
            }
            // How many left records still need each key: the last use
            // consumes the right-side values instead of cloning them,
            // and the final pair of every record moves `k`/`v` outright
            // (a 1:1 join therefore clones nothing in this loop).
            let mut remaining: FxHashMap<K, usize> = FxHashMap::default();
            for (k, _) in &l {
                if let Some(n) = remaining.get_mut(k) {
                    *n += 1;
                } else if by_key.contains_key(k) {
                    remaining.insert(k.clone(), 1);
                }
            }
            let mut out = Vec::new();
            for (k, v) in l {
                let Some(n) = remaining.get_mut(&k) else {
                    continue; // no match on the right
                };
                *n -= 1;
                if *n == 0 {
                    let mut ws = by_key.remove(&k).unwrap_or_default();
                    if let Some(w_last) = ws.pop() {
                        for w in ws {
                            out.push((k.clone(), (v.clone(), w)));
                        }
                        out.push((k, (v, w_last)));
                    }
                } else if let Some(ws) = by_key.get(&k) {
                    if let Some((w_last, init)) = ws.split_last() {
                        for w in init {
                            out.push((k.clone(), (v.clone(), w.clone())));
                        }
                        out.push((k, (v, w_last.clone())));
                    }
                }
            }
            out
        })?;
        let result = Dataset::from_partitions(joined);
        engine.metrics().record(StageReport {
            name: stage.to_string(),
            input_records,
            output_records: result.count() as u64,
            shuffled_records: input_records,
            wall: started.elapsed(),
        });
        Ok(result)
    }
}

/// Radix-partitions a combiner map into `shards` buckets by key hash —
/// the map side of the two-phase parallel merge. Entries keep the map's
/// iteration order within each bucket, which keeps downstream merges
/// deterministic for a deterministic input partitioning.
///
/// Two passes: a counting pass sizes every bucket exactly, so the scatter
/// pass never reallocates (the classic radix-sort layout; with 32 shards a
/// growth-doubling scatter was a measurable share of build-phase
/// allocations).
pub fn radix_partition<K, A>(acc: FxHashMap<K, A>, shards: usize) -> Vec<Vec<(K, A)>>
where
    K: Eq + Hash,
{
    let shards = shards.max(1);
    let mut counts = vec![0usize; shards];
    for k in acc.keys() {
        counts[(hash64(k) % shards as u64) as usize] += 1;
    }
    let mut out: Vec<Vec<(K, A)>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for (k, a) in acc {
        let b = (hash64(&k) % shards as u64) as usize;
        out[b].push((k, a));
    }
    out
}

/// Merges radix-partitioned combiner shards in parallel — the reduce side
/// of the two-phase aggregation. `sharded[w][s]` is worker `w`'s shard
/// `s`; shard `s` of every worker goes to one merge task, so the merge
/// scales with cores instead of serializing on the driver.
///
/// Per key, combiners merge in worker-index order — exactly the order a
/// sequential driver-side scatter would have produced — so the result is
/// bit-identical to the pre-radix implementation (and thread-count
/// invariant whenever the map-side partitioning is data-determined).
///
/// Records a `{stage}:radix-merge` [`StageReport`] so the parallel merge
/// is visible in [`crate::JobMetrics`] stage timings.
pub fn merge_combiner_shards<K, A, C>(
    engine: &Engine,
    stage: &str,
    sharded: Vec<Vec<Vec<(K, A)>>>,
    comb: C,
) -> Result<Dataset<(K, A)>, EngineError>
where
    K: Eq + Hash + Send + 'static,
    A: Send + 'static,
    C: Fn(&mut A, A) + Send + Sync + 'static,
{
    let started = Instant::now();
    let shards = sharded.iter().map(Vec::len).max().unwrap_or(0);
    let input_records: u64 = sharded
        .iter()
        .flat_map(|w| w.iter())
        .map(|s| s.len() as u64)
        .sum();
    // Transpose: gather shard `s` of every worker, in worker order.
    // Pointer moves only — the driver never touches individual entries.
    let mut transposed: Vec<Vec<Vec<(K, A)>>> = (0..shards).map(|_| Vec::new()).collect();
    for worker in sharded {
        for (s, shard) in worker.into_iter().enumerate() {
            transposed[s].push(shard);
        }
    }
    // Errors keep the caller's stage name; only the metrics row carries
    // the `:radix-merge` suffix.
    let merge_stage = format!("{stage}:radix-merge");
    let reduced: Vec<Vec<(K, A)>> = engine.run_tasks(stage, transposed, move |_, buckets| {
        let mut acc: FxHashMap<K, A> = FxHashMap::default();
        for bucket in buckets {
            for (k, a) in bucket {
                match acc.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        comb(e.get_mut(), a);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(a);
                    }
                }
            }
        }
        acc.into_iter().collect()
    })?;
    let result = Dataset::from_partitions(reduced);
    engine.metrics().record(StageReport {
        name: merge_stage,
        input_records,
        output_records: result.count() as u64,
        shuffled_records: input_records,
        wall: started.elapsed(),
    });
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words() -> Vec<(&'static str, u64)> {
        let text = "the quick brown fox jumps over the lazy dog the fox";
        text.split(' ').map(|w| (w, 1u64)).collect()
    }

    #[test]
    fn word_count_via_reduce_by_key() {
        let e = Engine::new(4);
        let d = Dataset::from_vec(words(), 3).into_keyed();
        let mut out = d.reduce_by_key(&e, "wc", |a, b| *a += b).unwrap().collect();
        out.sort();
        let the = out.iter().find(|(w, _)| *w == "the").unwrap();
        assert_eq!(the.1, 3);
        let fox = out.iter().find(|(w, _)| *w == "fox").unwrap();
        assert_eq!(fox.1, 2);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn partition_by_key_collocates() {
        let e = Engine::new(4);
        let data: Vec<(u32, u32)> = (0..200).map(|i| (i % 10, i)).collect();
        let shuffled = Dataset::from_vec(data, 7)
            .into_keyed()
            .partition_by_key(&e, "shuffle", 4)
            .unwrap();
        let parts = shuffled.into_inner().into_partitions();
        assert_eq!(parts.len(), 4);
        // Every key appears in exactly one partition.
        let mut seen: std::collections::HashMap<u32, usize> = Default::default();
        for (pi, p) in parts.iter().enumerate() {
            for (k, _) in p {
                if let Some(prev) = seen.insert(*k, pi) {
                    assert_eq!(prev, pi, "key {k} split across partitions");
                }
            }
        }
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 200);
    }

    #[test]
    fn aggregate_by_key_counts_and_sums() {
        let e = Engine::new(3);
        let data: Vec<(u8, f64)> = (0..1000).map(|i| ((i % 5) as u8, i as f64)).collect();
        let expect_sum: f64 = (0..1000).filter(|i| i % 5 == 2).map(|i| i as f64).sum();
        let out = Dataset::from_vec(data, 8)
            .into_keyed()
            .aggregate_by_key(
                &e,
                "agg",
                || (0u64, 0.0f64),
                |acc, v| {
                    acc.0 += 1;
                    acc.1 += v;
                },
                |acc, o| {
                    acc.0 += o.0;
                    acc.1 += o.1;
                },
            )
            .unwrap()
            .collect();
        assert_eq!(out.len(), 5);
        let two = out.iter().find(|(k, _)| *k == 2).unwrap();
        assert_eq!(two.1 .0, 200);
        assert!((two.1 .1 - expect_sum).abs() < 1e-9);
    }

    #[test]
    fn group_by_key_collects_all() {
        let e = Engine::new(2);
        let d = Dataset::from_vec(vec![(1, "a"), (2, "b"), (1, "c")], 2).into_keyed();
        let mut out = d.group_by_key(&e, "group").unwrap().collect();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 2);
        let mut ones = out[0].1.clone();
        ones.sort();
        assert_eq!(ones, vec!["a", "c"]);
    }

    #[test]
    fn count_keys_counts_distinct() {
        let e = Engine::new(2);
        let d =
            Dataset::from_vec((0..100u32).map(|i| (i % 7, i)).collect::<Vec<_>>(), 5).into_keyed();
        assert_eq!(d.count_keys(&e, "keys").unwrap(), 7);
    }

    #[test]
    fn join_inner() {
        let e = Engine::new(2);
        let left = Dataset::from_vec(vec![(1, "l1"), (2, "l2"), (3, "l3")], 2).into_keyed();
        let right = Dataset::from_vec(vec![(2, "r2a"), (2, "r2b"), (4, "r4")], 2).into_keyed();
        let mut out = left.join(&e, "join", right).unwrap().collect();
        out.sort();
        assert_eq!(out, vec![(2, ("l2", "r2a")), (2, ("l2", "r2b"))]);
    }

    #[test]
    fn key_by_builds_pairs() {
        let e = Engine::new(2);
        let d = Dataset::from_vec(vec!["aa", "b", "ccc"], 2);
        let keyed = d.key_by(&e, "len", |s| s.len()).unwrap();
        let mut out = keyed.into_inner().collect();
        out.sort();
        assert_eq!(out, vec![(1, "b"), (2, "aa"), (3, "ccc")]);
    }

    #[test]
    fn shuffle_metrics_recorded() {
        let e = Engine::new(2);
        let d =
            Dataset::from_vec((0..50u32).map(|i| (i % 3, i)).collect::<Vec<_>>(), 4).into_keyed();
        let _ = d.partition_by_key(&e, "the-shuffle", 2).unwrap();
        let stages = e.metrics().report();
        let s = stages.iter().find(|s| s.name == "the-shuffle").unwrap();
        assert_eq!(s.shuffled_records, 50);
    }

    #[test]
    fn join_duplicate_keys_preserve_order_and_multiplicity() {
        let e = Engine::new(2);
        // Two left records with the same key, three right values: 6 pairs,
        // each left record fanned out over the right values in order.
        let left = Dataset::from_vec(vec![(7u32, "a"), (7, "b")], 1).into_keyed();
        let right = Dataset::from_vec(vec![(7u32, 1), (7, 2), (7, 3)], 1).into_keyed();
        let out = left.join(&e, "dupjoin", right).unwrap().collect();
        assert_eq!(
            out,
            vec![
                (7, ("a", 1)),
                (7, ("a", 2)),
                (7, ("a", 3)),
                (7, ("b", 1)),
                (7, ("b", 2)),
                (7, ("b", 3)),
            ]
        );
    }

    #[test]
    fn radix_partition_covers_all_entries() {
        let mut m: FxHashMap<u32, u64> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert(i, u64::from(i) * 2);
        }
        let shards = radix_partition(m, 7);
        assert_eq!(shards.len(), 7);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 100);
        for shard in &shards {
            for (k, _) in shard {
                // Entry landed in the shard its hash selects.
                let want = (hash64(k) % 7) as usize;
                assert!(shards[want].iter().any(|(k2, _)| k2 == k));
            }
        }
        // Zero shards is clamped to one.
        let shards = radix_partition(FxHashMap::<u32, u64>::default(), 0);
        assert_eq!(shards.len(), 1);
    }

    #[test]
    fn aggregate_records_radix_merge_stage() {
        let e = Engine::new(2);
        let d = Dataset::from_vec((0..50u32).map(|i| (i % 3, 1u64)).collect::<Vec<_>>(), 4)
            .into_keyed();
        let _ = d.reduce_by_key(&e, "agg", |a, b| *a += b).unwrap();
        let stages = e.metrics().report();
        let merge = stages.iter().find(|s| s.name == "agg:radix-merge");
        assert!(merge.is_some(), "radix merge stage visible in metrics");
        assert_eq!(merge.map(|s| s.output_records), Some(3));
    }

    #[test]
    fn merge_combiner_shards_merges_in_worker_order() {
        let e = Engine::new(2);
        // Two workers, one shard each: worker order must be preserved, so
        // string concatenation (non-commutative) detects reordering.
        let sharded = vec![
            vec![vec![(1u32, "a".to_string())]],
            vec![vec![(1u32, "b".to_string())]],
        ];
        let out = merge_combiner_shards(&e, "mo", sharded, |a: &mut String, o: String| {
            a.push_str(&o);
        })
        .unwrap()
        .collect();
        assert_eq!(out, vec![(1, "ab".to_string())]);
    }

    #[test]
    fn panicking_combiner_surfaces_as_error() {
        let e = Engine::new(2);
        let d = Dataset::from_vec(words(), 3).into_keyed();
        let err = d
            .reduce_by_key(&e, "explode", |_, _| panic!("combiner bug"))
            .unwrap_err();
        assert_eq!(err.stage, "explode");
    }
}
