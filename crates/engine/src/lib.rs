//! # pol-engine — an in-process data-parallel MapReduce engine
//!
//! The paper executes its methodology on Apache Spark, using exactly two of
//! Spark's capabilities (§3.3.4): *partitioned parallel transformation*
//! (the map phase over the grouping set) and *combiner-based keyed
//! aggregation* (the reduce phase producing per-cell statistics). This crate
//! provides those capabilities in-process:
//!
//! * [`Engine`] — the execution context: a fixed [`pool::ThreadPool`] plus
//!   per-stage [`metrics::JobMetrics`] (records in/out, shuffle volume,
//!   wall time — the observability Figure 3 of the paper sketches),
//! * [`Dataset`] — a partitioned collection with narrow transformations
//!   (`map`, `filter`, `flat_map`, `map_partitions`,
//!   `sort_within_partitions`) that never move data between partitions,
//! * [`KeyedDataset`] — wide transformations: hash-partition shuffle,
//!   `aggregate_by_key` (seq/comb operators, i.e. Spark's `aggregateByKey`),
//!   `reduce_by_key`, `group_by_key` and inner `join`.
//!
//! The core correctness property (tested): **keyed aggregation is
//! partition- and thread-count-invariant** — it equals a sequential fold of
//! the same records, as long as the combine operator is commutative and
//! associative (which every `pol-sketch` statistic is).

#![deny(missing_docs)]

pub mod dataset;
pub mod error;
pub mod keyed;
pub mod metrics;
pub mod pool;
pub mod profile;

pub use dataset::Dataset;
pub use error::{EngineError, EngineErrorKind};
pub use keyed::{merge_combiner_shards, radix_partition, KeyedDataset};
pub use metrics::{JobMetrics, StageReport, TaskProfile};
pub use pool::ThreadPool;

use std::sync::Arc;
use std::time::Instant;

/// The execution context: thread pool + metrics. Clone-cheap (shared
/// internals), like a `SparkContext` handle.
#[derive(Clone)]
pub struct Engine {
    pool: Arc<ThreadPool>,
    metrics: Arc<JobMetrics>,
    default_partitions: usize,
}

impl Engine {
    /// Default shard count for shuffles and radix-partitioned
    /// aggregations. Deliberately a constant, NOT a function of the
    /// worker count: partition composition determines the fold order of
    /// floating-point accumulators, so a thread-dependent count would
    /// make the inventory bytes depend on the machine. A fixed 32 keeps
    /// `same seed ⇒ byte-identical inventory` true across thread counts
    /// (polbuild's `--threads` sweep gates on exactly this) while still
    /// giving the merge enough shards to saturate typical worker pools.
    pub const DEFAULT_PARTITIONS: usize = 32;

    /// Creates an engine with `threads` worker threads; partition count
    /// for shuffles defaults to the fixed [`Engine::DEFAULT_PARTITIONS`]
    /// so results never depend on the worker count.
    pub fn new(threads: usize) -> Engine {
        let threads = threads.max(1);
        Engine {
            pool: Arc::new(ThreadPool::new(threads)),
            metrics: Arc::new(JobMetrics::default()),
            default_partitions: Engine::DEFAULT_PARTITIONS,
        }
    }

    /// An engine sized to the machine.
    pub fn with_available_parallelism() -> Engine {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Engine::new(n)
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Default partition count for new datasets.
    pub fn default_partitions(&self) -> usize {
        self.default_partitions
    }

    /// The engine's accumulated stage metrics.
    pub fn metrics(&self) -> &JobMetrics {
        &self.metrics
    }

    /// Runs `f` over `inputs` on the engine's pool, one task per input,
    /// returning results in input order. Unlike the [`Dataset`]
    /// transformations this records no [`StageReport`] — callers that fuse
    /// several logical stages into one pass (see `pol-core`'s fused
    /// executor) account for their own record counts. It does record one
    /// [`TaskProfile`] per task (worker, wall, allocation deltas), which is
    /// what `polbuild --profile` renders.
    pub fn run_tasks<I, R, F>(
        &self,
        stage: &str,
        inputs: Vec<I>,
        f: F,
    ) -> Result<Vec<R>, EngineError>
    where
        I: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, I) -> R + Send + Sync + 'static,
    {
        let metrics = self.metrics.clone();
        let name: Arc<str> = Arc::from(stage);
        self.pool.run_stage(stage, inputs, move |idx, input| {
            let (a0, b0) = profile::thread_totals();
            let started = Instant::now();
            let out = f(idx, input);
            let wall = started.elapsed();
            let (a1, b1) = profile::thread_totals();
            metrics.record_task(TaskProfile {
                stage: name.to_string(),
                task: idx,
                worker: profile::current_worker(),
                wall,
                allocs: a1 - a0,
                alloc_bytes: b1 - b0,
            });
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_basics() {
        let e = Engine::new(3);
        assert_eq!(e.threads(), 3);
        assert_eq!(e.default_partitions(), Engine::DEFAULT_PARTITIONS);
        let e0 = Engine::new(0);
        assert_eq!(e0.threads(), 1, "clamped to one thread");
    }

    #[test]
    fn run_tasks_records_worker_attributed_profiles() {
        let e = Engine::new(2);
        let out = e
            .run_tasks("probe", vec![1u32, 2, 3], |_, x| x * 2)
            .unwrap();
        assert_eq!(out, vec![2, 4, 6]);
        let profiles = e.metrics().task_profiles();
        let probe: Vec<_> = profiles.iter().filter(|t| t.stage == "probe").collect();
        assert_eq!(probe.len(), 3, "one profile per task");
        for t in &probe {
            assert!(t.worker.is_some(), "tasks run on tagged pool workers");
            assert!(t.worker.unwrap() < 2);
        }
        let tasks: std::collections::BTreeSet<usize> = probe.iter().map(|t| t.task).collect();
        assert_eq!(tasks, (0..3).collect());
        assert!(e.metrics().render_profile().contains("probe"));
    }

    #[test]
    fn engine_clone_shares_metrics() {
        let e = Engine::new(2);
        let e2 = e.clone();
        let d = Dataset::from_vec(vec![1, 2, 3], 2);
        let _ = d.map(&e2, "probe", |x| x + 1).unwrap().collect();
        assert!(
            e.metrics().report().iter().any(|s| s.name == "probe"),
            "metrics visible through the original handle"
        );
    }
}
