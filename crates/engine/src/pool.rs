//! A fixed-size worker pool over crossbeam channels.
//!
//! Deliberately simple: an unbounded MPMC job channel consumed by `n`
//! workers. Stages submit one job per partition and gather results over a
//! private result channel, so a stage's wall time is the longest partition
//! (the same straggler behaviour a Spark stage exhibits).
//!
//! Workers are panic-proof: a job that panics is caught on the worker, the
//! worker keeps serving the queue, and [`ThreadPool::run_stage`] reports
//! the failure to the submitting stage as an [`EngineError`].

use crate::error::{EngineError, EngineErrorKind};
use crossbeam::channel::{unbounded, Sender};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Renders a `catch_unwind` payload as text for error reporting.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The fixed-size thread pool.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one). Threads that cannot be
    /// spawned are skipped; the pool guarantees at least one worker or
    /// aborts construction (OS thread exhaustion at two threads is not a
    /// recoverable state for a compute engine).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = receiver.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("pol-worker-{i}"))
                .spawn(move || {
                    // Tag the thread so task profiles can attribute work to
                    // a worker index.
                    crate::profile::set_worker(i);
                    while let Ok(job) = rx.recv() {
                        // A panicking job must not take the worker down;
                        // run_stage surfaces the failure to the caller.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                });
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) if handles.is_empty() && i + 1 == threads => {
                    // lint: allow(no_unwrap) — a pool with zero workers
                    // would deadlock every stage; failing construction
                    // loudly is the only sane behaviour here.
                    panic!("cannot spawn any worker thread: {e}");
                }
                Err(_) => {} // degraded pool: fewer workers than asked
            }
        }
        let threads = handles.len();
        ThreadPool {
            sender: Some(sender),
            handles,
            threads,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submits a fire-and-forget job. Fails only when the pool has shut
    /// down (the send side is closed during drop).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), EngineErrorKind> {
        let sender = self.sender.as_ref().ok_or(EngineErrorKind::PoolShutdown)?;
        sender
            .send(Box::new(job))
            .map_err(|_| EngineErrorKind::PoolShutdown)
    }

    /// Runs one closure per item of `inputs` on the pool and returns the
    /// results in input order. This is the engine's stage primitive.
    ///
    /// A panicking closure does not poison the pool: the first panic is
    /// reported as [`EngineErrorKind::JobPanicked`] (with `stage` for
    /// context) after all jobs of the stage have settled.
    pub fn run_stage<I, R, F>(
        &self,
        stage: &str,
        inputs: Vec<I>,
        f: F,
    ) -> Result<Vec<R>, EngineError>
    where
        I: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, I) -> R + Send + Sync + 'static,
    {
        let n = inputs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let f = Arc::new(f);
        let (tx, rx) = unbounded::<(usize, Result<R, String>)>();
        for (idx, input) in inputs.into_iter().enumerate() {
            let f = f.clone();
            let tx = tx.clone();
            self.execute(move || {
                let out = catch_unwind(AssertUnwindSafe(|| f(idx, input)))
                    .map_err(|p| panic_message(p.as_ref()));
                // Receiver outlives all jobs within this call; a send error
                // can only happen if the caller's thread panicked.
                let _ = tx.send((idx, out));
            })
            .map_err(|kind| EngineError::new(stage, kind))?;
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut first_panic: Option<String> = None;
        for _ in 0..n {
            match rx.recv() {
                Ok((idx, Ok(r))) => slots[idx] = Some(r),
                Ok((_, Err(msg))) => {
                    first_panic.get_or_insert(msg);
                }
                Err(_) => {
                    return Err(EngineError::new(stage, EngineErrorKind::ResultsLost));
                }
            }
        }
        if let Some(msg) = first_panic {
            return Err(EngineError::new(stage, EngineErrorKind::JobPanicked(msg)));
        }
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            match slot {
                Some(r) => out.push(r),
                None => return Err(EngineError::new(stage, EngineErrorKind::ResultsLost)),
            }
        }
        Ok(out)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // closes the channel; workers drain & exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = unbounded();
        for _ in 0..100 {
            let c = counter.clone();
            let tx = tx.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            })
            .unwrap();
        }
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn run_stage_preserves_order() {
        let pool = ThreadPool::new(8);
        let inputs: Vec<u64> = (0..64).collect();
        let out = pool
            .run_stage("order", inputs, |idx, x| {
                // Vary the work so completion order differs from input order.
                std::thread::sleep(std::time::Duration::from_micros((64 - idx as u64) * 10));
                x * 2
            })
            .unwrap();
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn run_stage_empty() {
        let pool = ThreadPool::new(2);
        let out: Vec<u32> = pool
            .run_stage("empty", Vec::<u32>::new(), |_, x| x)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_threads() {
        let pool = ThreadPool::new(1);
        let out = pool
            .run_stage("wide", (0..100u32).collect::<Vec<_>>(), |_, x| x + 1)
            .unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = ThreadPool::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let d = done.clone();
            pool.execute(move || {
                d.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(pool); // must drain queued jobs before joining
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn pool_survives_panicking_job() {
        let pool = ThreadPool::new(1); // single worker: it MUST survive
        let err = pool
            .run_stage("explode", vec![1u32, 2, 3], |_, x| {
                if x == 2 {
                    panic!("boom on {x}");
                }
                x
            })
            .unwrap_err();
        assert_eq!(err.stage, "explode");
        match &err.kind {
            EngineErrorKind::JobPanicked(msg) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected JobPanicked, got {other:?}"),
        }
        // The same pool keeps working after the panic.
        let out = pool
            .run_stage("after", (0..50u32).collect::<Vec<_>>(), |_, x| x * 3)
            .unwrap();
        assert_eq!(out.len(), 50);
        assert_eq!(out[49], 147);
    }

    #[test]
    fn execute_panic_does_not_kill_worker() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("fire-and-forget boom")).unwrap();
        // The lone worker must still process subsequent jobs.
        let (tx, rx) = unbounded();
        pool.execute(move || {
            tx.send(42u8).unwrap();
        })
        .unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).ok(),
            Some(42)
        );
    }

    #[test]
    fn panic_message_renders_payloads() {
        let s: Box<dyn Any + Send> = Box::new("static str");
        assert_eq!(panic_message(s.as_ref()), "static str");
        let s: Box<dyn Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(s.as_ref()), "owned");
        let s: Box<dyn Any + Send> = Box::new(77u32);
        assert_eq!(panic_message(s.as_ref()), "non-string panic payload");
    }
}
