//! A fixed-size worker pool over crossbeam channels.
//!
//! Deliberately simple: an unbounded MPMC job channel consumed by `n`
//! workers. Stages submit one job per partition and gather results over a
//! private result channel, so a stage's wall time is the longest partition
//! (the same straggler behaviour a Spark stage exhibits).

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The fixed-size thread pool.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let handles = (0..threads)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("pol-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            handles,
            threads,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submits a job.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.sender
            .as_ref()
            .expect("pool alive")
            .send(Box::new(job))
            .expect("workers alive");
    }

    /// Runs one closure per item of `inputs` on the pool and returns the
    /// results in input order. This is the engine's stage primitive.
    pub fn run_stage<I, R, F>(&self, inputs: Vec<I>, f: F) -> Vec<R>
    where
        I: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, I) -> R + Send + Sync + 'static,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let f = std::sync::Arc::new(f);
        let (tx, rx) = unbounded::<(usize, R)>();
        for (idx, input) in inputs.into_iter().enumerate() {
            let f = f.clone();
            let tx = tx.clone();
            self.execute(move || {
                let out = f(idx, input);
                // Receiver outlives all jobs within this call; a send error
                // can only happen if the caller's thread panicked.
                let _ = tx.send((idx, out));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, r) = rx.recv().expect("all stage jobs complete");
            slots[idx] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // closes the channel; workers drain & exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = unbounded();
        for _ in 0..100 {
            let c = counter.clone();
            let tx = tx.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn run_stage_preserves_order() {
        let pool = ThreadPool::new(8);
        let inputs: Vec<u64> = (0..64).collect();
        let out = pool.run_stage(inputs, |idx, x| {
            // Vary the work so completion order differs from input order.
            std::thread::sleep(std::time::Duration::from_micros((64 - idx as u64) * 10));
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn run_stage_empty() {
        let pool = ThreadPool::new(2);
        let out: Vec<u32> = pool.run_stage(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_threads() {
        let pool = ThreadPool::new(1);
        let out = pool.run_stage((0..100u32).collect::<Vec<_>>(), |_, x| x + 1);
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = ThreadPool::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let d = done.clone();
            pool.execute(move || {
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // must drain queued jobs before joining
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }
}
