//! Thread-local execution profiling: per-thread allocation counters and
//! pool-worker identity.
//!
//! [`crate::Engine::run_tasks`] snapshots these counters around every task
//! closure, turning them into per-stage per-worker
//! [`crate::metrics::TaskProfile`] rows. The counters themselves are fed by
//! whatever global allocator the binary installs (pol-bench's
//! `CountingAlloc` calls [`note_alloc`]); a binary without a counting
//! allocator simply reports zero allocations and still gets wall-clock and
//! worker attribution.

use std::cell::Cell;

thread_local! {
    /// Allocations observed on this thread (monotonic; profile deltas are
    /// taken around task bodies).
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    /// Bytes requested by those allocations.
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
    /// Pool-worker index of this thread, `usize::MAX` off-pool.
    static TL_WORKER: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Records one allocation of `bytes` on the current thread.
///
/// Safe to call from inside `GlobalAlloc::alloc`: the cells are
/// const-initialized (no lazy init, no allocation) and `try_with` tolerates
/// TLS teardown during thread exit.
#[inline]
pub fn note_alloc(bytes: usize) {
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = TL_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

/// `(allocations, bytes)` recorded on the current thread so far. Monotonic;
/// subtract two snapshots to attribute a region of code.
pub fn thread_totals() -> (u64, u64) {
    let allocs = TL_ALLOCS.try_with(Cell::get).unwrap_or(0);
    let bytes = TL_BYTES.try_with(Cell::get).unwrap_or(0);
    (allocs, bytes)
}

/// Tags the current thread as pool worker `idx` (called once per worker at
/// spawn).
pub(crate) fn set_worker(idx: usize) {
    TL_WORKER.with(|c| c.set(idx));
}

/// The pool-worker index of the current thread, `None` off-pool (e.g. the
/// driver thread).
pub fn current_worker() -> Option<usize> {
    match TL_WORKER.try_with(Cell::get) {
        Ok(usize::MAX) | Err(_) => None,
        Ok(idx) => Some(idx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_alloc_accumulates_on_this_thread() {
        let (a0, b0) = thread_totals();
        note_alloc(128);
        note_alloc(64);
        let (a1, b1) = thread_totals();
        assert_eq!(a1 - a0, 2);
        assert_eq!(b1 - b0, 192);
    }

    #[test]
    fn worker_identity_is_per_thread() {
        assert_eq!(current_worker(), None, "driver thread is off-pool");
        std::thread::spawn(|| {
            set_worker(7);
            assert_eq!(current_worker(), Some(7));
        })
        .join()
        .unwrap();
        assert_eq!(current_worker(), None, "tag does not leak across threads");
    }
}
