//! Per-stage execution accounting — the observability surface of the
//! engine (what Spark's UI shows per stage; what Figure 3 of the paper
//! sketches as the execution flow).

use parking_lot::Mutex;
use std::time::Duration;

/// A completed stage's accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageReport {
    /// Stage name (the pipeline step, e.g. `"clean"`, `"aggregate"`).
    pub name: String,
    /// Records entering the stage.
    pub input_records: u64,
    /// Records leaving the stage.
    pub output_records: u64,
    /// Records moved across partitions (0 for narrow stages).
    pub shuffled_records: u64,
    /// Wall-clock time of the stage.
    pub wall: Duration,
}

/// Accumulates [`StageReport`]s across a job. Shared by all clones of an
/// [`crate::Engine`].
#[derive(Default)]
pub struct JobMetrics {
    stages: Mutex<Vec<StageReport>>,
}

impl JobMetrics {
    /// Records a completed stage.
    pub fn record(&self, report: StageReport) {
        self.stages.lock().push(report);
    }

    /// Snapshot of all stages so far, in completion order.
    pub fn report(&self) -> Vec<StageReport> {
        self.stages.lock().clone()
    }

    /// Total wall time across stages (stages on the same pool serialize, so
    /// this approximates job time).
    pub fn total_wall(&self) -> Duration {
        self.stages.lock().iter().map(|s| s.wall).sum()
    }

    /// Drops all recorded stages.
    pub fn clear(&self) {
        self.stages.lock().clear();
    }

    /// Renders a compact text table (one line per stage).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "stage                          in_records  out_records    shuffled   wall_ms\n",
        );
        for s in self.stages.lock().iter() {
            out.push_str(&format!(
                "{:<30} {:>11} {:>12} {:>11} {:>9.1}\n",
                s.name,
                s.input_records,
                s.output_records,
                s.shuffled_records,
                s.wall.as_secs_f64() * 1e3
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, wall_ms: u64) -> StageReport {
        StageReport {
            name: name.into(),
            input_records: 10,
            output_records: 8,
            shuffled_records: 0,
            wall: Duration::from_millis(wall_ms),
        }
    }

    #[test]
    fn record_and_report() {
        let m = JobMetrics::default();
        m.record(stage("a", 5));
        m.record(stage("b", 7));
        let r = m.report();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].name, "a");
        assert_eq!(m.total_wall(), Duration::from_millis(12));
    }

    #[test]
    fn clear_resets() {
        let m = JobMetrics::default();
        m.record(stage("a", 5));
        m.clear();
        assert!(m.report().is_empty());
        assert_eq!(m.total_wall(), Duration::ZERO);
    }

    #[test]
    fn render_contains_stage_names() {
        let m = JobMetrics::default();
        m.record(stage("clean", 1));
        let text = m.render();
        assert!(text.contains("clean"));
        assert!(text.lines().count() >= 2);
    }
}
