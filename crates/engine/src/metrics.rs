//! Per-stage execution accounting — the observability surface of the
//! engine (what Spark's UI shows per stage; what Figure 3 of the paper
//! sketches as the execution flow).

use parking_lot::Mutex;
use pol_sketch::hash::FxHashMap;
use std::time::Duration;

/// A completed stage's accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageReport {
    /// Stage name (the pipeline step, e.g. `"clean"`, `"aggregate"`).
    pub name: String,
    /// Records entering the stage.
    pub input_records: u64,
    /// Records leaving the stage.
    pub output_records: u64,
    /// Records moved across partitions (0 for narrow stages).
    pub shuffled_records: u64,
    /// Wall-clock time of the stage.
    pub wall: Duration,
}

/// One task's execution profile: which worker ran it, for how long, and
/// how much it allocated (deltas of the thread-local counters in
/// [`crate::profile`]). Recorded by [`crate::Engine::run_tasks`] for every
/// task of every stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskProfile {
    /// Stage the task belonged to.
    pub stage: String,
    /// Task index within the stage (input order).
    pub task: usize,
    /// Pool-worker index that ran the task (`None` off-pool).
    pub worker: Option<usize>,
    /// Wall-clock time of the task body.
    pub wall: Duration,
    /// Heap allocations performed by the task body (0 unless the binary
    /// installs a counting allocator feeding [`crate::profile::note_alloc`]).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// Accumulates [`StageReport`]s across a job. Shared by all clones of an
/// [`crate::Engine`].
#[derive(Default)]
pub struct JobMetrics {
    stages: Mutex<Vec<StageReport>>,
    counters: Mutex<FxHashMap<String, u64>>,
    tasks: Mutex<Vec<TaskProfile>>,
}

impl JobMetrics {
    /// Records a completed stage.
    pub fn record(&self, report: StageReport) {
        self.stages.lock().push(report);
    }

    /// Snapshot of all stages so far, in completion order.
    pub fn report(&self) -> Vec<StageReport> {
        self.stages.lock().clone()
    }

    /// Adds `delta` to the named free-form counter (allocation counts,
    /// morsel counts — anything that is not a per-stage record count).
    pub fn add_counter(&self, name: &str, delta: u64) {
        *self.counters.lock().entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a named counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// All named counters, sorted by name for stable output.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        out.sort();
        out
    }

    /// Total wall time across stages (stages on the same pool serialize, so
    /// this approximates job time).
    pub fn total_wall(&self) -> Duration {
        self.stages.lock().iter().map(|s| s.wall).sum()
    }

    /// Records one task's execution profile.
    pub fn record_task(&self, profile: TaskProfile) {
        self.tasks.lock().push(profile);
    }

    /// Snapshot of all task profiles so far, in completion order.
    pub fn task_profiles(&self) -> Vec<TaskProfile> {
        self.tasks.lock().clone()
    }

    /// Drops all recorded stages, counters and task profiles.
    pub fn clear(&self) {
        self.stages.lock().clear();
        self.counters.lock().clear();
        self.tasks.lock().clear();
    }

    /// Renders a compact text table (one line per stage, then counters).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "stage                          in_records  out_records    shuffled   wall_ms\n",
        );
        for s in self.stages.lock().iter() {
            out.push_str(&format!(
                "{:<30} {:>11} {:>12} {:>11} {:>9.1}\n",
                s.name,
                s.input_records,
                s.output_records,
                s.shuffled_records,
                s.wall.as_secs_f64() * 1e3
            ));
        }
        let counters = self.counters();
        if !counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in counters {
                out.push_str(&format!("  {name:<30} {value:>12}\n"));
            }
        }
        out
    }

    /// Renders the flat per-stage per-worker profile: task count, wall
    /// time, allocations and allocated bytes, aggregated by
    /// `(stage, worker)` in first-appearance stage order. This is the
    /// `polbuild --profile` payload; stage shuffle volume lives in
    /// [`JobMetrics::render`].
    pub fn render_profile(&self) -> String {
        let tasks = self.tasks.lock();
        // (stage, worker) → (tasks, wall, allocs, bytes); stage order by
        // first appearance, workers sorted within a stage.
        let mut stage_order: Vec<String> = Vec::new();
        let mut rows: FxHashMap<(String, Option<usize>), (u64, Duration, u64, u64)> =
            FxHashMap::default();
        for t in tasks.iter() {
            if !stage_order.contains(&t.stage) {
                stage_order.push(t.stage.clone());
            }
            let e = rows
                .entry((t.stage.clone(), t.worker))
                .or_insert((0, Duration::ZERO, 0, 0));
            e.0 += 1;
            e.1 += t.wall;
            e.2 += t.allocs;
            e.3 += t.alloc_bytes;
        }
        let mut out = String::from(
            "stage                          worker  tasks   wall_ms      allocs    alloc_mb\n",
        );
        for stage in &stage_order {
            let mut workers: Vec<Option<usize>> = rows
                .keys()
                .filter(|(s, _)| s == stage)
                .map(|(_, w)| *w)
                .collect();
            workers.sort();
            for w in workers {
                let (tasks, wall, allocs, bytes) = rows[&(stage.clone(), w)];
                let worker = w.map_or("-".to_string(), |w| w.to_string());
                out.push_str(&format!(
                    "{:<30} {:>6} {:>6} {:>9.1} {:>11} {:>11.2}\n",
                    stage,
                    worker,
                    tasks,
                    wall.as_secs_f64() * 1e3,
                    allocs,
                    bytes as f64 / (1024.0 * 1024.0),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, wall_ms: u64) -> StageReport {
        StageReport {
            name: name.into(),
            input_records: 10,
            output_records: 8,
            shuffled_records: 0,
            wall: Duration::from_millis(wall_ms),
        }
    }

    #[test]
    fn record_and_report() {
        let m = JobMetrics::default();
        m.record(stage("a", 5));
        m.record(stage("b", 7));
        let r = m.report();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].name, "a");
        assert_eq!(m.total_wall(), Duration::from_millis(12));
    }

    #[test]
    fn clear_resets() {
        let m = JobMetrics::default();
        m.record(stage("a", 5));
        m.clear();
        assert!(m.report().is_empty());
        assert_eq!(m.total_wall(), Duration::ZERO);
    }

    #[test]
    fn render_contains_stage_names() {
        let m = JobMetrics::default();
        m.record(stage("clean", 1));
        let text = m.render();
        assert!(text.contains("clean"));
        assert!(text.lines().count() >= 2);
    }

    #[test]
    fn task_profiles_aggregate_per_stage_per_worker() {
        let m = JobMetrics::default();
        for (task, worker, wall_ms, allocs) in
            [(0, Some(0), 4, 10), (1, Some(1), 6, 20), (2, Some(0), 2, 5)]
        {
            m.record_task(TaskProfile {
                stage: "build".into(),
                task,
                worker,
                wall: Duration::from_millis(wall_ms),
                allocs,
                alloc_bytes: allocs * 100,
            });
        }
        m.record_task(TaskProfile {
            stage: "scan".into(),
            task: 0,
            worker: None,
            wall: Duration::from_millis(1),
            allocs: 1,
            alloc_bytes: 64,
        });
        assert_eq!(m.task_profiles().len(), 4);
        let text = m.render_profile();
        // build/worker-0 aggregates two tasks (6 ms, 15 allocs).
        let w0 = text
            .lines()
            .find(|l| l.starts_with("build") && l.contains(" 0 "))
            .unwrap();
        assert!(w0.contains("2"), "task count: {w0}");
        assert!(w0.contains("15"), "alloc sum: {w0}");
        // Off-pool worker renders as '-'.
        assert!(text
            .lines()
            .any(|l| l.starts_with("scan") && l.contains('-')));
        m.clear();
        assert!(m.task_profiles().is_empty());
    }

    #[test]
    fn counters_accumulate_and_clear() {
        let m = JobMetrics::default();
        assert_eq!(m.counter("allocs"), 0);
        m.add_counter("allocs", 3);
        m.add_counter("allocs", 4);
        m.add_counter("morsels", 1);
        assert_eq!(m.counter("allocs"), 7);
        assert_eq!(
            m.counters(),
            vec![("allocs".to_string(), 7), ("morsels".to_string(), 1)]
        );
        assert!(m.render().contains("morsels"));
        m.clear();
        assert_eq!(m.counter("allocs"), 0);
        assert!(m.counters().is_empty());
    }
}
