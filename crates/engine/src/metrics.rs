//! Per-stage execution accounting — the observability surface of the
//! engine (what Spark's UI shows per stage; what Figure 3 of the paper
//! sketches as the execution flow).

use parking_lot::Mutex;
use pol_sketch::hash::FxHashMap;
use std::time::Duration;

/// A completed stage's accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageReport {
    /// Stage name (the pipeline step, e.g. `"clean"`, `"aggregate"`).
    pub name: String,
    /// Records entering the stage.
    pub input_records: u64,
    /// Records leaving the stage.
    pub output_records: u64,
    /// Records moved across partitions (0 for narrow stages).
    pub shuffled_records: u64,
    /// Wall-clock time of the stage.
    pub wall: Duration,
}

/// Accumulates [`StageReport`]s across a job. Shared by all clones of an
/// [`crate::Engine`].
#[derive(Default)]
pub struct JobMetrics {
    stages: Mutex<Vec<StageReport>>,
    counters: Mutex<FxHashMap<String, u64>>,
}

impl JobMetrics {
    /// Records a completed stage.
    pub fn record(&self, report: StageReport) {
        self.stages.lock().push(report);
    }

    /// Snapshot of all stages so far, in completion order.
    pub fn report(&self) -> Vec<StageReport> {
        self.stages.lock().clone()
    }

    /// Adds `delta` to the named free-form counter (allocation counts,
    /// morsel counts — anything that is not a per-stage record count).
    pub fn add_counter(&self, name: &str, delta: u64) {
        *self.counters.lock().entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a named counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// All named counters, sorted by name for stable output.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        out.sort();
        out
    }

    /// Total wall time across stages (stages on the same pool serialize, so
    /// this approximates job time).
    pub fn total_wall(&self) -> Duration {
        self.stages.lock().iter().map(|s| s.wall).sum()
    }

    /// Drops all recorded stages and counters.
    pub fn clear(&self) {
        self.stages.lock().clear();
        self.counters.lock().clear();
    }

    /// Renders a compact text table (one line per stage, then counters).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "stage                          in_records  out_records    shuffled   wall_ms\n",
        );
        for s in self.stages.lock().iter() {
            out.push_str(&format!(
                "{:<30} {:>11} {:>12} {:>11} {:>9.1}\n",
                s.name,
                s.input_records,
                s.output_records,
                s.shuffled_records,
                s.wall.as_secs_f64() * 1e3
            ));
        }
        let counters = self.counters();
        if !counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in counters {
                out.push_str(&format!("  {name:<30} {value:>12}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, wall_ms: u64) -> StageReport {
        StageReport {
            name: name.into(),
            input_records: 10,
            output_records: 8,
            shuffled_records: 0,
            wall: Duration::from_millis(wall_ms),
        }
    }

    #[test]
    fn record_and_report() {
        let m = JobMetrics::default();
        m.record(stage("a", 5));
        m.record(stage("b", 7));
        let r = m.report();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].name, "a");
        assert_eq!(m.total_wall(), Duration::from_millis(12));
    }

    #[test]
    fn clear_resets() {
        let m = JobMetrics::default();
        m.record(stage("a", 5));
        m.clear();
        assert!(m.report().is_empty());
        assert_eq!(m.total_wall(), Duration::ZERO);
    }

    #[test]
    fn render_contains_stage_names() {
        let m = JobMetrics::default();
        m.record(stage("clean", 1));
        let text = m.render();
        assert!(text.contains("clean"));
        assert!(text.lines().count() >= 2);
    }

    #[test]
    fn counters_accumulate_and_clear() {
        let m = JobMetrics::default();
        assert_eq!(m.counter("allocs"), 0);
        m.add_counter("allocs", 3);
        m.add_counter("allocs", 4);
        m.add_counter("morsels", 1);
        assert_eq!(m.counter("allocs"), 7);
        assert_eq!(
            m.counters(),
            vec![("allocs".to_string(), 7), ("morsels".to_string(), 1)]
        );
        assert!(m.render().contains("morsels"));
        m.clear();
        assert_eq!(m.counter("allocs"), 0);
        assert!(m.counters().is_empty());
    }
}
