//! Partitioned datasets and their narrow transformations.

use crate::error::EngineError;
use crate::metrics::StageReport;
use crate::Engine;
use std::hash::Hash;
use std::time::Instant;

/// A partitioned in-memory collection — the engine's RDD analogue.
///
/// Narrow transformations (`map`, `filter`, …) run one task per partition
/// on the engine's pool and never move records between partitions; each
/// returns `Result` because partition tasks run on worker threads whose
/// panics surface as [`EngineError`] rather than tearing the process down.
/// Wide operations live on [`crate::KeyedDataset`].
#[derive(Clone, Debug)]
pub struct Dataset<T> {
    partitions: Vec<Vec<T>>,
}

impl<T: Send + 'static> Dataset<T> {
    /// Splits `data` into `num_partitions` contiguous, near-equal chunks.
    pub fn from_vec(data: Vec<T>, num_partitions: usize) -> Dataset<T> {
        let num_partitions = num_partitions.max(1);
        let n = data.len();
        let base = n / num_partitions;
        let extra = n % num_partitions;
        let mut partitions = Vec::with_capacity(num_partitions);
        let mut it = data.into_iter();
        for i in 0..num_partitions {
            let take = base + usize::from(i < extra);
            partitions.push(it.by_ref().take(take).collect());
        }
        Dataset { partitions }
    }

    /// Wraps pre-partitioned data (e.g. per-vessel partitions from the
    /// simulator) without moving records.
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> Dataset<T> {
        if partitions.is_empty() {
            return Dataset {
                partitions: vec![Vec::new()],
            };
        }
        Dataset { partitions }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total record count.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Borrows the partitions.
    pub fn partitions(&self) -> &[Vec<T>] {
        &self.partitions
    }

    /// Consumes the dataset into its partitions.
    pub fn into_partitions(self) -> Vec<Vec<T>> {
        self.partitions
    }

    /// Flattens into a single vector (partition order preserved).
    pub fn collect(self) -> Vec<T> {
        self.partitions.into_iter().flatten().collect()
    }

    /// The fundamental narrow transformation: one task per partition, each
    /// mapping the whole partition. Everything else is sugar over this.
    pub fn map_partitions<U, F>(
        self,
        engine: &Engine,
        stage: &str,
        f: F,
    ) -> Result<Dataset<U>, EngineError>
    where
        U: Send + 'static,
        F: Fn(Vec<T>) -> Vec<U> + Send + Sync + 'static,
    {
        let started = Instant::now();
        let input_records = self.count() as u64;
        let out = engine.run_tasks(stage, self.partitions, move |_, part| f(part))?;
        let result = Dataset { partitions: out };
        engine.metrics().record(StageReport {
            name: stage.to_string(),
            input_records,
            output_records: result.count() as u64,
            shuffled_records: 0,
            wall: started.elapsed(),
        });
        Ok(result)
    }

    /// Applies `f` to every record in parallel.
    pub fn map<U, F>(self, engine: &Engine, stage: &str, f: F) -> Result<Dataset<U>, EngineError>
    where
        U: Send + 'static,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        self.map_partitions(engine, stage, move |part| {
            part.into_iter().map(&f).collect()
        })
    }

    /// Keeps records matching the predicate.
    pub fn filter<F>(self, engine: &Engine, stage: &str, f: F) -> Result<Dataset<T>, EngineError>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        self.map_partitions(engine, stage, move |part| {
            part.into_iter().filter(|t| f(t)).collect()
        })
    }

    /// Maps each record to zero or more outputs.
    pub fn flat_map<U, I, F>(
        self,
        engine: &Engine,
        stage: &str,
        f: F,
    ) -> Result<Dataset<U>, EngineError>
    where
        U: Send + 'static,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Send + Sync + 'static,
    {
        self.map_partitions(engine, stage, move |part| {
            part.into_iter().flat_map(&f).collect()
        })
    }

    /// Sorts every partition independently (the paper sorts each vessel's
    /// reports by timestamp *within* the vessel partition, §3.3.1).
    pub fn sort_within_partitions<F>(
        self,
        engine: &Engine,
        stage: &str,
        cmp: F,
    ) -> Result<Dataset<T>, EngineError>
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Send + Sync + 'static,
    {
        self.map_partitions(engine, stage, move |mut part| {
            part.sort_by(&cmp);
            part
        })
    }

    /// Concatenates two datasets (partition lists append).
    pub fn union(mut self, other: Dataset<T>) -> Dataset<T> {
        self.partitions.extend(other.partitions);
        self
    }

    /// Re-chunks into `num` contiguous partitions (a narrow coalesce; for
    /// key-based movement see [`crate::KeyedDataset`]).
    pub fn repartition(self, num: usize) -> Dataset<T> {
        Dataset::from_vec(self.collect(), num)
    }

    /// Pairs every record with a key — the entry point to wide operations.
    pub fn key_by<K, F>(
        self,
        engine: &Engine,
        stage: &str,
        f: F,
    ) -> Result<crate::KeyedDataset<K, T>, EngineError>
    where
        K: Eq + Hash + Clone + Send + Sync + 'static,
        F: Fn(&T) -> K + Send + Sync + 'static,
    {
        let kv = self.map_partitions(engine, stage, move |part| {
            part.into_iter().map(|t| (f(&t), t)).collect()
        })?;
        Ok(crate::KeyedDataset::from_dataset(kv))
    }
}

impl<K: Eq + Hash + Clone + Send + Sync + 'static, V: Send + 'static> Dataset<(K, V)> {
    /// Reinterprets a dataset of pairs as a keyed dataset.
    pub fn into_keyed(self) -> crate::KeyedDataset<K, V> {
        crate::KeyedDataset::from_dataset(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_balances_partitions() {
        let d = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(d.num_partitions(), 3);
        let sizes: Vec<usize> = d.partitions().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(d.count(), 10);
        assert_eq!(d.collect(), (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn from_vec_more_partitions_than_records() {
        let d = Dataset::from_vec(vec![1, 2], 5);
        assert_eq!(d.num_partitions(), 5);
        assert_eq!(d.count(), 2);
    }

    #[test]
    fn from_partitions_empty_is_single_empty() {
        let d: Dataset<u8> = Dataset::from_partitions(vec![]);
        assert_eq!(d.num_partitions(), 1);
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn map_filter_flat_map() {
        let e = Engine::new(4);
        let d = Dataset::from_vec((1..=8).collect::<Vec<i64>>(), 3);
        let out = d
            .map(&e, "double", |x| x * 2)
            .unwrap()
            .filter(&e, "big", |x| *x > 4)
            .unwrap()
            .flat_map(&e, "dup", |x| vec![x, x])
            .unwrap()
            .collect();
        let mut expect = Vec::new();
        for x in (1..=8).map(|x| x * 2).filter(|x| *x > 4) {
            expect.push(x);
            expect.push(x);
        }
        assert_eq!(out, expect);
    }

    #[test]
    fn sort_within_partitions_is_per_partition() {
        let e = Engine::new(2);
        let d = Dataset::from_partitions(vec![vec![3, 1, 2], vec![9, 7]]);
        let out = d
            .sort_within_partitions(&e, "sort", |a, b| a.cmp(b))
            .unwrap();
        assert_eq!(out.partitions()[0], vec![1, 2, 3]);
        assert_eq!(out.partitions()[1], vec![7, 9]);
    }

    #[test]
    fn union_and_repartition() {
        let a = Dataset::from_vec(vec![1, 2], 1);
        let b = Dataset::from_vec(vec![3], 1);
        let u = a.union(b);
        assert_eq!(u.num_partitions(), 2);
        let r = u.repartition(4);
        assert_eq!(r.num_partitions(), 4);
        assert_eq!(r.collect(), vec![1, 2, 3]);
    }

    #[test]
    fn stage_metrics_recorded() {
        let e = Engine::new(2);
        let d = Dataset::from_vec((0..100).collect::<Vec<i32>>(), 4);
        let _ = d.filter(&e, "keep-even", |x| x % 2 == 0).unwrap().collect();
        let stages = e.metrics().report();
        let s = stages.iter().find(|s| s.name == "keep-even").unwrap();
        assert_eq!(s.input_records, 100);
        assert_eq!(s.output_records, 50);
        assert_eq!(s.shuffled_records, 0);
    }

    #[test]
    fn parallelism_actually_used() {
        // With 4 threads, 4 sleeping partitions finish ~1x sleep, not 4x.
        let e = Engine::new(4);
        let d = Dataset::from_vec(vec![(); 4], 4);
        let t0 = Instant::now();
        let _ = d
            .map(&e, "sleep", |_| {
                std::thread::sleep(std::time::Duration::from_millis(50))
            })
            .unwrap()
            .collect();
        let elapsed = t0.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(170),
            "partitions did not run in parallel: {elapsed:?}"
        );
    }

    #[test]
    fn panicking_map_surfaces_as_error() {
        let e = Engine::new(2);
        let d = Dataset::from_vec((0..10).collect::<Vec<i32>>(), 4);
        let err = d
            .map(&e, "div", |x| 100 / (x % 5 - 4)) // x=4,9 → divide by zero
            .unwrap_err();
        assert_eq!(err.stage, "div");
        // The engine stays usable after the failed stage.
        let d2 = Dataset::from_vec(vec![1, 2, 3], 2);
        assert_eq!(
            d2.map(&e, "ok", |x| x + 1).unwrap().collect(),
            vec![2, 3, 4]
        );
    }
}
