//! Typed errors for stage execution.
//!
//! The engine never panics on behalf of user code: a job that panics on a
//! worker is caught there, the worker survives, and the failure surfaces to
//! the submitting stage as an [`EngineError`] carrying the stage name and
//! the panic payload. Callers decide whether to abort the pipeline or
//! retry — the pool itself stays usable either way.

use std::fmt;

/// Why a stage failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineErrorKind {
    /// A job panicked on a worker thread; the payload is the panic message.
    JobPanicked(String),
    /// The pool is shutting down and no longer accepts work.
    PoolShutdown,
    /// A worker died without reporting its result (should not happen while
    /// panics are caught; kept as a defensive terminal state).
    ResultsLost,
}

/// A failed engine stage: which stage, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineError {
    /// The stage name as passed to the dataset transformation.
    pub stage: String,
    /// The failure kind.
    pub kind: EngineErrorKind,
}

impl EngineError {
    /// Builds an error for `stage`.
    pub fn new(stage: impl Into<String>, kind: EngineErrorKind) -> EngineError {
        EngineError {
            stage: stage.into(),
            kind,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EngineErrorKind::JobPanicked(msg) => {
                write!(f, "stage '{}': job panicked: {msg}", self.stage)
            }
            EngineErrorKind::PoolShutdown => {
                write!(f, "stage '{}': thread pool shut down", self.stage)
            }
            EngineErrorKind::ResultsLost => {
                write!(f, "stage '{}': stage results lost", self.stage)
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_cause() {
        let e = EngineError::new("clean:ranges", EngineErrorKind::JobPanicked("boom".into()));
        let s = e.to_string();
        assert!(s.contains("clean:ranges") && s.contains("boom"), "{s}");
        let e = EngineError::new("x", EngineErrorKind::PoolShutdown);
        assert!(e.to_string().contains("shut down"));
    }
}
