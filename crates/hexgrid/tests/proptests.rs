//! Property tests for the hexagonal grid: the §5 DESIGN.md invariants.

use pol_geo::{haversine_km, LatLon};
use pol_hexgrid::{
    avg_edge_length_km, cell_at, cell_boundary, cell_center, children, grid_disk, grid_distance,
    neighbors, parent, parent_at, CellIndex, Resolution,
};
use proptest::prelude::*;

fn arb_latlon() -> impl Strategy<Value = LatLon> {
    // Shipping latitudes: the equal-area lattice distorts *shape* near the
    // poles (areas stay exact); tight metric assertions hold mid-latitude.
    (-70.0f64..70.0, -180.0f64..180.0).prop_map(|(lat, lon)| LatLon::new(lat, lon).unwrap())
}

fn arb_res() -> impl Strategy<Value = Resolution> {
    (0u8..=9).prop_map(|r| Resolution::new(r).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_round_trip(p in arb_latlon(), res in arb_res()) {
        let c = cell_at(p, res);
        prop_assert_eq!(CellIndex::from_raw(c.raw()), Ok(c));
        let s = c.to_string();
        let back: CellIndex = s.parse().unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn center_round_trip(p in arb_latlon(), res in arb_res()) {
        let c = cell_at(p, res);
        let c2 = cell_at(cell_center(c), res);
        if c2 != c {
            // The one permitted exception: cells in the antimeridian seam
            // column, whose centre can lie past ±180° and wrap to the other
            // edge of the lattice (documented substitution trade-off).
            let center = cell_center(c);
            let cell_width_deg = pol_hexgrid::avg_edge_length_km(res) * 2.0
                / (111.19 * center.lat_rad().cos().max(0.05));
            prop_assert!(
                180.0 - center.lon().abs() < cell_width_deg,
                "non-seam cell failed round trip: {} -> {} (centre {center:?})",
                c,
                c2
            );
        }
    }

    #[test]
    fn containment_radius(p in arb_latlon(), res in 3u8..=9) {
        let res = Resolution::new(res).unwrap();
        let c = cell_at(p, res);
        let d = haversine_km(cell_center(c), p);
        // Planar distance ≤ circumradius; spherical distance stretches by at
        // most ~1/cos(lat) in the x direction at |lat| ≤ 70° ⇒ factor ≤ 3.
        prop_assert!(d <= avg_edge_length_km(res) * 3.0,
            "{d} km from centre at res {}", res.level());
    }

    #[test]
    fn parent_child_inverse(p in arb_latlon(), res in 1u8..=9) {
        let res = Resolution::new(res).unwrap();
        let c = cell_at(p, res);
        let par = parent(c).expect("res ≥ 1 has a parent");
        prop_assert_eq!(par.resolution().level(), res.level() - 1);
        let kids = children(par).expect("res ≤ 14 has children");
        prop_assert!(kids.contains(&c), "cell must be among its parent's children");
        for k in kids {
            prop_assert_eq!(parent(k), Some(par));
        }
    }

    #[test]
    fn ancestor_chain_consistent(p in arb_latlon()) {
        let c9 = cell_at(p, Resolution::new(9).unwrap());
        // parent_at must agree with iterated parent() at every level.
        let mut cur = c9;
        for level in (0..9u8).rev() {
            cur = parent(cur).unwrap();
            prop_assert_eq!(parent_at(c9, Resolution::new(level).unwrap()), Some(cur));
        }
    }

    #[test]
    fn neighbor_symmetry(p in arb_latlon(), res in 1u8..=8) {
        let res = Resolution::new(res).unwrap();
        let c = cell_at(p, res);
        let ns = neighbors(c);
        prop_assert!(ns.len() == 6, "interior cells have 6 neighbours");
        for n in ns {
            prop_assert!(neighbors(n).contains(&c));
            prop_assert_eq!(grid_distance(c, n), Some(1));
        }
    }

    #[test]
    fn disk_size_and_membership(p in arb_latlon(), k in 0u32..4) {
        let res = Resolution::new(5).unwrap();
        let c = cell_at(p, res);
        let disk = grid_disk(c, k);
        let expect = 1 + 3 * k as usize * (k as usize + 1);
        prop_assert!(disk.len() <= expect);
        // Away from seam/poles it's exactly the hexagonal number.
        if p.lon().abs() < 150.0 && p.lat().abs() < 60.0 {
            prop_assert_eq!(disk.len(), expect);
        }
        for m in &disk {
            prop_assert!(grid_distance(c, *m).unwrap() <= k as u64);
        }
    }

    #[test]
    fn grid_distance_triangle(a in arb_latlon(), b in arb_latlon(), c in arb_latlon()) {
        let res = Resolution::new(4).unwrap();
        let (ca, cb, cc) = (cell_at(a, res), cell_at(b, res), cell_at(c, res));
        let ab = grid_distance(ca, cb).unwrap();
        let bc = grid_distance(cb, cc).unwrap();
        let ac = grid_distance(ca, cc).unwrap();
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn boundary_contains_centerish(p in arb_latlon(), res in 2u8..=8) {
        let res = Resolution::new(res).unwrap();
        let c = cell_at(p, res);
        let b = cell_boundary(c);
        // All six vertices at comparable distance from the centre.
        let center = cell_center(c);
        let ds: Vec<f64> = b.iter().map(|v| haversine_km(center, *v)).collect();
        let lo = ds.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ds.iter().cloned().fold(0.0, f64::max);
        // The equal-area projection stretches N-S vs E-W by 1/cos²(lat).
        let limit = 1.3 / p.lat_rad().cos().powi(2) + 0.3;
        prop_assert!(hi / lo < limit, "degenerate boundary {}..{} at lat {}", lo, hi, p.lat());
    }

    #[test]
    fn same_point_nested_resolutions(p in arb_latlon()) {
        // The res-7 cell of a point descends (by parent_at) to the same
        // res-6 region the point maps to, within one cell of slack (the
        // hierarchy is exact in index space; point assignment of *border*
        // points may differ by one cell, as in H3).
        let c7 = cell_at(p, Resolution::new(7).unwrap());
        let via_parent = parent_at(c7, Resolution::new(6).unwrap()).unwrap();
        let direct = cell_at(p, Resolution::new(6).unwrap());
        prop_assert!(grid_distance(via_parent, direct).unwrap() <= 1);
    }
}
