//! Characterisation tests for the grid's documented deviations from H3:
//! the antimeridian seam and the polar rows. These pin down *exactly* what
//! degrades there (and what must keep working), so the DESIGN.md
//! substitution note stays honest.

use pol_geo::{haversine_km, LatLon};
use pol_hexgrid::{
    cell_at, cell_center, children, grid_disk, neighbors, parent, CellIndex, Resolution,
};

fn res6() -> Resolution {
    Resolution::new(6).unwrap()
}

#[test]
fn seam_points_still_index_and_round_trip() {
    // Point assignment, index validity and the hierarchy never fail at the
    // seam. (The *centre* round trip is the one property the seam column
    // may break — a seam cell's centre can wrap past ±180°; see lib docs.)
    for lon in [-180.0, -179.999, 179.999, 179.95] {
        for lat in [-50.0, 0.0, 35.0, 60.0] {
            let p = LatLon::new(lat, lon).unwrap();
            let c = cell_at(p, res6());
            assert_eq!(CellIndex::from_raw(c.raw()), Ok(c));
            let center = cell_center(c);
            let c2 = cell_at(center, res6());
            assert!(
                c2 == c || 180.0 - center.lon().abs() < 0.3,
                "non-seam centre failed round trip at ({lat},{lon})"
            );
            let par = parent(c).unwrap();
            assert!(children(par).unwrap().contains(&c));
        }
    }
}

#[test]
fn seam_splits_geographically_close_points() {
    // The documented defect: two points 20 km apart across ±180° are NOT
    // lattice neighbours (distinct, far-apart index space).
    let west = LatLon::new(0.0, 179.9).unwrap();
    let east = LatLon::new(0.0, -179.9).unwrap();
    assert!(haversine_km(west, east) < 25.0);
    let cw = cell_at(west, res6());
    let ce = cell_at(east, res6());
    assert_ne!(cw, ce);
    assert!(
        !neighbors(cw).contains(&ce),
        "seam cells must not be lattice-adjacent (documented limitation)"
    );
}

#[test]
fn seam_affects_only_a_narrow_column() {
    // One cell-width away from the seam, everything is normal.
    let p = LatLon::new(0.0, 179.0).unwrap();
    let c = cell_at(p, res6());
    assert_eq!(neighbors(c).len(), 6);
    assert_eq!(grid_disk(c, 2).len(), 19);
}

#[test]
fn polar_cells_exist_and_have_reduced_neighborhoods() {
    for lat in [89.9, -89.9] {
        let p = LatLon::new(lat, 45.0).unwrap();
        let c = cell_at(p, res6());
        // The pole row is the lattice edge: some neighbours fall off the
        // indexed world; the rest behave.
        let ns = neighbors(c);
        assert!(!ns.is_empty());
        for n in &ns {
            assert!(neighbors(*n).contains(&c), "symmetry holds where defined");
        }
    }
}

#[test]
fn every_longitude_column_is_covered() {
    // Sweep the globe: no longitude produces an indexing failure and
    // adjacent sample points stay in nearby cells (except at the seam).
    let res = Resolution::new(4).unwrap();
    let mut prev: Option<CellIndex> = None;
    for i in 0..=720 {
        let lon = -180.0 + i as f64 * 0.5 - 1e-9;
        let p = LatLon::new(12.3, lon.clamp(-180.0, 179.999_999)).unwrap();
        let c = cell_at(p, res);
        if let Some(pc) = prev {
            if lon > -179.0 {
                let d = pol_hexgrid::grid_distance(pc, c).unwrap();
                assert!(d <= 2, "jump of {d} cells at lon {lon}");
            }
        }
        prev = Some(c);
    }
}

#[test]
fn full_sphere_sample_unique_centers() {
    // Cell centres are unique and indexable across a coarse global sweep.
    let res = Resolution::new(3).unwrap();
    let mut seen = std::collections::HashSet::new();
    let mut cells = std::collections::HashSet::new();
    for lat_i in -8..=8 {
        for lon_i in -17..=17 {
            let p = LatLon::new(lat_i as f64 * 10.0, lon_i as f64 * 10.0).unwrap();
            let c = cell_at(p, res);
            cells.insert(c);
            let center = cell_center(c);
            let key = ((center.lat() * 1e7) as i64, (center.lon() * 1e7) as i64);
            if !cells.contains(&c) {
                assert!(seen.insert(key), "two cells share a centre");
            }
            seen.insert(key);
        }
    }
    assert!(
        cells.len() > 200,
        "coarse sweep found {} cells",
        cells.len()
    );
}
