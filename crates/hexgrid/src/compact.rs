//! `compact` / `uncompact` — the H3 API's hierarchical set compression,
//! reproduced on this grid's exact aperture-7 hierarchy.
//!
//! `compact` replaces every complete group of seven siblings by its parent,
//! recursively, so large contiguous regions (geofences, covered-area
//! exports) are stored in the fewest mixed-resolution cells. `uncompact`
//! inverts it back to a uniform resolution. Because the hierarchy is an
//! exact integer partition (unlike H3's approximate geometric containment),
//! `uncompact(compact(S), res) == S` holds exactly for any set `S` of
//! res-`res` cells.

use crate::grid::children;
use crate::index::{CellIndex, Resolution};
use crate::lattice::parent_axial;
use std::collections::{HashMap as FxHashMap, HashSet as FxHashSet};

/// Compacts a set of same-resolution cells into the minimal equivalent
/// mixed-resolution set.
///
/// # Panics
/// When the input cells are not all at the same resolution.
pub fn compact(cells: &[CellIndex]) -> Vec<CellIndex> {
    let Some(first) = cells.first() else {
        return Vec::new();
    };
    let res = first.resolution();
    assert!(
        cells.iter().all(|c| c.resolution() == res),
        "compact requires uniform input resolution"
    );
    let mut out: Vec<CellIndex> = Vec::new();
    let mut level: FxHashSet<CellIndex> = cells.iter().copied().collect();
    let mut current = res;
    while !level.is_empty() {
        // At resolution 0 there is nothing coarser to collapse into.
        let Some(parent_res) = current.coarser() else {
            break;
        };
        // Count children present per parent.
        let mut groups: FxHashMap<CellIndex, u8> = FxHashMap::default();
        for cell in &level {
            let (pax, _) = parent_axial(cell.axial());
            if let Some(p) = CellIndex::from_axial(pax, parent_res) {
                *groups.entry(p).or_insert(0) += 1;
            }
        }
        let mut next: FxHashSet<CellIndex> = FxHashSet::default();
        for (p, count) in groups {
            debug_assert!(count <= 7);
            if count == 7 {
                next.insert(p);
            } else {
                // Emit the incomplete group's members as-is. `p` sits one
                // level above `current`, so it always has children; the
                // `flatten` makes that a no-op rather than a panic.
                for c in children(p).into_iter().flatten() {
                    if level.contains(&c) {
                        out.push(c);
                    }
                }
            }
        }
        level = next;
        current = parent_res;
    }
    out.extend(level);
    out.sort_unstable();
    out
}

/// Expands a mixed-resolution set back to uniform `res` cells.
/// Cells already finer than `res` are rejected.
///
/// # Panics
/// When any input cell is finer than `res`.
pub fn uncompact(cells: &[CellIndex], res: Resolution) -> Vec<CellIndex> {
    let mut out = Vec::new();
    for &cell in cells {
        assert!(
            cell.resolution() <= res,
            "uncompact target {res} is coarser than cell {cell}"
        );
        let mut frontier = vec![cell];
        while frontier.first().is_some_and(|c| c.resolution() < res) {
            frontier = frontier
                .into_iter()
                .flat_map(|c| children(c).into_iter().flatten())
                .collect();
        }
        out.extend(frontier);
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{cell_at, grid_disk};
    use pol_geo::LatLon;

    fn res(r: u8) -> Resolution {
        Resolution::new(r).unwrap()
    }

    #[test]
    fn empty_and_single() {
        assert!(compact(&[]).is_empty());
        let c = cell_at(LatLon::new(10.0, 10.0).unwrap(), res(6));
        assert_eq!(compact(&[c]), vec![c]);
        assert_eq!(uncompact(&[c], res(6)), vec![c]);
    }

    #[test]
    fn full_sibling_group_compacts_to_parent() {
        let p = cell_at(LatLon::new(10.0, 10.0).unwrap(), res(5));
        let kids = children(p).unwrap();
        let compacted = compact(&kids);
        assert_eq!(compacted, vec![p]);
    }

    #[test]
    fn incomplete_group_stays_fine() {
        let p = cell_at(LatLon::new(10.0, 10.0).unwrap(), res(5));
        let kids = children(p).unwrap();
        let six = &kids[..6];
        let compacted = compact(six);
        assert_eq!(compacted.len(), 6);
        assert!(compacted.iter().all(|c| c.resolution().level() == 6));
    }

    #[test]
    fn multi_level_compaction() {
        // All 49 grandchildren of one res-4 cell collapse to it.
        let g = cell_at(LatLon::new(40.0, -30.0).unwrap(), res(4));
        let mut grandkids = Vec::new();
        for c in children(g).unwrap() {
            grandkids.extend(children(c).unwrap());
        }
        assert_eq!(grandkids.len(), 49);
        assert_eq!(compact(&grandkids), vec![g]);
    }

    #[test]
    fn round_trip_on_a_disk() {
        let center = cell_at(LatLon::new(51.0, 1.5).unwrap(), res(6));
        let mut disk = grid_disk(center, 6); // 127 cells: mixed groups
        disk.sort_unstable();
        let compacted = compact(&disk);
        assert!(
            compacted.len() < disk.len(),
            "{} !< {}",
            compacted.len(),
            disk.len()
        );
        let mut back = uncompact(&compacted, res(6));
        back.sort_unstable();
        assert_eq!(back, disk, "exact round trip");
    }

    #[test]
    fn compacted_set_partitions() {
        // No cell in the output is an ancestor of another.
        let center = cell_at(LatLon::new(-20.0, 60.0).unwrap(), res(6));
        let disk = grid_disk(center, 8);
        let compacted = compact(&disk);
        let set: FxHashSet<CellIndex> = compacted.iter().copied().collect();
        for &c in &compacted {
            let mut cur = c;
            while let Some(p) = crate::grid::parent(cur) {
                assert!(!set.contains(&p), "ancestor {p} of {c} in output");
                cur = p;
            }
        }
    }

    #[test]
    #[should_panic(expected = "uniform input resolution")]
    fn mixed_input_rejected() {
        let a = cell_at(LatLon::new(0.0, 0.0).unwrap(), res(5));
        let b = cell_at(LatLon::new(0.0, 0.0).unwrap(), res(6));
        let _ = compact(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "coarser than cell")]
    fn uncompact_rejects_finer_input() {
        let c = cell_at(LatLon::new(0.0, 0.0).unwrap(), res(6));
        let _ = uncompact(&[c], res(5));
    }
}
