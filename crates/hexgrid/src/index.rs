//! The 64-bit cell index.
//!
//! Layout (H3-like, from the most significant bit):
//!
//! ```text
//! bits 63..58   reserved, always 0
//! bits 57..54   resolution (0..=15)
//! bits 53..45   base cell id (9 bits, < 512)
//! bits 44..42   resolution-1 digit   (0..=6, or 7 = unused)
//! bits 41..39   resolution-2 digit
//!   …                                (3 bits per level)
//! bits  2..0    resolution-15 digit
//! ```
//!
//! Digits for levels deeper than the cell's resolution are set to `7`
//! (0b111), so each cell has a single canonical `u64` and coarse/fine cells
//! never collide. Within one resolution, indices sort so that whole subtrees
//! are contiguous (children of one parent cluster together) — a property
//! range scans over the inventory exploit.

use crate::lattice::{child_axial, parent_axial, Axial, Lattice, MAX_RES};
use std::fmt;

/// A grid resolution, `0..=15`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Resolution(u8);

impl Resolution {
    /// Creates a resolution; `None` if above 15.
    pub const fn new(r: u8) -> Option<Self> {
        if r <= MAX_RES {
            Some(Self(r))
        } else {
            None
        }
    }

    /// Creates a resolution from a literal known to be in `0..=15`.
    ///
    /// Intended for static configuration defaults: when used in a `const`
    /// context an out-of-range literal is rejected at compile time, so the
    /// check never reaches a runtime path.
    // lint: allow(no_unwrap) — the branch is evaluated at compile time for
    // const arguments; out-of-range literals fail the build, not the run.
    pub const fn new_static(r: u8) -> Self {
        match Self::new(r) {
            Some(res) => res,
            None => panic!("static resolution out of range"),
        }
    }

    /// The raw resolution level.
    #[inline]
    pub const fn level(self) -> u8 {
        self.0
    }

    /// One resolution coarser, if any.
    pub const fn coarser(self) -> Option<Resolution> {
        if self.0 == 0 {
            None
        } else {
            Some(Resolution(self.0 - 1))
        }
    }

    /// One resolution finer, if any.
    pub const fn finer(self) -> Option<Resolution> {
        if self.0 == MAX_RES {
            None
        } else {
            Some(Resolution(self.0 + 1))
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Error returned when a raw `u64` is not a valid cell index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidCellIndex(pub u64);

impl fmt::Display for InvalidCellIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cell index {:#018x}", self.0)
    }
}

impl std::error::Error for InvalidCellIndex {}

const RES_SHIFT: u32 = 54;
const BASE_SHIFT: u32 = 45;
const DIGIT_BITS: u32 = 3;

/// A cell of the global hexagonal grid, packed into 64 bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellIndex(u64);

impl CellIndex {
    /// Builds an index from its components. `digits[i]` is the digit for
    /// resolution level `i + 1`; only the first `res` entries are read.
    pub(crate) fn from_parts(res: Resolution, base: u16, digits: &[u8]) -> CellIndex {
        debug_assert!(base < 512);
        debug_assert!(digits.len() >= res.level() as usize);
        let mut v = (res.level() as u64) << RES_SHIFT | (base as u64) << BASE_SHIFT;
        for level in 1..=MAX_RES as usize {
            let d = if level <= res.level() as usize {
                debug_assert!(digits[level - 1] < 7);
                digits[level - 1] as u64
            } else {
                7
            };
            v |= d << (DIGIT_BITS * (MAX_RES as u32 - level as u32));
        }
        CellIndex(v)
    }

    /// Validates and wraps a raw 64-bit value.
    pub fn from_raw(raw: u64) -> Result<CellIndex, InvalidCellIndex> {
        let err = InvalidCellIndex(raw);
        if raw >> (RES_SHIFT + 4) != 0 {
            return Err(err);
        }
        let res = ((raw >> RES_SHIFT) & 0xF) as u8;
        let base = ((raw >> BASE_SHIFT) & 0x1FF) as u16;
        let lattice = Lattice::get();
        if lattice.base_axial(base).is_none() {
            return Err(err);
        }
        for level in 1..=MAX_RES {
            let d = (raw >> (DIGIT_BITS * (MAX_RES - level) as u32)) & 0b111;
            let used = level <= res;
            if used && d == 7 {
                return Err(err);
            }
            if !used && d != 7 {
                return Err(err);
            }
        }
        Ok(CellIndex(raw))
    }

    /// The raw 64-bit representation.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cell's resolution.
    #[inline]
    pub fn resolution(self) -> Resolution {
        Resolution(((self.0 >> RES_SHIFT) & 0xF) as u8)
    }

    /// The resolution-0 ancestor's id.
    #[inline]
    pub fn base_cell(self) -> u16 {
        ((self.0 >> BASE_SHIFT) & 0x1FF) as u16
    }

    /// Digit at a resolution level in `1..=res` (`None` outside that range).
    #[inline]
    pub fn digit(self, level: u8) -> Option<u8> {
        if level == 0 || level > self.resolution().level() {
            return None;
        }
        Some(((self.0 >> (DIGIT_BITS * (MAX_RES - level) as u32)) & 0b111) as u8)
    }

    /// Axial coordinates of this cell in its resolution's lattice.
    pub fn axial(self) -> Axial {
        let lattice = Lattice::get();
        // lint: allow(no_unwrap) — a CellIndex can only be constructed
        // through `from_axial`/`new`, which validate the base cell against
        // the lattice table, so the lookup cannot miss.
        let mut ax = lattice
            .base_axial(self.base_cell())
            .expect("validated index has a known base cell");
        for level in 1..=self.resolution().level() {
            // lint: allow(no_unwrap) — `level` iterates 1..=resolution, the
            // exact range for which `digit` returns Some.
            let d = self.digit(level).expect("level within resolution");
            ax = child_axial(ax, d);
        }
        ax
    }

    /// Builds the index for the cell with axial coordinates `ax` at `res`,
    /// or `None` when the coordinate chain walks off the base-cell table
    /// (i.e. the coordinates do not correspond to a point on Earth).
    pub fn from_axial(ax: Axial, res: Resolution) -> Option<CellIndex> {
        let lattice = Lattice::get();
        let mut digits = [0u8; MAX_RES as usize];
        let mut cur = ax;
        for level in (1..=res.level()).rev() {
            let (p, d) = parent_axial(cur);
            digits[level as usize - 1] = d;
            cur = p;
        }
        let base = lattice.base_id(cur)?;
        Some(CellIndex::from_parts(res, base, &digits))
    }
}

impl fmt::Debug for CellIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CellIndex({:015x})", self.0)
    }
}

impl fmt::Display for CellIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:015x}", self.0)
    }
}

impl std::str::FromStr for CellIndex {
    type Err = InvalidCellIndex;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let raw = u64::from_str_radix(s, 16).map_err(|_| InvalidCellIndex(0))?;
        CellIndex::from_raw(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;

    #[test]
    fn resolution_bounds() {
        assert!(Resolution::new(0).is_some());
        assert!(Resolution::new(15).is_some());
        assert!(Resolution::new(16).is_none());
        assert_eq!(Resolution::new(0).unwrap().coarser(), None);
        assert_eq!(Resolution::new(15).unwrap().finer(), None);
        assert_eq!(Resolution::new(4).unwrap().finer().unwrap().level(), 5);
    }

    #[test]
    fn parts_round_trip() {
        let res = Resolution::new(5).unwrap();
        let digits = [3u8, 0, 6, 2, 5];
        let c = CellIndex::from_parts(res, 42, &digits);
        assert_eq!(c.resolution(), res);
        assert_eq!(c.base_cell(), 42);
        for (i, d) in digits.iter().enumerate() {
            assert_eq!(c.digit(i as u8 + 1), Some(*d));
        }
        assert_eq!(c.digit(0), None);
        assert_eq!(c.digit(6), None);
    }

    #[test]
    fn raw_validation() {
        let res = Resolution::new(3).unwrap();
        let c = CellIndex::from_parts(res, 7, &[1, 2, 3]);
        assert_eq!(CellIndex::from_raw(c.raw()), Ok(c));
        // Flipping an unused digit away from 7 invalidates.
        let bad = c.raw() & !0b111; // level-15 digit -> 0
        assert!(CellIndex::from_raw(bad).is_err());
        // Reserved high bits must be zero.
        assert!(CellIndex::from_raw(c.raw() | 1 << 63).is_err());
        // Unknown base cell.
        let worst = (3u64) << 54 | (511u64) << 45 | 0x1FFFFFFFFFF8 >> 1; // garbage
        let _ = CellIndex::from_raw(worst); // must not panic
    }

    #[test]
    fn axial_round_trip_via_digits() {
        let lattice = Lattice::get();
        let res = Resolution::new(7).unwrap();
        for id in (0..lattice.base_cell_count() as u16).step_by(17) {
            let base_ax = lattice.base_axial(id).unwrap();
            // Descend to an arbitrary res-7 descendant.
            let mut ax = base_ax;
            for d in [1u8, 4, 0, 6, 2, 3, 5] {
                ax = crate::lattice::child_axial(ax, d);
            }
            let idx = CellIndex::from_axial(ax, res).unwrap();
            assert_eq!(idx.axial(), ax);
            assert_eq!(idx.base_cell(), id);
        }
    }

    #[test]
    fn display_parse_round_trip() {
        let c = CellIndex::from_parts(Resolution::new(6).unwrap(), 13, &[1, 2, 3, 4, 5, 6]);
        let s = c.to_string();
        assert_eq!(s.len(), 15);
        let back: CellIndex = s.parse().unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn same_resolution_ordering_clusters_siblings() {
        // Among cells of one resolution, the 7 children of a parent form a
        // contiguous block: no child of a *different* parent sorts between
        // them. (Range scans over a subtree rely on this.)
        let res3 = Resolution::new(3).unwrap();
        let mine: Vec<u64> = (0..7)
            .map(|d| CellIndex::from_parts(res3, 10, &[2, 5, d]).raw())
            .collect();
        let lo = *mine.iter().min().unwrap();
        let hi = *mine.iter().max().unwrap();
        // Children of the neighbouring parents (2,4) and (2,6) must fall
        // strictly outside [lo, hi].
        for other_parent_digit in [4u8, 6] {
            for d in 0..7 {
                let o = CellIndex::from_parts(res3, 10, &[2, other_parent_digit, d]).raw();
                assert!(o < lo || o > hi, "foreign child inside sibling block");
            }
        }
    }
}
