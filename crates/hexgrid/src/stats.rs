//! Grid-level statistics: cell counts, areas and edge lengths per
//! resolution. These are the denominators of the paper's Table 4
//! ("H3 Utilization") and the knobs of §3.3.3's resolution choice.

use crate::index::Resolution;
use crate::lattice::BASE_CELL_AREA_DIVISOR;
use pol_geo::EARTH_SURFACE_KM2;

/// Nominal number of cells covering the globe at a resolution:
/// `122 · 7^res` by the area calibration (H3 itself has `2 + 120·7^res`;
/// within 2 % at every resolution).
pub fn num_cells(res: Resolution) -> u64 {
    (BASE_CELL_AREA_DIVISOR as u64) * 7u64.pow(res.level() as u32)
}

/// Exact spherical area of every cell at a resolution, in km².
/// (Exact because the lattice lives on an equal-area projection.)
pub fn avg_cell_area_km2(res: Resolution) -> f64 {
    EARTH_SURFACE_KM2 / (BASE_CELL_AREA_DIVISOR * 7f64.powi(res.level() as i32))
}

/// Planar edge length (= circumradius) of cells at a resolution, in km.
pub fn avg_edge_length_km(res: Resolution) -> f64 {
    // A = (3√3/2)·s²  ⇒  s = √(2A / 3√3)
    (2.0 * avg_cell_area_km2(res) / (3.0 * 3f64.sqrt())).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(r: u8) -> Resolution {
        Resolution::new(r).unwrap()
    }

    #[test]
    fn cell_counts_match_h3_scale() {
        // H3: res 6 → 14,117,882 cells; res 7 → 98,825,162.
        let n6 = num_cells(res(6));
        let n7 = num_cells(res(7));
        assert!((n6 as f64 / 14_117_882.0 - 1.0).abs() < 0.02, "res6: {n6}");
        assert!((n7 as f64 / 98_825_162.0 - 1.0).abs() < 0.02, "res7: {n7}");
        assert_eq!(n7, n6 * 7);
    }

    #[test]
    fn areas_match_h3_scale() {
        // H3 average hexagon areas: res 6 ≈ 36.13 km², res 7 ≈ 5.16 km².
        let a6 = avg_cell_area_km2(res(6));
        let a7 = avg_cell_area_km2(res(7));
        assert!((a6 - 36.1).abs() < 1.0, "res6 area {a6}");
        assert!((a7 - 5.16).abs() < 0.2, "res7 area {a7}");
    }

    #[test]
    fn area_times_count_is_earth() {
        for r in 0..=15u8 {
            let total = avg_cell_area_km2(res(r)) * num_cells(res(r)) as f64;
            assert!((total - EARTH_SURFACE_KM2).abs() / EARTH_SURFACE_KM2 < 1e-9);
        }
    }

    #[test]
    fn edge_length_decreases_by_sqrt7() {
        for r in 0..15u8 {
            let ratio = avg_edge_length_km(res(r)) / avg_edge_length_km(res(r + 1));
            assert!((ratio - 7f64.sqrt()).abs() < 1e-9);
        }
    }
}
