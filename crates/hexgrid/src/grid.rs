//! Public grid operations: point→cell, cell geometry, hierarchy traversal,
//! adjacency, k-rings and regional cell enumeration.

use crate::index::{CellIndex, Resolution};
use crate::lattice::{child_axial, parent_axial, Axial, Lattice};
use pol_geo::project::{from_xy, to_xy, WorldXY};
use pol_geo::{BBox, LatLon};
use std::collections::{HashSet, VecDeque};

/// Returns the cell containing `p` at the given resolution.
///
/// This is the hot path of the paper's §3.3.3 "projection to spatial index"
/// step: a projection, a 2×2 solve, a hex rounding and ≤ `res` integer
/// parent steps. Never fails for a valid [`LatLon`].
pub fn cell_at(p: LatLon, res: Resolution) -> CellIndex {
    let lattice = Lattice::get();
    let ax = lattice.axial_of(p, res.level());
    // lint: allow(no_unwrap) — the base-cell table is built to cover the
    // whole world rectangle plus a drift margin, so a valid LatLon always
    // lands on an indexed base cell; this is a checked-at-construction
    // invariant of the lattice, not an input condition.
    CellIndex::from_axial(ax, res)
        .expect("base-cell table covers the world rectangle plus drift margin")
}

/// Axial coordinates of the cell containing `p` at `res` — the prefix of
/// [`cell_at`] without the index construction (no digit walk, no base-cell
/// probe). Within one resolution, axial coordinates identify a cell
/// uniquely, so `cell_axial_at(p, r) == cell_at(p, r).axial()` for every
/// valid point; hot lookups keyed per-resolution (the port geofence) use
/// this to skip roughly half of `cell_at`'s work.
pub fn cell_axial_at(p: LatLon, res: Resolution) -> Axial {
    Lattice::get().axial_of(p, res.level())
}

/// Geographic centre of a cell.
pub fn cell_center(cell: CellIndex) -> LatLon {
    let lattice = Lattice::get();
    let ax = cell.axial();
    from_xy(lattice.basis(cell.resolution().level()).to_world(ax))
}

/// The six boundary vertices of a cell, in CCW order.
pub fn cell_boundary(cell: CellIndex) -> [LatLon; 6] {
    let lattice = Lattice::get();
    let basis = lattice.basis(cell.resolution().level());
    let c = basis.to_world(cell.axial());
    let offs = basis.vertex_offsets();
    std::array::from_fn(|i| {
        from_xy(WorldXY {
            x: c.x + offs[i].x,
            y: c.y + offs[i].y,
        })
    })
}

/// Parent of a cell at the next coarser resolution; `None` at resolution 0.
pub fn parent(cell: CellIndex) -> Option<CellIndex> {
    let res = cell.resolution().coarser()?;
    let (pax, _digit) = parent_axial(cell.axial());
    CellIndex::from_axial(pax, res)
}

/// Ancestor of a cell at an arbitrary coarser resolution.
/// Returns the cell itself when `res` equals the cell's resolution and
/// `None` when `res` is finer.
pub fn parent_at(cell: CellIndex, res: Resolution) -> Option<CellIndex> {
    if res > cell.resolution() {
        return None;
    }
    let mut ax = cell.axial();
    for _ in res.level()..cell.resolution().level() {
        ax = parent_axial(ax).0;
    }
    CellIndex::from_axial(ax, res)
}

/// The seven children of a cell at the next finer resolution, centre child
/// first. `None` at resolution 15.
pub fn children(cell: CellIndex) -> Option<[CellIndex; 7]> {
    let res = cell.resolution().finer()?;
    let pax = cell.axial();
    Some(std::array::from_fn(|d| {
        // lint: allow(no_unwrap) — every child centre lies inside its
        // parent's hexagon, so children of an indexed cell stay within the
        // base-cell table's drift margin by construction.
        CellIndex::from_axial(child_axial(pax, d as u8), res)
            .expect("children of an on-earth cell stay within the table margin")
    }))
}

/// The lattice neighbours of a cell (up to six).
///
/// Cells in the extreme polar rows or at the antimeridian seam may have
/// fewer: a lattice neighbour that falls outside the indexed world
/// rectangle is skipped (there is no geography there).
pub fn neighbors(cell: CellIndex) -> Vec<CellIndex> {
    let res = cell.resolution();
    let ax = cell.axial();
    Axial::NEIGHBOR_OFFSETS
        .iter()
        .filter_map(|off| CellIndex::from_axial(ax + *off, res))
        .collect()
}

/// All cells within hex-grid distance `k` of `origin` (inclusive), i.e. the
/// filled k-ring. Contains `1 + 3k(k+1)` cells away from world edges.
pub fn grid_disk(origin: CellIndex, k: u32) -> Vec<CellIndex> {
    let res = origin.resolution();
    let oax = origin.axial();
    let mut out = Vec::with_capacity(1 + 3 * k as usize * (k as usize + 1));
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    queue.push_back((oax, 0u32));
    seen.insert(oax);
    while let Some((ax, d)) = queue.pop_front() {
        if let Some(c) = CellIndex::from_axial(ax, res) {
            out.push(c);
        }
        if d == k {
            continue;
        }
        for off in Axial::NEIGHBOR_OFFSETS {
            let n = ax + off;
            if seen.insert(n) {
                queue.push_back((n, d + 1));
            }
        }
    }
    out
}

/// Hex-grid distance between two cells of the same resolution
/// (`None` when resolutions differ).
pub fn grid_distance(a: CellIndex, b: CellIndex) -> Option<u64> {
    if a.resolution() != b.resolution() {
        return None;
    }
    Some(a.axial().distance(b.axial()))
}

/// Enumerates every cell whose centre lies inside the bounding box.
///
/// Used by geofence construction and the regional views (paper Figure 4).
/// The box must not cross the antimeridian. Cost is proportional to the
/// number of candidate lattice sites, so keep `res` commensurate with the
/// box size.
pub fn cells_in_bbox(bbox: &BBox, res: Resolution) -> Vec<CellIndex> {
    let lattice = Lattice::get();
    let basis = lattice.basis(res.level());
    // Axial bounds from the four corners (the basis is rotated for res > 0,
    // so take min/max over all corners plus margin).
    let corners = [
        to_xy(LatLon::wrapped(bbox.min_lat, bbox.min_lon)),
        to_xy(LatLon::wrapped(bbox.min_lat, bbox.max_lon)),
        to_xy(LatLon::wrapped(bbox.max_lat, bbox.min_lon)),
        to_xy(LatLon::wrapped(bbox.max_lat, bbox.max_lon)),
    ];
    let mut qmin = i64::MAX;
    let mut qmax = i64::MIN;
    let mut rmin = i64::MAX;
    let mut rmax = i64::MIN;
    for c in corners {
        let (qf, rf) = basis.to_fractional(c);
        qmin = qmin.min(qf.floor() as i64);
        qmax = qmax.max(qf.ceil() as i64);
        rmin = rmin.min(rf.floor() as i64);
        rmax = rmax.max(rf.ceil() as i64);
    }
    let mut out = Vec::new();
    for q in (qmin - 1)..=(qmax + 1) {
        for r in (rmin - 1)..=(rmax + 1) {
            let center = from_xy(basis.to_world(Axial::new(q, r)));
            if bbox.contains(center) {
                if let Some(c) = CellIndex::from_axial(Axial::new(q, r), res) {
                    out.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::avg_edge_length_km;
    use pol_geo::haversine_km;

    fn ll(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    fn res(r: u8) -> Resolution {
        Resolution::new(r).unwrap()
    }

    #[test]
    fn cell_center_round_trips() {
        for r in [0u8, 2, 4, 6, 7, 9] {
            for (lat, lon) in [
                (51.0, 1.5),
                (0.0, 0.0),
                (-34.0, 18.5),
                (35.45, 139.65),
                (60.0, 25.0),
                (-55.9, -67.2),
            ] {
                let c = cell_at(ll(lat, lon), res(r));
                let center = cell_center(c);
                let c2 = cell_at(center, res(r));
                assert_eq!(c, c2, "res {r} at ({lat},{lon})");
            }
        }
    }

    #[test]
    fn point_within_circumradius_of_cell_center() {
        for r in [3u8, 6, 7] {
            // Planar distance ≤ circumradius; the true spherical distance
            // stretches by up to 1/cos(lat) in the north-south direction
            // (equal-area projections distort shape, not area). Test points
            // stay below 52° lat ⇒ stretch ≤ 1.63.
            let max_km = avg_edge_length_km(res(r)) * 1.7;
            for (lat, lon) in [(51.0, 1.5), (1.26, 103.8), (40.6, -74.0), (-33.9, 18.4)] {
                let c = cell_at(ll(lat, lon), res(r));
                let d = haversine_km(cell_center(c), ll(lat, lon));
                assert!(d <= max_km, "res {r} ({lat},{lon}): {d} km > {max_km}");
            }
        }
    }

    #[test]
    fn parent_of_children_is_self() {
        let c = cell_at(ll(51.0, 1.5), res(6));
        let kids = children(c).unwrap();
        assert_eq!(kids.len(), 7);
        let set: HashSet<_> = kids.iter().collect();
        assert_eq!(set.len(), 7, "children must be distinct");
        for k in kids {
            assert_eq!(parent(k), Some(c));
            assert_eq!(k.resolution().level(), 7);
        }
        // Centre child shares the parent's centre.
        let d = haversine_km(cell_center(kids[0]), cell_center(c));
        assert!(d < 0.01, "centre child offset {d} km");
    }

    #[test]
    fn parent_at_walks_multiple_levels() {
        let c = cell_at(ll(51.0, 1.5), res(9));
        let p6 = parent_at(c, res(6)).unwrap();
        assert_eq!(p6.resolution().level(), 6);
        // Same as applying parent() three times.
        let manual = parent(parent(parent(c).unwrap()).unwrap()).unwrap();
        assert_eq!(p6, manual);
        // Identity and error cases.
        assert_eq!(parent_at(c, res(9)), Some(c));
        assert_eq!(parent_at(c, res(10)), None);
    }

    #[test]
    fn neighbors_are_symmetric_distance_one() {
        let c = cell_at(ll(51.0, 1.5), res(6));
        let ns = neighbors(c);
        assert_eq!(ns.len(), 6);
        for n in ns {
            assert_eq!(grid_distance(c, n), Some(1));
            assert!(neighbors(n).contains(&c), "adjacency must be symmetric");
        }
    }

    #[test]
    fn grid_disk_sizes() {
        let c = cell_at(ll(51.0, 1.5), res(6));
        assert_eq!(grid_disk(c, 0), vec![c]);
        assert_eq!(grid_disk(c, 1).len(), 7);
        assert_eq!(grid_disk(c, 2).len(), 19);
        assert_eq!(grid_disk(c, 3).len(), 37);
        // Every member within distance k.
        for m in grid_disk(c, 3) {
            assert!(grid_distance(c, m).unwrap() <= 3);
        }
    }

    #[test]
    fn grid_distance_requires_same_resolution() {
        let a = cell_at(ll(51.0, 1.5), res(6));
        let b = cell_at(ll(51.0, 1.5), res(7));
        assert_eq!(grid_distance(a, b), None);
    }

    #[test]
    fn boundary_vertices_surround_center() {
        let c = cell_at(ll(51.0, 1.5), res(6));
        let center = cell_center(c);
        let boundary = cell_boundary(c);
        let mut min_d = f64::INFINITY;
        let mut max_d: f64 = 0.0;
        for v in boundary {
            let d = haversine_km(center, v);
            min_d = min_d.min(d);
            max_d = max_d.max(d);
        }
        // Regular in the plane; on the sphere at 51°N the radii spread by
        // up to 1/cos²(51°) ≈ 2.5 between the E-W and N-S directions.
        assert!(max_d / min_d < 2.6, "vertex radii {min_d}..{max_d}");
    }

    #[test]
    fn bbox_enumeration_matches_point_assignment() {
        let bbox = BBox::new(50.5, 0.0, 51.5, 2.0).unwrap();
        let cells = cells_in_bbox(&bbox, res(5));
        assert!(!cells.is_empty());
        let set: HashSet<_> = cells.iter().copied().collect();
        assert_eq!(set.len(), cells.len(), "no duplicates");
        // Any point in the (slightly shrunk) box maps to a cell whose centre
        // is inside the box or just outside the margin.
        for i in 0..50 {
            let lat = 50.55 + 0.9 * (i as f64 * 0.618) % 0.9;
            let lon = 0.1 + 1.8 * (i as f64 * 0.377) % 1.8;
            let c = cell_at(ll(lat, lon), res(5));
            if bbox.contains(cell_center(c)) {
                assert!(set.contains(&c), "cell {c} with centre in box missing");
            }
        }
    }

    #[test]
    fn nearby_points_share_or_neighbor_cells() {
        // Two points 500 m apart at res 7 (edge ~1.4 km) are in the same
        // cell or adjacent cells.
        let a = ll(51.0, 1.5);
        let b = pol_geo::destination(a, 45.0, 0.5);
        let ca = cell_at(a, res(7));
        let cb = cell_at(b, res(7));
        let d = grid_distance(ca, cb).unwrap();
        assert!(d <= 1, "distance {d}");
    }

    #[test]
    fn distinct_far_points_get_distinct_cells() {
        let c1 = cell_at(ll(51.0, 1.5), res(6));
        let c2 = cell_at(ll(52.0, 1.5), res(6));
        assert_ne!(c1, c2);
    }

    #[test]
    fn polar_points_are_indexed() {
        for r in [0u8, 4, 6] {
            for (lat, lon) in [(90.0, 0.0), (-90.0, 0.0), (89.999, 179.9), (-89.5, -120.0)] {
                let c = cell_at(ll(lat, lon), res(r));
                // Must round-trip through validation.
                assert_eq!(CellIndex::from_raw(c.raw()), Ok(c));
            }
        }
    }
}
