//! # pol-hexgrid — hexagonal hierarchical geospatial index
//!
//! A clean-room substitute for the Uber **H3** index the paper builds on.
//! §3.2.1 of the paper states the methodology is grid-agnostic as long as the
//! grid satisfies six requirements; this crate satisfies all of them:
//!
//! 1. **Global**: every `(lat, lon)` maps to a cell at every resolution.
//! 2. **Equal area**: cells at one resolution cover *exactly* equal spherical
//!    areas, because the lattice lives on a Lambert cylindrical equal-area
//!    plane (H3 cells only approximate this).
//! 3. **Hexagonal adjacency**: every cell has six neighbours at a fixed
//!    centre distance (H3 additionally has 12 pentagons per resolution; we
//!    have none — our defect is instead a lattice seam at the antimeridian,
//!    see below).
//! 4. **Hierarchical**: aperture-7 resolutions 0–15. Parent/child is *exact
//!    integer arithmetic* on the index-7 hexagonal sublattice, so the 7
//!    children of a cell partition the child resolution exactly.
//! 5. **Performant**: `latlon→cell` is a projection, a 2×2 solve, a hex
//!    rounding and ≤15 integer steps; no allocation.
//! 6. **Interoperable**: cells are 64-bit integers with an H3-like layout
//!    (resolution + base cell + 3-bit digit per level) printed as hex.
//!
//! Cell areas are calibrated to H3: resolution 0 has 122 cells' worth of
//! area (`4πR²/122`), so resolution 6 ≈ 35.5 km² (H3: 36.1 km²) and
//! resolution 7 ≈ 5.08 km² (H3: 5.16 km²), keeping the paper's Table 4
//! directly comparable.
//!
//! ## The antimeridian seam
//!
//! The rotated aperture-7 lattice cannot be made periodic around the globe,
//! so cells on either side of ±180° longitude are *not* lattice neighbours,
//! and a cell in the seam column can have its nominal centre past ±180°
//! (which wraps to the opposite map edge, so `cell_at(cell_center(c)) == c`
//! holds everywhere *except* that one column). Per-cell statistics and
//! data-driven transitions (the paper's workload) are unaffected; only
//! grid-adjacency queries (`neighbors`, `grid_disk`) degrade in a
//! ~1-cell-wide column over the mid-Pacific. This substitution trade-off is
//! documented in DESIGN.md.

#![deny(missing_docs)]

pub mod compact;
pub mod grid;
pub mod index;
pub mod lattice;
pub mod stats;

pub use compact::{compact, uncompact};
pub use grid::{
    cell_at, cell_axial_at, cell_boundary, cell_center, cells_in_bbox, children, grid_disk,
    grid_distance, neighbors, parent, parent_at,
};
pub use index::{CellIndex, InvalidCellIndex, Resolution};
pub use lattice::Axial;
pub use stats::{avg_cell_area_km2, avg_edge_length_km, num_cells};
