//! Hexagonal lattice mathematics: bases per resolution, hex rounding, and
//! the aperture-7 sublattice arithmetic that powers the exact hierarchy.
//!
//! ## Geometry
//!
//! Cells are pointy-top hexagons on the equal-area plane (`pol_geo::project`).
//! A cell with axial coordinates `(q, r)` at resolution `ρ` has its centre at
//! `B(ρ) · (q, r)ᵀ` where `B(ρ)` is the 2×2 lattice basis for that
//! resolution. Resolution 0 uses the unrotated pointy-top basis
//! `b1 = s·(√3, 0)`, `b2 = s·(√3/2, 3/2)` with circumradius `s` chosen so the
//! hexagon area is `4πR²/122` (H3-calibrated).
//!
//! ## Aperture-7 hierarchy
//!
//! Each finer resolution is the index-7 hexagonal sublattice refinement:
//! parent basis vectors expressed in child coordinates are `p1 = 2·k1 + k2`
//! and `p2 = −k1 + 3·k2`, i.e. `B_parent = B_child · T` with
//! `T = [[2, −1], [1, 3]]` (columns are child-coordinates of the parent
//! basis). Therefore `B(ρ+1) = B(ρ) · T⁻¹`, which shrinks areas by 7 and
//! rotates by `atan(√3/5) ≈ 19.107°` — the same "class II/III" alternating
//! skew H3 exhibits.
//!
//! The quotient `Z²/TZ²` has exactly 7 residues and the residue of `(q, r)`
//! is `(3q + r) mod 7`. The seven residue representatives are the origin and
//! its six axial unit neighbours — so *every* child cell is either the
//! centre child of its parent or an immediate neighbour of that centre:
//! `child = T·parent + DIGIT_OFFSET[d]`, `d ∈ 0..7`. This yields an exact
//! integer partition (each cell has exactly one parent and seven children).

use pol_geo::project::{to_xy, WorldXY, WORLD_HEIGHT_KM, WORLD_WIDTH_KM};
use pol_geo::{LatLon, EARTH_SURFACE_KM2};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Number of resolution-0 cells' worth of area on the sphere (H3 has 122
/// base cells; we calibrate cell areas to match).
pub const BASE_CELL_AREA_DIVISOR: f64 = 122.0;

/// Maximum resolution supported by the 64-bit index layout.
pub const MAX_RES: u8 = 15;

/// Axial coordinates of a cell within its resolution's lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Axial {
    /// Column coordinate.
    pub q: i64,
    /// Row coordinate.
    pub r: i64,
}

impl Axial {
    /// Creates axial coordinates.
    pub const fn new(q: i64, r: i64) -> Self {
        Self { q, r }
    }

    /// The six axial unit neighbours, in digit order 1..=6 (see
    /// [`DIGIT_OFFSET`]).
    pub const NEIGHBOR_OFFSETS: [Axial; 6] = [
        Axial::new(0, 1),
        Axial::new(1, -1),
        Axial::new(1, 0),
        Axial::new(-1, 0),
        Axial::new(-1, 1),
        Axial::new(0, -1),
    ];

    /// Hexagonal grid distance between two axial coordinates (same lattice).
    pub fn distance(self, other: Axial) -> u64 {
        let dq = self.q - other.q;
        let dr = self.r - other.r;
        let ds = -dq - dr;
        (dq.abs().max(dr.abs()).max(ds.abs())) as u64
    }
}

impl std::ops::Add for Axial {
    type Output = Axial;
    fn add(self, o: Axial) -> Axial {
        Axial::new(self.q + o.q, self.r + o.r)
    }
}

impl std::ops::Sub for Axial {
    type Output = Axial;
    fn sub(self, o: Axial) -> Axial {
        Axial::new(self.q - o.q, self.r - o.r)
    }
}

/// Digit → axial offset from the parent's centre child.
/// `DIGIT_OFFSET[d]` has residue `d` (verified in tests), so digits are
/// recoverable from coordinates alone.
pub const DIGIT_OFFSET: [Axial; 7] = [
    Axial::new(0, 0),  // 0: centre child
    Axial::new(0, 1),  // 1
    Axial::new(1, -1), // 2
    Axial::new(1, 0),  // 3
    Axial::new(-1, 0), // 4
    Axial::new(-1, 1), // 5
    Axial::new(0, -1), // 6
];

/// Residue of an axial coordinate in `Z²/TZ²`: identifies which of the seven
/// children-of-some-parent roles the cell plays.
#[inline]
pub fn residue(a: Axial) -> u8 {
    (3 * a.q + a.r).rem_euclid(7) as u8
}

/// Exact parent axial coordinates and the digit of `child` under it.
///
/// Inverse of [`child_axial`]: `child = T·parent + DIGIT_OFFSET[digit]`.
#[inline]
pub fn parent_axial(child: Axial) -> (Axial, u8) {
    let d = residue(child);
    let e = DIGIT_OFFSET[d as usize];
    let a = child.q - e.q;
    let b = child.r - e.r;
    // T⁻¹ = (1/7)·[[3, 1], [−1, 2]]; exact because (a, b) has residue 0.
    let pq = (3 * a + b) / 7;
    let pr = (-a + 2 * b) / 7;
    debug_assert_eq!(3 * a + b, pq * 7);
    debug_assert_eq!(-a + 2 * b, pr * 7);
    (Axial::new(pq, pr), d)
}

/// Axial coordinates (one resolution finer) of child `digit` of `parent`.
#[inline]
pub fn child_axial(parent: Axial, digit: u8) -> Axial {
    debug_assert!(digit < 7);
    let e = DIGIT_OFFSET[digit as usize];
    // T·p with T = [[2, −1], [1, 3]] (columns = child coords of parent basis).
    Axial::new(2 * parent.q - parent.r + e.q, parent.q + 3 * parent.r + e.r)
}

/// A 2×2 matrix in column-major order: columns are the lattice basis vectors.
#[derive(Clone, Copy, Debug)]
pub struct Basis {
    // b1 = (a, c), b2 = (b, d); centre(q, r) = (a·q + b·r, c·q + d·r).
    /// Row 1 of basis vector 1.
    pub a: f64,
    /// Row 1 of basis vector 2.
    pub b: f64,
    /// Row 2 of basis vector 1.
    pub c: f64,
    /// Row 2 of basis vector 2.
    pub d: f64,
}

impl Basis {
    /// Centre of the cell with the given axial coordinates, on the plane.
    #[inline]
    pub fn to_world(&self, ax: Axial) -> WorldXY {
        let (q, r) = (ax.q as f64, ax.r as f64);
        WorldXY {
            x: self.a * q + self.b * r,
            y: self.c * q + self.d * r,
        }
    }

    /// Fractional axial coordinates of a plane point.
    #[inline]
    pub fn to_fractional(&self, p: WorldXY) -> (f64, f64) {
        let det = self.a * self.d - self.b * self.c;
        let q = (self.d * p.x - self.b * p.y) / det;
        let r = (-self.c * p.x + self.a * p.y) / det;
        (q, r)
    }

    /// `B · T⁻¹`: the basis one resolution finer.
    fn refine(&self) -> Basis {
        // T⁻¹ = (1/7)·[[3, 1], [−1, 2]]  (columns: (3,−1)/7 and (1,2)/7)
        Basis {
            a: (3.0 * self.a - self.b) / 7.0,
            c: (3.0 * self.c - self.d) / 7.0,
            b: (self.a + 2.0 * self.b) / 7.0,
            d: (self.c + 2.0 * self.d) / 7.0,
        }
    }

    /// Circumradius (centre→vertex distance) of cells in this lattice.
    pub fn circumradius(&self) -> f64 {
        // |b1| = √3 · s for a pointy-top hex lattice with circumradius s.
        (self.a * self.a + self.c * self.c).sqrt() / 3f64.sqrt()
    }

    /// The six vertex offsets of a cell (centre-relative), in CCW order.
    ///
    /// The Voronoi cell of a hex lattice point is the regular hexagon whose
    /// vertices are the circumcentres of the six lattice triangles around
    /// it: `(nᵢ + nᵢ₊₁)/3` for consecutive neighbour directions
    /// `n ∈ [b1, b2, b2−b1, −b1, −b2, b1−b2]`.
    pub fn vertex_offsets(&self) -> [WorldXY; 6] {
        let b1 = (self.a, self.c);
        let b2 = (self.b, self.d);
        let b3 = (b2.0 - b1.0, b2.1 - b1.1); // b2 − b1
        let n = [b1, b2, b3, (-b1.0, -b1.1), (-b2.0, -b2.1), (-b3.0, -b3.1)];
        std::array::from_fn(|i| {
            let u = n[i];
            let w = n[(i + 1) % 6];
            WorldXY {
                x: (u.0 + w.0) / 3.0,
                y: (u.1 + w.1) / 3.0,
            }
        })
    }
}

/// Rounds fractional axial coordinates to the nearest lattice cell
/// (standard cube-coordinate rounding).
#[inline]
pub fn hex_round(qf: f64, rf: f64) -> Axial {
    let sf = -qf - rf;
    let mut q = qf.round();
    let mut r = rf.round();
    let s = sf.round();
    let dq = (q - qf).abs();
    let dr = (r - rf).abs();
    let ds = (s - sf).abs();
    if dq > dr && dq > ds {
        q = -r - s;
    } else if dr > ds {
        r = -q - s;
    }
    Axial::new(q as i64, r as i64)
}

/// Lattice constants shared by the whole crate: one basis per resolution and
/// the resolution-0 ("base cell") table.
pub struct Lattice {
    bases: [Basis; (MAX_RES + 1) as usize],
    /// base cell id → axial coords at resolution 0
    base_by_id: Vec<Axial>,
    /// axial coords at resolution 0 → base cell id
    id_by_axial: HashMap<(i64, i64), u16>,
}

static LATTICE: OnceLock<Lattice> = OnceLock::new();

impl Lattice {
    /// The global lattice singleton.
    pub fn get() -> &'static Lattice {
        LATTICE.get_or_init(Lattice::build)
    }

    fn build() -> Lattice {
        // Resolution-0 circumradius s from area A0 = (3√3/2)·s².
        let a0 = EARTH_SURFACE_KM2 / BASE_CELL_AREA_DIVISOR;
        let s = (2.0 * a0 / (3.0 * 3f64.sqrt())).sqrt();
        let rt3 = 3f64.sqrt();
        let b0 = Basis {
            a: rt3 * s,
            c: 0.0,
            b: rt3 * s / 2.0,
            d: 1.5 * s,
        };
        let mut bases = [b0; (MAX_RES + 1) as usize];
        for i in 1..bases.len() {
            bases[i] = bases[i - 1].refine();
        }

        // Enumerate base cells: every res-0 cell whose centre lies within the
        // world rectangle expanded by a generous margin. The margin covers
        // (a) points on the rectangle edge rounding to a centre outside it and
        // (b) parent-chain drift when walking up from resolution 15 (bounded
        // by the sum of finer circumradii < one res-0 circumradius).
        let margin = 2.5 * s;
        let half_w = WORLD_WIDTH_KM / 2.0 + margin;
        let half_h = WORLD_HEIGHT_KM / 2.0 + margin;
        let r_max = (half_h / (1.5 * s)).ceil() as i64 + 1;
        let mut base_by_id = Vec::new();
        let mut id_by_axial = HashMap::new();
        for r in -r_max..=r_max {
            // x(q, r) = √3·s·(q + r/2) ⇒ q range from x bounds.
            let q_lo = ((-half_w / (rt3 * s)) - r as f64 / 2.0).floor() as i64 - 1;
            let q_hi = ((half_w / (rt3 * s)) - r as f64 / 2.0).ceil() as i64 + 1;
            for q in q_lo..=q_hi {
                let c = b0.to_world(Axial::new(q, r));
                if c.x.abs() <= half_w && c.y.abs() <= half_h {
                    let id = base_by_id.len() as u16;
                    base_by_id.push(Axial::new(q, r));
                    id_by_axial.insert((q, r), id);
                }
            }
        }
        assert!(
            base_by_id.len() <= 512,
            "base cell table exceeds 9-bit index space: {}",
            base_by_id.len()
        );
        Lattice {
            bases,
            base_by_id,
            id_by_axial,
        }
    }

    /// Basis for a resolution.
    #[inline]
    pub fn basis(&self, res: u8) -> &Basis {
        &self.bases[res as usize]
    }

    /// Number of base (resolution-0) cells in the table.
    pub fn base_cell_count(&self) -> usize {
        self.base_by_id.len()
    }

    /// Axial coordinates of a base cell.
    pub fn base_axial(&self, id: u16) -> Option<Axial> {
        self.base_by_id.get(id as usize).copied()
    }

    /// Base cell id for resolution-0 axial coordinates.
    pub fn base_id(&self, ax: Axial) -> Option<u16> {
        self.id_by_axial.get(&(ax.q, ax.r)).copied()
    }

    /// Axial coordinates of the cell containing a plane point at `res`.
    #[inline]
    pub fn axial_at(&self, p: WorldXY, res: u8) -> Axial {
        let (qf, rf) = self.basis(res).to_fractional(p);
        hex_round(qf, rf)
    }

    /// Axial coordinates of the cell containing a geographic point at `res`.
    #[inline]
    pub fn axial_of(&self, p: LatLon, res: u8) -> Axial {
        self.axial_at(to_xy(p), res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_offsets_have_distinct_residues() {
        for (d, off) in DIGIT_OFFSET.iter().enumerate() {
            assert_eq!(residue(*off) as usize, d, "offset {off:?}");
        }
    }

    #[test]
    fn parent_child_round_trip() {
        for q in -20..20 {
            for r in -20..20 {
                let p = Axial::new(q, r);
                for d in 0..7u8 {
                    let c = child_axial(p, d);
                    let (p2, d2) = parent_axial(c);
                    assert_eq!(p2, p, "child {c:?} of {p:?} digit {d}");
                    assert_eq!(d2, d);
                }
            }
        }
    }

    #[test]
    fn every_cell_has_exactly_one_parent_role() {
        // The 7 children of distinct parents never collide.
        let mut seen = std::collections::HashSet::new();
        for q in -5..5 {
            for r in -5..5 {
                for d in 0..7u8 {
                    let c = child_axial(Axial::new(q, r), d);
                    assert!(seen.insert(c), "collision at {c:?}");
                }
            }
        }
    }

    #[test]
    fn refine_shrinks_area_by_seven() {
        let l = Lattice::get();
        for res in 0..MAX_RES {
            let b = l.basis(res);
            let det = (b.a * b.d - b.b * b.c).abs();
            let bf = l.basis(res + 1);
            let detf = (bf.a * bf.d - bf.b * bf.c).abs();
            assert!((det / detf - 7.0).abs() < 1e-9, "res {res}: {}", det / detf);
        }
    }

    #[test]
    fn base_cell_count_near_122() {
        let l = Lattice::get();
        let n = l.base_cell_count();
        // The rectangle holds exactly 122 cells of area plus boundary slack.
        assert!((122..=300).contains(&n), "unexpected base cell count {n}");
    }

    #[test]
    fn base_table_is_bijective() {
        let l = Lattice::get();
        for id in 0..l.base_cell_count() as u16 {
            let ax = l.base_axial(id).unwrap();
            assert_eq!(l.base_id(ax), Some(id));
        }
    }

    #[test]
    fn hex_round_exact_on_centers() {
        for q in -10..10 {
            for r in -10..10 {
                assert_eq!(hex_round(q as f64, r as f64), Axial::new(q, r));
            }
        }
    }

    #[test]
    fn hex_round_nearest_center() {
        let l = Lattice::get();
        let b = l.basis(3);
        // Sample points and verify the rounded cell's centre is the nearest
        // among the rounded cell and its 6 neighbours.
        for i in 0..200 {
            let p = WorldXY {
                x: (i as f64 * 137.31) % 5000.0 - 2500.0,
                y: (i as f64 * 89.7) % 3000.0 - 1500.0,
            };
            let (qf, rf) = b.to_fractional(p);
            let c = hex_round(qf, rf);
            let cc = b.to_world(c);
            let dc = (cc.x - p.x).powi(2) + (cc.y - p.y).powi(2);
            for off in Axial::NEIGHBOR_OFFSETS {
                let n = b.to_world(c + off);
                let dn = (n.x - p.x).powi(2) + (n.y - p.y).powi(2);
                assert!(dc <= dn + 1e-6, "point {p:?}: neighbour closer");
            }
        }
    }

    #[test]
    fn axial_distance_properties() {
        let a = Axial::new(0, 0);
        assert_eq!(a.distance(a), 0);
        for off in Axial::NEIGHBOR_OFFSETS {
            assert_eq!(a.distance(a + off), 1);
        }
        assert_eq!(a.distance(Axial::new(3, 0)), 3);
        assert_eq!(a.distance(Axial::new(2, -4)), 4);
    }

    #[test]
    fn res0_cell_area_matches_calibration() {
        let l = Lattice::get();
        let b = l.basis(0);
        let det = (b.a * b.d - b.b * b.c).abs(); // area per lattice cell
        let want = EARTH_SURFACE_KM2 / BASE_CELL_AREA_DIVISOR;
        assert!((det - want).abs() / want < 1e-12);
    }

    #[test]
    fn vertex_offsets_form_regular_hexagon() {
        let l = Lattice::get();
        for res in [0u8, 3, 6, 9] {
            let b = l.basis(res);
            let vs = b.vertex_offsets();
            let s = b.circumradius();
            for v in vs {
                let d = (v.x * v.x + v.y * v.y).sqrt();
                assert!(
                    (d - s).abs() / s < 1e-9,
                    "res {res}: vertex radius {d} vs {s}"
                );
            }
            // Perimeter edges all equal to s as well (regular hexagon).
            for i in 0..6 {
                let w = vs[(i + 1) % 6];
                let v = vs[i];
                let e = ((w.x - v.x).powi(2) + (w.y - v.y).powi(2)).sqrt();
                assert!((e - s).abs() / s < 1e-9, "res {res}: edge {e} vs {s}");
            }
        }
    }
}
