//! Planar polygon operations used for port geofencing (§3.3.2 of the paper).
//!
//! Port areas are small (a few km across), so the usual flat-earth
//! approximation in (lon, lat) degrees is accurate enough for the
//! point-in-polygon test — with the caveat that polygons must not straddle
//! the antimeridian (none of the embedded ports do).

use crate::latlon::LatLon;

/// A simple (non-self-intersecting) polygon in geographic coordinates.
#[derive(Clone, Debug)]
pub struct Polygon {
    vertices: Vec<LatLon>,
}

impl Polygon {
    /// Builds a polygon from at least three vertices (implicitly closed).
    pub fn new(vertices: Vec<LatLon>) -> Option<Self> {
        if vertices.len() < 3 {
            return None;
        }
        Some(Self { vertices })
    }

    /// A regular `n`-gon of the given radius (km) around a centre — the shape
    /// used for synthetic port geofences.
    pub fn circle_approx(center: LatLon, radius_km: f64, n: usize) -> Self {
        assert!(n >= 3 && radius_km > 0.0);
        let vertices = (0..n)
            .map(|i| {
                let bearing = 360.0 * i as f64 / n as f64;
                crate::sphere::destination(center, bearing, radius_km)
            })
            .collect();
        Self { vertices }
    }

    /// Polygon vertices in order.
    pub fn vertices(&self) -> &[LatLon] {
        &self.vertices
    }

    /// Even-odd (ray casting) point-in-polygon test in (lon, lat) space.
    /// Boundary points may land on either side; geofences are tolerant of
    /// that ambiguity by construction.
    pub fn contains(&self, p: LatLon) -> bool {
        let (px, py) = (p.lon(), p.lat());
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let (xi, yi) = (self.vertices[i].lon(), self.vertices[i].lat());
            let (xj, yj) = (self.vertices[j].lon(), self.vertices[j].lat());
            if ((yi > py) != (yj > py)) && (px < (xj - xi) * (py - yi) / (yj - yi) + xi) {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Axis-aligned bounding box of the polygon as
    /// `(min_lat, min_lon, max_lat, max_lon)`.
    pub fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut min_lat = f64::INFINITY;
        let mut min_lon = f64::INFINITY;
        let mut max_lat = f64::NEG_INFINITY;
        let mut max_lon = f64::NEG_INFINITY;
        for v in &self.vertices {
            min_lat = min_lat.min(v.lat());
            max_lat = max_lat.max(v.lat());
            min_lon = min_lon.min(v.lon());
            max_lon = max_lon.max(v.lon());
        }
        (min_lat, min_lon, max_lat, max_lon)
    }
}

/// Convex hull (Andrew's monotone chain) of planar points `(x, y)`,
/// returned in counter-clockwise order. Used by the clustering baselines to
/// model routes as hulls of clusters, like the map-reduce approach of
/// Zissis et al. the paper builds on.
pub fn convex_hull(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut pts: Vec<(f64, f64)> = points.to_vec();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    pts.dedup();
    if pts.len() < 3 {
        return pts;
    }
    fn cross(o: (f64, f64), a: (f64, f64), b: (f64, f64)) -> f64 {
        (a.0 - o.0) * (b.1 - o.1) - (a.1 - o.1) * (b.0 - o.0)
    }
    let mut hull: Vec<(f64, f64)> = Vec::with_capacity(pts.len() * 2);
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop();
    hull
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ll(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn new_requires_three_vertices() {
        assert!(Polygon::new(vec![ll(0.0, 0.0), ll(1.0, 1.0)]).is_none());
        assert!(Polygon::new(vec![ll(0.0, 0.0), ll(1.0, 1.0), ll(0.0, 1.0)]).is_some());
    }

    #[test]
    fn square_contains() {
        let p = Polygon::new(vec![ll(0.0, 0.0), ll(0.0, 2.0), ll(2.0, 2.0), ll(2.0, 0.0)]).unwrap();
        assert!(p.contains(ll(1.0, 1.0)));
        assert!(!p.contains(ll(3.0, 1.0)));
        assert!(!p.contains(ll(-0.5, 1.0)));
        assert!(!p.contains(ll(1.0, 2.5)));
    }

    #[test]
    fn concave_polygon() {
        // A "U" shape: the notch must be outside.
        let p = Polygon::new(vec![
            ll(0.0, 0.0),
            ll(3.0, 0.0),
            ll(3.0, 3.0),
            ll(2.0, 3.0),
            ll(2.0, 1.0),
            ll(1.0, 1.0),
            ll(1.0, 3.0),
            ll(0.0, 3.0),
        ])
        .unwrap();
        assert!(p.contains(ll(1.5, 0.5)));
        assert!(!p.contains(ll(1.5, 2.0)), "notch must be outside");
    }

    #[test]
    fn circle_approx_contains_center_not_far_points() {
        let c = ll(51.95, 4.14); // Rotterdam
        let p = Polygon::circle_approx(c, 10.0, 12);
        assert!(p.contains(c));
        assert!(p.contains(ll(51.99, 4.14))); // ~4.5 km north
        assert!(!p.contains(ll(52.2, 4.14))); // ~28 km north
    }

    #[test]
    fn bounds_cover_vertices() {
        let p = Polygon::circle_approx(ll(0.0, 0.0), 50.0, 8);
        let (min_lat, min_lon, max_lat, max_lon) = p.bounds();
        for v in p.vertices() {
            assert!(v.lat() >= min_lat && v.lat() <= max_lat);
            assert!(v.lon() >= min_lon && v.lon() <= max_lon);
        }
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 4.0),
            (0.0, 4.0),
            (2.0, 2.0),
            (1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        for corner in [(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)] {
            assert!(hull.contains(&corner), "missing {corner:?}");
        }
    }

    #[test]
    fn hull_degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[(1.0, 1.0)]).len(), 1);
        assert_eq!(convex_hull(&[(1.0, 1.0), (2.0, 2.0)]).len(), 2);
        // Collinear points collapse to the two extremes.
        let hull = convex_hull(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        assert_eq!(hull.len(), 2);
    }
}
