//! Spherical trigonometry: distances, bearings, great-circle paths.

use crate::latlon::LatLon;

/// Authalic Earth radius in kilometres (sphere of equal surface area).
pub const EARTH_RADIUS_KM: f64 = 6371.0072;

/// Total Earth surface area in km² (4πR²). Denominator of the grid
/// "utilization" metric in Table 4 of the paper.
pub const EARTH_SURFACE_KM2: f64 = 4.0 * std::f64::consts::PI * EARTH_RADIUS_KM * EARTH_RADIUS_KM;

/// Great-circle (haversine) distance between two points, in kilometres.
///
/// This is the distance the paper's cleaning step (§3.3.1) uses to reject
/// infeasible transitions (> 50 kn implied speed).
pub fn haversine_km(a: LatLon, b: LatLon) -> f64 {
    let (la, lb) = (a.lat_rad(), b.lat_rad());
    let dlat = lb - la;
    let dlon = b.lon_rad() - a.lon_rad();
    let s = (dlat / 2.0).sin().powi(2) + la.cos() * lb.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * s.sqrt().min(1.0).asin()
}

/// Initial great-circle bearing from `a` to `b`, in degrees `[0, 360)`.
/// Returns 0 for coincident points.
pub fn initial_bearing_deg(a: LatLon, b: LatLon) -> f64 {
    let (la, lb) = (a.lat_rad(), b.lat_rad());
    let dlon = b.lon_rad() - a.lon_rad();
    let y = dlon.sin() * lb.cos();
    let x = la.cos() * lb.sin() - la.sin() * lb.cos() * dlon.cos();
    if x == 0.0 && y == 0.0 {
        return 0.0;
    }
    (y.atan2(x).to_degrees() + 360.0) % 360.0
}

/// Destination point after travelling `distance_km` from `start` on the
/// great circle with the given initial bearing (degrees clockwise from north).
pub fn destination(start: LatLon, bearing_deg: f64, distance_km: f64) -> LatLon {
    let delta = distance_km / EARTH_RADIUS_KM;
    let theta = bearing_deg.to_radians();
    let la = start.lat_rad();
    let lat2 = (la.sin() * delta.cos() + la.cos() * delta.sin() * theta.cos()).asin();
    let lon2 = start.lon_rad()
        + (theta.sin() * delta.sin() * la.cos()).atan2(delta.cos() - la.sin() * lat2.sin());
    LatLon::wrapped(lat2.to_degrees(), lon2.to_degrees())
}

/// Point at fraction `f ∈ [0, 1]` along the great circle from `a` to `b`
/// (spherical linear interpolation). `f = 0` gives `a`, `f = 1` gives `b`.
///
/// The fleet simulator advances vessels with this, so simulated tracks are
/// true great-circle legs rather than rhumb lines.
pub fn interpolate(a: LatLon, b: LatLon, f: f64) -> LatLon {
    let d = haversine_km(a, b) / EARTH_RADIUS_KM; // angular distance
    if d < 1e-12 {
        return a;
    }
    let sind = d.sin();
    let ca = ((1.0 - f) * d).sin() / sind;
    let cb = (f * d).sin() / sind;
    let (la, lb) = (a.lat_rad(), b.lat_rad());
    let (oa, ob) = (a.lon_rad(), b.lon_rad());
    let x = ca * la.cos() * oa.cos() + cb * lb.cos() * ob.cos();
    let y = ca * la.cos() * oa.sin() + cb * lb.cos() * ob.sin();
    let z = ca * la.sin() + cb * lb.sin();
    let lat = z.atan2((x * x + y * y).sqrt());
    let lon = y.atan2(x);
    LatLon::wrapped(lat.to_degrees(), lon.to_degrees())
}

/// Cross-track distance in km of point `p` from the great circle through
/// `a` → `b` (signed: positive to the right of the path).
pub fn cross_track_km(a: LatLon, b: LatLon, p: LatLon) -> f64 {
    let d13 = haversine_km(a, p) / EARTH_RADIUS_KM;
    let t13 = initial_bearing_deg(a, p).to_radians();
    let t12 = initial_bearing_deg(a, b).to_radians();
    (d13.sin() * (t13 - t12).sin()).asin() * EARTH_RADIUS_KM
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ll(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn haversine_known_distances() {
        // Dover (51.1279, 1.3134) to Calais (50.9513, 1.8587): ~42 km
        let d = haversine_km(ll(51.1279, 1.3134), ll(50.9513, 1.8587));
        assert!((d - 43.0).abs() < 3.0, "got {d}");
        // Rotterdam to Singapore ~ 10_500 km great-circle
        let d = haversine_km(ll(51.95, 4.14), ll(1.26, 103.84));
        assert!((d - 10_500.0).abs() < 300.0, "got {d}");
    }

    #[test]
    fn haversine_zero_and_symmetry() {
        let a = ll(10.0, 20.0);
        let b = ll(-33.0, 151.0);
        assert_eq!(haversine_km(a, a), 0.0);
        assert!((haversine_km(a, b) - haversine_km(b, a)).abs() < 1e-9);
    }

    #[test]
    fn haversine_antipodal_is_half_circumference() {
        let d = haversine_km(ll(0.0, 0.0), ll(0.0, 180.0));
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d} want {half}");
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = ll(0.0, 0.0);
        assert!((initial_bearing_deg(o, ll(1.0, 0.0)) - 0.0).abs() < 1e-6);
        assert!((initial_bearing_deg(o, ll(0.0, 1.0)) - 90.0).abs() < 1e-6);
        assert!((initial_bearing_deg(o, ll(-1.0, 0.0)) - 180.0).abs() < 1e-6);
        assert!((initial_bearing_deg(o, ll(0.0, -1.0)) - 270.0).abs() < 1e-6);
    }

    #[test]
    fn destination_round_trip() {
        let start = ll(48.0, -5.0);
        for bearing in [0.0, 37.0, 123.0, 251.0, 359.0] {
            let end = destination(start, bearing, 500.0);
            let d = haversine_km(start, end);
            assert!((d - 500.0).abs() < 0.5, "bearing {bearing}: {d}");
            let back = initial_bearing_deg(start, end);
            assert!(
                (back - bearing).abs() < 0.5 || (back - bearing).abs() > 359.5,
                "bearing {bearing} -> {back}"
            );
        }
    }

    #[test]
    fn interpolate_endpoints_and_midpoint() {
        let a = ll(51.95, 4.14);
        let b = ll(1.26, 103.84);
        let p0 = interpolate(a, b, 0.0);
        let p1 = interpolate(a, b, 1.0);
        assert!(haversine_km(a, p0) < 0.01);
        assert!(haversine_km(b, p1) < 0.01);
        let mid = interpolate(a, b, 0.5);
        let d_am = haversine_km(a, mid);
        let d_mb = haversine_km(mid, b);
        assert!((d_am - d_mb).abs() < 0.5, "{d_am} vs {d_mb}");
    }

    #[test]
    fn interpolate_crosses_antimeridian_cleanly() {
        // Yokohama -> Los Angeles crosses 180°.
        let a = ll(35.45, 139.65);
        let b = ll(33.74, -118.26);
        let total = haversine_km(a, b);
        let mut prev = a;
        let mut acc = 0.0;
        for i in 1..=20 {
            let p = interpolate(a, b, i as f64 / 20.0);
            acc += haversine_km(prev, p);
            prev = p;
        }
        assert!(
            (acc - total).abs() < 1.0,
            "piecewise {acc} vs direct {total}"
        );
    }

    #[test]
    fn cross_track_sign_and_zero() {
        let a = ll(0.0, 0.0);
        let b = ll(0.0, 10.0);
        // On the path
        assert!(cross_track_km(a, b, ll(0.0, 5.0)).abs() < 0.01);
        // North of an eastbound path = left = negative
        assert!(cross_track_km(a, b, ll(1.0, 5.0)) < 0.0);
        assert!(cross_track_km(a, b, ll(-1.0, 5.0)) > 0.0);
    }

    #[test]
    fn earth_surface_matches_known_value() {
        // ~510 million km²
        assert!((EARTH_SURFACE_KM2 / 1e6 - 510.0).abs() < 1.0);
    }
}
