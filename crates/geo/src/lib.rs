//! Geodesy primitives for the Patterns-of-Life maritime inventory.
//!
//! Everything downstream of raw AIS coordinates goes through this crate:
//!
//! * [`LatLon`] — validated WGS-ish spherical coordinates in degrees,
//! * [`sphere`] — haversine distance, bearings, great-circle interpolation,
//! * [`project`] — the Lambert cylindrical *equal-area* projection used by the
//!   hexagonal grid (`pol-hexgrid`),
//! * [`polygon`] — point-in-polygon and convex hulls for port geofencing,
//! * [`bbox`] — geographic bounding boxes for regional filters (e.g. the
//!   Baltic-sea views of the paper's Figure 4),
//! * [`units`] — knots / km/h / nautical-mile conversions.
//!
//! The Earth is modelled as a sphere of authalic radius
//! [`EARTH_RADIUS_KM`]; at the accuracy AIS analytics needs (cells of
//! kilometres), the spherical model is standard practice.

#![deny(missing_docs)]

pub mod bbox;
pub mod latlon;
pub mod polygon;
pub mod project;
pub mod sphere;
pub mod units;

pub use bbox::BBox;
pub use latlon::LatLon;
pub use polygon::Polygon;
pub use project::{from_xy, to_xy, WorldXY, WORLD_HEIGHT_KM, WORLD_WIDTH_KM};
pub use sphere::{
    destination, haversine_km, initial_bearing_deg, interpolate, EARTH_RADIUS_KM, EARTH_SURFACE_KM2,
};
