//! Geographic bounding boxes for regional filtering (e.g. the paper's
//! Baltic-sea close-up in Figure 4).

use crate::latlon::LatLon;

/// An axis-aligned geographic bounding box. May not cross the antimeridian.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BBox {
    /// Southern edge, degrees.
    pub min_lat: f64,
    /// Western edge, degrees.
    pub min_lon: f64,
    /// Northern edge, degrees.
    pub max_lat: f64,
    /// Eastern edge, degrees.
    pub max_lon: f64,
}

impl BBox {
    /// Creates a bounding box; returns `None` if the bounds are inverted or
    /// out of range.
    pub fn new(min_lat: f64, min_lon: f64, max_lat: f64, max_lon: f64) -> Option<Self> {
        if min_lat > max_lat || min_lon > max_lon {
            return None;
        }
        if !(-90.0..=90.0).contains(&min_lat)
            || !(-90.0..=90.0).contains(&max_lat)
            || !(-180.0..=180.0).contains(&min_lon)
            || !(-180.0..=180.0).contains(&max_lon)
        {
            return None;
        }
        Some(Self {
            min_lat,
            min_lon,
            max_lat,
            max_lon,
        })
    }

    /// The Baltic-sea region used in the paper's Figure 4 visualisations.
    pub fn baltic() -> Self {
        // lint: allow(no_unwrap) — literal in-range bounds.
        Self::new(53.5, 9.5, 66.0, 30.5).expect("static bounds")
    }

    /// The English Channel region of the paper's Figure 2 walkthrough.
    pub fn english_channel() -> Self {
        // lint: allow(no_unwrap) — literal in-range bounds.
        Self::new(48.5, -5.5, 51.8, 2.5).expect("static bounds")
    }

    /// Whether the point lies inside (inclusive of edges).
    #[inline]
    pub fn contains(&self, p: LatLon) -> bool {
        p.lat() >= self.min_lat
            && p.lat() <= self.max_lat
            && p.lon() >= self.min_lon
            && p.lon() <= self.max_lon
    }

    /// Centre of the box.
    pub fn center(&self) -> LatLon {
        LatLon::wrapped(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// Whether two boxes overlap (inclusive).
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min_lat <= other.max_lat
            && other.min_lat <= self.max_lat
            && self.min_lon <= other.max_lon
            && other.min_lon <= self.max_lon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_inverted() {
        assert!(BBox::new(10.0, 0.0, 5.0, 1.0).is_none());
        assert!(BBox::new(0.0, 10.0, 5.0, 1.0).is_none());
        assert!(BBox::new(0.0, 0.0, 100.0, 1.0).is_none());
    }

    #[test]
    fn contains_inclusive() {
        let b = BBox::new(0.0, 0.0, 10.0, 10.0).unwrap();
        assert!(b.contains(LatLon::new(0.0, 0.0).unwrap()));
        assert!(b.contains(LatLon::new(10.0, 10.0).unwrap()));
        assert!(b.contains(LatLon::new(5.0, 5.0).unwrap()));
        assert!(!b.contains(LatLon::new(-0.1, 5.0).unwrap()));
        assert!(!b.contains(LatLon::new(5.0, 10.1).unwrap()));
    }

    #[test]
    fn baltic_contains_known_ports() {
        let b = BBox::baltic();
        assert!(b.contains(LatLon::new(59.44, 24.75).unwrap())); // Tallinn
        assert!(b.contains(LatLon::new(55.68, 12.6).unwrap())); // Copenhagen
        assert!(!b.contains(LatLon::new(51.95, 4.14).unwrap())); // Rotterdam
    }

    #[test]
    fn intersects_cases() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0).unwrap();
        let b = BBox::new(5.0, 5.0, 15.0, 15.0).unwrap();
        let c = BBox::new(11.0, 11.0, 20.0, 20.0).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Edge touching counts
        let d = BBox::new(10.0, 10.0, 20.0, 20.0).unwrap();
        assert!(a.intersects(&d));
    }

    #[test]
    fn center_is_midpoint() {
        let b = BBox::new(0.0, 0.0, 10.0, 20.0).unwrap();
        let c = b.center();
        assert_eq!(c.lat(), 5.0);
        assert_eq!(c.lon(), 10.0);
    }
}
