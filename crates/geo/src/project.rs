//! Lambert cylindrical equal-area projection.
//!
//! The hexagonal grid (`pol-hexgrid`) lays its lattice over this plane.
//! The projection maps the sphere to the rectangle
//! `[-WORLD_WIDTH/2, WORLD_WIDTH/2) × [-WORLD_HEIGHT/2, WORLD_HEIGHT/2]`
//! with `X = R·λ` and `Y = R·sin φ`, which is *exactly* area preserving:
//! a region of `a` km² on the sphere maps to `a` km² on the plane. Equal
//! planar hexagons therefore cover equal spherical areas — the property
//! §3.2.1 of the paper demands from the grid system ("each cell must cover
//! approximately the same area at a given resolution").

use crate::latlon::LatLon;
use crate::sphere::EARTH_RADIUS_KM;

/// Width of the projected world rectangle in km (`2πR` ≈ 40 030 km).
pub const WORLD_WIDTH_KM: f64 = 2.0 * std::f64::consts::PI * EARTH_RADIUS_KM;

/// Height of the projected world rectangle in km (`2R` ≈ 12 742 km).
pub const WORLD_HEIGHT_KM: f64 = 2.0 * EARTH_RADIUS_KM;

/// A point on the equal-area projection plane, in kilometres.
///
/// `x ∈ [-WORLD_WIDTH/2, WORLD_WIDTH/2)` (longitude axis, wraps),
/// `y ∈ [-WORLD_HEIGHT/2, WORLD_HEIGHT/2]` (sin-latitude axis).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorldXY {
    /// Longitude-axis coordinate, km (wraps at the antimeridian).
    pub x: f64,
    /// Sin-latitude-axis coordinate, km.
    pub y: f64,
}

/// Projects a spherical coordinate to the equal-area plane.
#[inline]
pub fn to_xy(p: LatLon) -> WorldXY {
    WorldXY {
        x: EARTH_RADIUS_KM * p.lon_rad(),
        y: EARTH_RADIUS_KM * p.lat_rad().sin(),
    }
}

/// Inverse projection. `x` is wrapped into the world rectangle; `y` is
/// clamped to the poles.
#[inline]
pub fn from_xy(p: WorldXY) -> LatLon {
    let half_w = WORLD_WIDTH_KM / 2.0;
    let x = (p.x + half_w).rem_euclid(WORLD_WIDTH_KM) - half_w;
    let sin_lat = (p.y / EARTH_RADIUS_KM).clamp(-1.0, 1.0);
    LatLon::wrapped(
        sin_lat.asin().to_degrees(),
        (x / EARTH_RADIUS_KM).to_degrees(),
    )
}

/// Wraps a planar x coordinate into `[-WORLD_WIDTH/2, WORLD_WIDTH/2)`.
#[inline]
pub fn wrap_x(x: f64) -> f64 {
    let half_w = WORLD_WIDTH_KM / 2.0;
    (x + half_w).rem_euclid(WORLD_WIDTH_KM) - half_w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sphere::EARTH_SURFACE_KM2;

    #[test]
    fn rectangle_area_equals_sphere_area() {
        assert!((WORLD_WIDTH_KM * WORLD_HEIGHT_KM - EARTH_SURFACE_KM2).abs() < 1e-6);
    }

    #[test]
    fn round_trip() {
        for (lat, lon) in [
            (0.0, 0.0),
            (51.5, -0.12),
            (-33.86, 151.2),
            (89.9, 10.0),
            (-89.9, -179.9),
            (1.26, 103.84),
        ] {
            let p = LatLon::new(lat, lon).unwrap();
            let q = from_xy(to_xy(p));
            assert!((q.lat() - lat).abs() < 1e-9, "{lat},{lon} -> {q:?}");
            assert!((q.lon() - lon).abs() < 1e-9, "{lat},{lon} -> {q:?}");
        }
    }

    #[test]
    fn equator_scale_is_true() {
        // 1 degree of longitude at the equator ≈ 111.19 km in x.
        let a = to_xy(LatLon::new(0.0, 0.0).unwrap());
        let b = to_xy(LatLon::new(0.0, 1.0).unwrap());
        assert!((b.x - a.x - 111.19).abs() < 0.1);
    }

    #[test]
    fn poles_map_to_rect_edge() {
        let n = to_xy(LatLon::new(90.0, 0.0).unwrap());
        assert!((n.y - WORLD_HEIGHT_KM / 2.0).abs() < 1e-9);
        let s = to_xy(LatLon::new(-90.0, 0.0).unwrap());
        assert!((s.y + WORLD_HEIGHT_KM / 2.0).abs() < 1e-9);
    }

    #[test]
    fn wrap_x_is_periodic() {
        let x = 1234.5;
        assert!((wrap_x(x + WORLD_WIDTH_KM) - x).abs() < 1e-6);
        assert!((wrap_x(x - 2.0 * WORLD_WIDTH_KM) - x).abs() < 1e-6);
        assert!(wrap_x(WORLD_WIDTH_KM / 2.0) < 0.0); // right edge wraps to left
    }
}
