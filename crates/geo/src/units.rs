//! Unit conversions for maritime quantities.
//!
//! AIS reports speed over ground in knots; the cleaning step's feasibility
//! bound (§3.3.1 of the paper) is 50 kn; distances internal to the pipeline
//! are kilometres.

/// Kilometres per nautical mile.
pub const KM_PER_NM: f64 = 1.852;

/// Converts knots to kilometres per hour.
#[inline]
pub fn knots_to_kmh(kn: f64) -> f64 {
    kn * KM_PER_NM
}

/// Converts kilometres per hour to knots.
#[inline]
pub fn kmh_to_knots(kmh: f64) -> f64 {
    kmh / KM_PER_NM
}

/// Converts nautical miles to kilometres.
#[inline]
pub fn nm_to_km(nm: f64) -> f64 {
    nm * KM_PER_NM
}

/// Converts kilometres to nautical miles.
#[inline]
pub fn km_to_nm(km: f64) -> f64 {
    km / KM_PER_NM
}

/// Implied speed in knots for covering `distance_km` in `seconds`.
/// Returns `f64::INFINITY` when `seconds == 0` and the distance is positive
/// (a duplicate-timestamp jump — always infeasible).
pub fn implied_speed_knots(distance_km: f64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return if distance_km > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
    }
    kmh_to_knots(distance_km / (seconds / 3600.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knot_round_trip() {
        for v in [0.0, 1.0, 12.5, 50.0] {
            assert!((kmh_to_knots(knots_to_kmh(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn known_conversion() {
        // 20 kn ≈ 37.04 km/h
        assert!((knots_to_kmh(20.0) - 37.04).abs() < 0.01);
        assert!((nm_to_km(100.0) - 185.2).abs() < 1e-9);
    }

    #[test]
    fn implied_speed() {
        // 18.52 km in 30 minutes = 37.04 km/h = 20 kn
        assert!((implied_speed_knots(18.52, 1800.0) - 20.0).abs() < 1e-9);
        assert_eq!(implied_speed_knots(1.0, 0.0), f64::INFINITY);
        assert_eq!(implied_speed_knots(0.0, 0.0), 0.0);
    }
}
