//! Validated spherical coordinates.

use std::fmt;

/// A point on the sphere, in degrees.
///
/// Latitude is clamped-checked to `[-90, 90]`; longitude is normalized to
/// `[-180, 180)`. AIS reports out-of-range coordinates routinely (the value
/// `181.0` is the protocol's "not available" marker for longitude, `91.0` for
/// latitude), so constructors come in a checked ([`LatLon::new`]) and an
/// unchecked-normalizing ([`LatLon::wrapped`]) flavour.
#[derive(Clone, Copy, PartialEq)]
pub struct LatLon {
    lat: f64,
    lon: f64,
}

impl LatLon {
    /// Creates a coordinate, returning `None` when out of range or non-finite.
    pub fn new(lat: f64, lon: f64) -> Option<Self> {
        if !lat.is_finite() || !lon.is_finite() {
            return None;
        }
        if !(-90.0..=90.0).contains(&lat) {
            return None;
        }
        if !(-180.0..=180.0).contains(&lon) {
            return None;
        }
        Some(Self {
            lat,
            lon: normalize_lon(lon),
        })
    }

    /// Creates a coordinate, wrapping longitude into `[-180, 180)` and
    /// clamping latitude into `[-90, 90]`. Inputs must be finite.
    ///
    /// Use this for *trusted* synthetic coordinates (e.g. a great-circle
    /// interpolation that may step over the antimeridian), not for raw AIS
    /// fields — those should go through [`LatLon::new`] so that protocol
    /// "not available" markers are rejected.
    pub fn wrapped(lat: f64, lon: f64) -> Self {
        assert!(lat.is_finite() && lon.is_finite(), "non-finite coordinate");
        Self {
            lat: lat.clamp(-90.0, 90.0),
            lon: normalize_lon(lon),
        }
    }

    /// Latitude in degrees, in `[-90, 90]`.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in degrees, in `[-180, 180)`.
    #[inline]
    pub fn lon(&self) -> f64 {
        self.lon
    }

    /// Latitude in radians.
    #[inline]
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    #[inline]
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }
}

impl fmt::Debug for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.5}, {:.5})", self.lat, self.lon)
    }
}

impl fmt::Display for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.5},{:.5}", self.lat, self.lon)
    }
}

/// Normalizes a longitude in degrees to `[-180, 180)`.
pub fn normalize_lon(lon: f64) -> f64 {
    let mut l = (lon + 180.0).rem_euclid(360.0) - 180.0;
    // rem_euclid can return exactly 360.0 - epsilon artifacts; pin the edge.
    if l >= 180.0 {
        l -= 360.0;
    }
    l
}

/// Smallest absolute difference between two longitudes, in degrees (≤ 180).
pub fn lon_delta(a: f64, b: f64) -> f64 {
    let d = (a - b).abs() % 360.0;
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_valid() {
        let p = LatLon::new(51.0, 1.5).unwrap();
        assert_eq!(p.lat(), 51.0);
        assert_eq!(p.lon(), 1.5);
    }

    #[test]
    fn new_rejects_ais_unavailable_markers() {
        assert!(LatLon::new(91.0, 0.0).is_none());
        assert!(LatLon::new(0.0, 181.0).is_none());
        assert!(LatLon::new(f64::NAN, 0.0).is_none());
        assert!(LatLon::new(0.0, f64::INFINITY).is_none());
    }

    #[test]
    fn new_accepts_boundaries() {
        assert!(LatLon::new(90.0, 0.0).is_some());
        assert!(LatLon::new(-90.0, 0.0).is_some());
        assert!(LatLon::new(0.0, -180.0).is_some());
        // +180 normalizes to -180
        let p = LatLon::new(0.0, 180.0).unwrap();
        assert_eq!(p.lon(), -180.0);
    }

    #[test]
    fn wrapped_wraps_longitude() {
        let p = LatLon::wrapped(10.0, 190.0);
        assert!((p.lon() - (-170.0)).abs() < 1e-12);
        let q = LatLon::wrapped(10.0, -190.0);
        assert!((q.lon() - 170.0).abs() < 1e-12);
        let r = LatLon::wrapped(10.0, 540.0);
        assert!((r.lon() - 180.0).abs() < 1e-12 || (r.lon() - (-180.0)).abs() < 1e-12);
    }

    #[test]
    fn wrapped_clamps_latitude() {
        assert_eq!(LatLon::wrapped(95.0, 0.0).lat(), 90.0);
        assert_eq!(LatLon::wrapped(-95.0, 0.0).lat(), -90.0);
    }

    #[test]
    fn normalize_lon_range() {
        for l in [
            -720.0, -360.5, -180.0, -0.1, 0.0, 179.9, 180.0, 359.0, 720.3,
        ] {
            let n = normalize_lon(l);
            assert!((-180.0..180.0).contains(&n), "{l} -> {n}");
        }
    }

    #[test]
    fn lon_delta_wraps() {
        assert!((lon_delta(179.0, -179.0) - 2.0).abs() < 1e-12);
        assert!((lon_delta(10.0, 350.0) - 20.0).abs() < 1e-12);
        assert_eq!(lon_delta(42.0, 42.0), 0.0);
    }
}
