//! Property tests for the geodesy substrate.

use pol_geo::latlon::{lon_delta, normalize_lon};
use pol_geo::{
    destination, from_xy, haversine_km, initial_bearing_deg, interpolate, to_xy, LatLon,
};
use proptest::prelude::*;

fn arb_latlon() -> impl Strategy<Value = LatLon> {
    // Stay a hair inside the poles: bearings degenerate exactly at ±90.
    (-89.9f64..89.9, -180.0f64..180.0).prop_map(|(lat, lon)| LatLon::new(lat, lon).unwrap())
}

proptest! {
    #[test]
    fn haversine_nonnegative_symmetric(a in arb_latlon(), b in arb_latlon()) {
        let d1 = haversine_km(a, b);
        let d2 = haversine_km(b, a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6);
        // Never more than half the circumference.
        prop_assert!(d1 <= std::f64::consts::PI * pol_geo::EARTH_RADIUS_KM + 1e-6);
    }

    #[test]
    fn haversine_triangle_inequality(a in arb_latlon(), b in arb_latlon(), c in arb_latlon()) {
        let ab = haversine_km(a, b);
        let bc = haversine_km(b, c);
        let ac = haversine_km(a, c);
        prop_assert!(ac <= ab + bc + 1e-6, "{ac} > {ab} + {bc}");
    }

    #[test]
    fn projection_round_trip(p in arb_latlon()) {
        let q = from_xy(to_xy(p));
        prop_assert!((p.lat() - q.lat()).abs() < 1e-9);
        prop_assert!(lon_delta(p.lon(), q.lon()) < 1e-9);
    }

    #[test]
    fn destination_distance_consistent(
        p in arb_latlon(),
        bearing in 0.0f64..360.0,
        dist in 0.1f64..5000.0,
    ) {
        let q = destination(p, bearing, dist);
        let measured = haversine_km(p, q);
        prop_assert!((measured - dist).abs() < dist * 1e-3 + 0.01,
            "asked {dist}, got {measured}");
    }

    #[test]
    fn interpolation_monotone_distance(a in arb_latlon(), b in arb_latlon()) {
        let total = haversine_km(a, b);
        prop_assume!(total > 1.0);
        let mut prev = 0.0;
        for i in 0..=10 {
            let p = interpolate(a, b, i as f64 / 10.0);
            let d = haversine_km(a, p);
            prop_assert!(d >= prev - 1e-3, "distance from start must grow: {d} < {prev}");
            prev = d;
        }
        prop_assert!((prev - total).abs() < total * 1e-6 + 1e-3);
    }

    #[test]
    fn bearing_in_range(a in arb_latlon(), b in arb_latlon()) {
        let br = initial_bearing_deg(a, b);
        prop_assert!((0.0..360.0).contains(&br));
    }

    #[test]
    fn normalize_lon_idempotent(l in -1000.0f64..1000.0) {
        let n = normalize_lon(l);
        prop_assert!((-180.0..180.0).contains(&n));
        prop_assert!((normalize_lon(n) - n).abs() < 1e-12);
    }
}
