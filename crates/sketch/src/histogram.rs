//! Fixed-bin histograms — the "Bins" column of Table 3.
//!
//! The paper splits course and heading into 30° counters (12 bins). A
//! general fixed-width [`Histogram`] covers other features; the
//! [`AngleHistogram`] specialisation wraps angles and owns the 30° layout.

use crate::MergeSketch;

/// A fixed-width histogram over `[lo, hi)` with under/overflow counters.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// When `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "invalid range {lo}..{hi}");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds an observation. Non-finite values are ignored.
    #[inline]
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let i = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[i] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(bin_lo, bin_hi, count)` triples.
    pub fn bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts.iter().enumerate().map(move |(i, &c)| {
            (
                self.lo + i as f64 * width,
                self.lo + (i + 1) as f64 * width,
                c,
            )
        })
    }

    /// Index of the fullest bin, `None` when all bins are empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let (i, &c) = self.counts.iter().enumerate().max_by_key(|(_, c)| **c)?;
        (c > 0).then_some(i)
    }
}

impl MergeSketch for Histogram {
    /// # Panics
    /// When the histograms have different layouts.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.lo, other.lo, "histogram layout mismatch");
        assert_eq!(self.hi, other.hi, "histogram layout mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram layout mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

/// A 12-bin × 30° histogram over angles in degrees, wrapping mod 360.
/// This is exactly the "Bins" statistic the paper stores for course and
/// heading.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AngleHistogram {
    counts: [u64; 12],
}

impl AngleHistogram {
    /// Width of each bin in degrees.
    pub const BIN_DEG: f64 = 30.0;

    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an angle in degrees (wrapped into `[0, 360)`).
    /// Non-finite values are ignored.
    #[inline]
    pub fn add(&mut self, deg: f64) {
        if !deg.is_finite() {
            return;
        }
        let wrapped = deg.rem_euclid(360.0);
        let i = ((wrapped / Self::BIN_DEG) as usize).min(11);
        self.counts[i] += 1;
    }

    /// The 12 bin counters; bin `i` covers `[30·i, 30·(i+1))` degrees.
    pub fn counts(&self) -> &[u64; 12] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Centre angle of the fullest bin, `None` when empty.
    pub fn mode_deg(&self) -> Option<f64> {
        let (i, &c) = self.counts.iter().enumerate().max_by_key(|(_, c)| **c)?;
        (c > 0).then(|| i as f64 * Self::BIN_DEG + Self::BIN_DEG / 2.0)
    }

    /// Reconstructs a histogram from its bin counters (deserialization).
    pub fn from_counts(counts: [u64; 12]) -> AngleHistogram {
        AngleHistogram { counts }
    }
}

impl MergeSketch for AngleHistogram {
    fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bin_assignment() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.0); // bin 0
        h.add(1.99); // bin 0
        h.add(2.0); // bin 1
        h.add(9.99); // bin 4
        h.add(-0.1); // underflow
        h.add(10.0); // overflow (hi exclusive)
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_mode() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        assert_eq!(h.mode_bin(), None);
        h.add(1.5);
        h.add(1.6);
        h.add(0.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.add(1.0);
        b.add(1.0);
        b.add(9.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn angle_histogram_thirty_degree_bins() {
        let mut h = AngleHistogram::new();
        h.add(0.0); // bin 0
        h.add(29.9); // bin 0
        h.add(30.0); // bin 1
        h.add(359.9); // bin 11
        h.add(360.0); // wraps -> bin 0
        h.add(-15.0); // wraps -> 345 -> bin 11
        assert_eq!(h.counts()[0], 3);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[11], 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn angle_histogram_mode() {
        let mut h = AngleHistogram::new();
        assert_eq!(h.mode_deg(), None);
        for _ in 0..3 {
            h.add(95.0);
        }
        h.add(10.0);
        assert_eq!(h.mode_deg(), Some(105.0)); // bin [90,120) centre
    }

    #[test]
    fn angle_histogram_merge_is_elementwise() {
        let mut a = AngleHistogram::new();
        let mut b = AngleHistogram::new();
        a.add(10.0);
        b.add(10.0);
        b.add(200.0);
        a.merge(&b);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.counts()[6], 1);
    }
}
