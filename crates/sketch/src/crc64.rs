//! CRC-64/XZ (aka CRC-64/GO-ECMA): the checksum sealing the inventory
//! file's sections.
//!
//! Parameters: reflected ECMA-182 polynomial `0xC96C5795D7870F42`,
//! initial value and final XOR `!0`. This is the variant used by `xz`
//! and Go's `hash/crc64` ECMA table, chosen over CRC-32 because the
//! inventory body routinely reaches hundreds of megabytes, where a
//! 32-bit check's collision floor starts to matter, and over a
//! cryptographic hash because the threat model is bit rot and torn
//! writes, not an adversary.
//!
//! The implementation is a single 256-entry table computed at first use
//! (`OnceLock`), processing one byte per step — ~1 GB/s, far faster than
//! the disk writes it guards. Pure `std`, no allocation after init.

use std::sync::OnceLock;

/// The reflected ECMA-182 polynomial.
const POLY: u64 = 0xC96C_5795_D787_0F42;

fn table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u64;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            t[i] = crc;
            i += 1;
        }
        t
    })
}

/// A streaming CRC-64/XZ digest.
///
/// ```
/// use pol_sketch::crc64::Crc64;
/// let mut d = Crc64::new();
/// d.update(b"123456789");
/// assert_eq!(d.finish(), 0x995D_C9BB_DF19_39FA); // the standard check value
/// ```
#[derive(Clone, Debug)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// A fresh digest.
    pub fn new() -> Crc64 {
        Crc64 { state: !0 }
    }

    /// Feeds bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        let mut crc = self.state;
        for &b in bytes {
            let idx = ((crc ^ b as u64) & 0xFF) as usize;
            // The index is masked to 0..256; direct indexing cannot
            // overrun, and `get` would hide that invariant.
            crc = t[idx] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The digest of everything fed so far (the digest stays usable).
    pub fn finish(&self) -> u64 {
        !self.state
    }
}

/// One-shot convenience over [`Crc64`].
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut d = Crc64::new();
    d.update(bytes);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        // The canonical CRC-64/XZ check: crc of "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut d = Crc64::new();
        for chunk in data.chunks(7) {
            d.update(chunk);
        }
        assert_eq!(d.finish(), crc64(&data));
    }

    #[test]
    fn detects_every_single_bit_flip() {
        let data: Vec<u8> = (0..256u32).map(|i| (i * 17 % 256) as u8).collect();
        let clean = crc64(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc64(&corrupt), clean, "missed flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn finish_is_idempotent() {
        let mut d = Crc64::new();
        d.update(b"abc");
        assert_eq!(d.finish(), d.finish());
        d.update(b"def");
        assert_eq!(d.finish(), crc64(b"abcdef"));
    }
}
