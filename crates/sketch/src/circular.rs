//! Circular (directional) statistics for course and heading.
//!
//! Table 3 marks the mean of course and heading with `X*`: these are angles,
//! so the inventory stores the *circular* mean — the direction of the vector
//! sum of unit headings. An arithmetic mean of 359° and 1° would face south;
//! the circular mean correctly faces north. The resultant length `R ∈ [0,1]`
//! doubles as a concentration measure: the traffic-separation lanes of the
//! paper's Figure 4 show up as cells with `R` close to 1.

use crate::MergeSketch;

/// Accumulates unit vectors of angles in degrees.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circular {
    sum_sin: f64,
    sum_cos: f64,
    count: u64,
}

impl Circular {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an angle in degrees (any real value; wrapped mod 360).
    /// Non-finite values are ignored.
    #[inline]
    pub fn add(&mut self, deg: f64) {
        if !deg.is_finite() {
            return;
        }
        let rad = deg.to_radians();
        self.sum_sin += rad.sin();
        self.sum_cos += rad.cos();
        self.count += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Circular mean in degrees `[0, 360)`. `None` when empty or when the
    /// directions cancel exactly (resultant length ~0, mean undefined).
    pub fn mean_deg(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let r = (self.sum_sin * self.sum_sin + self.sum_cos * self.sum_cos).sqrt();
        if r / (self.count as f64) < 1e-9 {
            return None;
        }
        let mean = self.sum_sin.atan2(self.sum_cos).to_degrees();
        Some((mean + 360.0) % 360.0)
    }

    /// Mean resultant length `R ∈ [0, 1]`: 1 = all observations aligned,
    /// 0 = uniformly spread.
    pub fn resultant_length(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let r = (self.sum_sin * self.sum_sin + self.sum_cos * self.sum_cos).sqrt();
        Some((r / self.count as f64).min(1.0))
    }

    /// Circular variance `1 − R ∈ [0, 1]`.
    pub fn circular_variance(&self) -> Option<f64> {
        self.resultant_length().map(|r| 1.0 - r)
    }

    /// Raw vector sums `(Σsin, Σcos)` (serialization support).
    pub fn sums(&self) -> (f64, f64) {
        (self.sum_sin, self.sum_cos)
    }

    /// Reconstructs an accumulator from raw parts (deserialization).
    pub fn from_parts(count: u64, sum_sin: f64, sum_cos: f64) -> Circular {
        if count == 0 {
            return Circular::new();
        }
        Circular {
            sum_sin,
            sum_cos,
            count,
        }
    }
}

impl MergeSketch for Circular {
    fn merge(&mut self, other: &Self) {
        self.sum_sin += other.sum_sin;
        self.sum_cos += other.sum_cos;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let c = Circular::new();
        assert_eq!(c.mean_deg(), None);
        assert_eq!(c.resultant_length(), None);
    }

    #[test]
    fn wraparound_mean_is_north() {
        let mut c = Circular::new();
        c.add(359.0);
        c.add(1.0);
        let m = c.mean_deg().unwrap();
        assert!(m < 0.01 || m > 359.99, "got {m}");
        assert!(c.resultant_length().unwrap() > 0.999);
    }

    #[test]
    fn aligned_directions() {
        let mut c = Circular::new();
        for _ in 0..10 {
            c.add(90.0);
        }
        assert!((c.mean_deg().unwrap() - 90.0).abs() < 1e-9);
        assert!((c.resultant_length().unwrap() - 1.0).abs() < 1e-9);
        assert!(c.circular_variance().unwrap() < 1e-9);
    }

    #[test]
    fn opposite_directions_cancel() {
        let mut c = Circular::new();
        c.add(0.0);
        c.add(180.0);
        assert_eq!(c.mean_deg(), None, "undefined mean when cancelled");
        assert!(c.resultant_length().unwrap() < 1e-9);
    }

    #[test]
    fn negative_angles_wrap() {
        let mut c = Circular::new();
        c.add(-90.0);
        assert!((c.mean_deg().unwrap() - 270.0).abs() < 1e-9);
    }

    #[test]
    fn spread_reduces_resultant() {
        let mut tight = Circular::new();
        for d in [85.0, 90.0, 95.0] {
            tight.add(d);
        }
        let mut loose = Circular::new();
        for d in [0.0, 90.0, 200.0] {
            loose.add(d);
        }
        assert!(tight.resultant_length().unwrap() > loose.resultant_length().unwrap());
    }

    #[test]
    fn merge_equals_single_pass() {
        let angles: Vec<f64> = (0..100).map(|i| (i * 17 % 360) as f64).collect();
        let mut whole = Circular::new();
        for &a in &angles {
            whole.add(a);
        }
        let mut left = Circular::new();
        let mut right = Circular::new();
        for &a in &angles[..37] {
            left.add(a);
        }
        for &a in &angles[37..] {
            right.add(a);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.sum_sin - whole.sum_sin).abs() < 1e-9);
        assert!((left.sum_cos - whole.sum_cos).abs() < 1e-9);
    }
}
