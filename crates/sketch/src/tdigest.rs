//! Merging t-digest (Dunning & Ertl) — the ablation partner of the GK
//! sketch for Table 3's approximate percentiles.
//!
//! Where GK bounds *rank* error uniformly, the t-digest concentrates
//! accuracy in the distribution tails via the scale function
//! `k(q) = δ/2π · asin(2q − 1)`; the `sketch_ablation` bench compares the
//! two on AIS-shaped (heavily skewed) speed distributions.

use crate::MergeSketch;

#[derive(Clone, Copy, Debug, PartialEq)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// The merging t-digest.
#[derive(Clone, Debug)]
pub struct TDigest {
    compression: f64,
    centroids: Vec<Centroid>, // sorted by mean
    buffer: Vec<Centroid>,
    total_weight: f64,
    min: f64,
    max: f64,
}

impl TDigest {
    /// Creates a digest; `compression` (δ) ≈ the number of retained
    /// centroids (typical: 100).
    ///
    /// # Panics
    /// When `compression < 10`.
    pub fn new(compression: f64) -> Self {
        assert!(compression >= 10.0, "compression {compression} too small");
        // No preallocation: most digests in the inventory stay tiny.
        Self {
            compression,
            centroids: Vec::new(),
            buffer: Vec::new(),
            total_weight: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Non-finite values are ignored.
    #[inline]
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.buffer.push(Centroid {
            mean: x,
            weight: 1.0,
        });
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.total_weight += 1.0;
        if self.buffer.len() >= (self.compression * 5.0) as usize {
            self.compress();
        }
    }

    /// Total weight (observation count).
    pub fn count(&self) -> u64 {
        self.total_weight as u64
    }

    fn scale(&self, q: f64) -> f64 {
        self.compression / (2.0 * std::f64::consts::PI) * (2.0 * q.clamp(0.0, 1.0) - 1.0).asin()
    }

    fn compress(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut all = std::mem::take(&mut self.centroids);
        all.append(&mut self.buffer);
        all.sort_by(|a, b| a.mean.total_cmp(&b.mean));
        let total: f64 = all.iter().map(|c| c.weight).sum();
        let mut out: Vec<Centroid> = Vec::with_capacity(self.compression as usize * 2);
        let mut iter = all.into_iter();
        let Some(mut acc) = iter.next() else {
            return;
        };
        let mut w_before = 0.0; // weight strictly before `acc`
        for c in iter {
            let q0 = w_before / total;
            let q1 = (w_before + acc.weight + c.weight) / total;
            if self.scale(q1) - self.scale(q0) <= 1.0 {
                // Fold c into acc (weighted mean).
                let w = acc.weight + c.weight;
                acc.mean += (c.mean - acc.mean) * c.weight / w;
                acc.weight = w;
            } else {
                w_before += acc.weight;
                out.push(acc);
                acc = c;
            }
        }
        out.push(acc);
        self.centroids = out;
    }

    /// The value at quantile `phi ∈ [0, 1]`; `None` when empty.
    pub fn quantile(&mut self, phi: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&phi), "quantile {phi} out of [0,1]");
        self.compress();
        if self.centroids.is_empty() {
            return None;
        }
        if self.centroids.len() == 1 {
            return self.centroids.first().map(|c| c.mean);
        }
        let target = phi * self.total_weight;
        // Centroid i's mass is centred at cum_i + w_i/2.
        let mut cum = 0.0;
        let mut prev_mid = 0.0;
        let mut prev_mean = self.min;
        for c in &self.centroids {
            let mid = cum + c.weight / 2.0;
            if target < mid {
                let span = mid - prev_mid;
                let frac = if span > 0.0 {
                    (target - prev_mid) / span
                } else {
                    0.0
                };
                return Some(prev_mean + frac * (c.mean - prev_mean));
            }
            prev_mid = mid;
            prev_mean = c.mean;
            cum += c.weight;
        }
        Some(self.max)
    }

    /// Number of retained centroids (space usage, O(δ)).
    pub fn centroid_count(&mut self) -> usize {
        self.compress();
        self.centroids.len()
    }

    /// Raw parts `(compression, total_weight, min, max, centroids as
    /// (mean, weight))` after compressing (serialization support).
    pub fn parts(&mut self) -> (f64, f64, f64, f64, Vec<(f64, f64)>) {
        self.compress();
        (
            self.compression,
            self.total_weight,
            self.min,
            self.max,
            self.centroids.iter().map(|c| (c.mean, c.weight)).collect(),
        )
    }

    /// Reconstructs a digest from raw parts; `None` when centroids are not
    /// sorted by mean or weights are non-positive.
    pub fn from_parts(
        compression: f64,
        total_weight: f64,
        min: f64,
        max: f64,
        centroids: Vec<(f64, f64)>,
    ) -> Option<TDigest> {
        if !(compression >= 10.0) || total_weight < 0.0 {
            return None;
        }
        for (a, b) in centroids.iter().zip(centroids.iter().skip(1)) {
            if a.0 > b.0 {
                return None;
            }
        }
        if centroids.iter().any(|c| !c.0.is_finite() || c.1 <= 0.0) {
            return None;
        }
        Some(TDigest {
            compression,
            centroids: centroids
                .into_iter()
                .map(|(mean, weight)| Centroid { mean, weight })
                .collect(),
            buffer: Vec::new(),
            total_weight,
            min,
            max,
        })
    }
}

impl MergeSketch for TDigest {
    fn merge(&mut self, other: &Self) {
        let mut o = other.clone();
        o.compress();
        self.buffer.extend_from_slice(&o.centroids);
        self.total_weight += o.total_weight;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        self.compress();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_stream(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 7919) % n) as f64 / n as f64).collect()
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn compression_bound() {
        let _ = TDigest::new(5.0);
    }

    #[test]
    fn empty_and_single() {
        let mut t = TDigest::new(100.0);
        assert_eq!(t.quantile(0.5), None);
        t.add(7.0);
        assert_eq!(t.quantile(0.5), Some(7.0));
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn uniform_quantiles_accurate() {
        let mut t = TDigest::new(100.0);
        for x in uniform_stream(50_000) {
            t.add(x);
        }
        for phi in [0.1, 0.5, 0.9] {
            let v = t.quantile(phi).unwrap();
            assert!((v - phi).abs() < 0.01, "phi={phi} v={v}");
        }
        // Tails are extra accurate.
        for phi in [0.001, 0.999] {
            let v = t.quantile(phi).unwrap();
            assert!((v - phi).abs() < 0.002, "phi={phi} v={v}");
        }
    }

    #[test]
    fn skewed_distribution() {
        // AIS-like: mass at 0 (moored) plus a cruising mode around 14.
        let mut t = TDigest::new(100.0);
        for i in 0..30_000 {
            if i % 3 == 0 {
                t.add(0.1 * ((i % 7) as f64) / 7.0);
            } else {
                t.add(12.0 + 4.0 * ((i % 100) as f64) / 100.0);
            }
        }
        let p10 = t.quantile(0.1).unwrap();
        let p50 = t.quantile(0.5).unwrap();
        let p90 = t.quantile(0.9).unwrap();
        assert!(p10 < 1.0, "p10={p10}");
        assert!((12.0..16.5).contains(&p50), "p50={p50}");
        assert!((14.0..16.5).contains(&p90), "p90={p90}");
        assert!(p10 <= p50 && p50 <= p90);
    }

    #[test]
    fn quantiles_monotone() {
        let mut t = TDigest::new(50.0);
        for x in uniform_stream(10_000) {
            t.add(x * 100.0 - 50.0);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let v = t.quantile(i as f64 / 20.0).unwrap();
            assert!(v >= prev - 1e-9, "non-monotone at {i}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn space_bounded() {
        let mut t = TDigest::new(100.0);
        for x in uniform_stream(200_000) {
            t.add(x);
        }
        let n = t.centroid_count();
        assert!(n <= 250, "centroids {n}");
    }

    #[test]
    fn merge_matches_single_pass() {
        let data = uniform_stream(40_000);
        let mut whole = TDigest::new(100.0);
        for &x in &data {
            whole.add(x);
        }
        let mut a = TDigest::new(100.0);
        let mut b = TDigest::new(100.0);
        for (i, &x) in data.iter().enumerate() {
            if i < 10_000 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for phi in [0.1, 0.5, 0.9] {
            let va = a.quantile(phi).unwrap();
            let vw = whole.quantile(phi).unwrap();
            assert!(
                (va - vw).abs() < 0.02,
                "phi={phi}: merged {va} vs whole {vw}"
            );
        }
    }

    #[test]
    fn ignores_non_finite() {
        let mut t = TDigest::new(100.0);
        t.add(f64::NAN);
        t.add(f64::NEG_INFINITY);
        t.add(3.0);
        assert_eq!(t.count(), 1);
        assert_eq!(t.quantile(0.5), Some(3.0));
    }
}
