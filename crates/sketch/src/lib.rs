//! # pol-sketch — mergeable streaming statistics
//!
//! Table 3 of the paper maps each feature of the inventory to a set of
//! statistics: count, distinct count, mean, standard deviation, approximate
//! 10/50/90-percentiles, fixed 30°-bin histograms and Top-N frequency. On
//! Spark those come from built-in aggregators (`approx_percentile` is a
//! Greenwald–Khanna summary, `approx_count_distinct` a HyperLogLog). This
//! crate provides the same machinery as standalone, *mergeable* sketches:
//!
//! * [`Welford`] — exact count/mean/variance/min/max in one pass,
//! * [`Circular`] — mean direction for course/heading (the `X*` entries of
//!   Table 3; an arithmetic mean of 359° and 1° would be 180°, the circular
//!   mean is 0°),
//! * [`GkSketch`] — Greenwald–Khanna rank-error-bounded quantiles,
//! * [`TDigest`] — Dunning's merging t-digest (the ablation partner of GK),
//! * [`SpaceSaving`] — Metwally et al. heavy hitters for Top-N origins,
//!   destinations and cell transitions,
//! * [`HyperLogLog`] / [`Distinct`] — distinct vessels and trips per cell,
//! * [`Histogram`] / [`AngleHistogram`] — the 30-degree course/heading bins.
//!
//! Every sketch implements [`MergeSketch`], a commutative-monoid contract
//! (verified by property tests), which is exactly what the execution
//! engine's combiner-based `aggregate_by_key` needs: shard-local sketches
//! are built in the map phase and merged associatively in the reduce phase.

#![deny(missing_docs)]

pub mod circular;
pub mod crc64;
pub mod gk;
pub mod hash;
pub mod histogram;
pub mod hll;
pub mod spacesaving;
pub mod tdigest;
pub mod welford;
pub mod wire;

pub use circular::Circular;
pub use gk::GkSketch;
pub use histogram::{AngleHistogram, Histogram};
pub use hll::{Distinct, HyperLogLog};
pub use spacesaving::SpaceSaving;
pub use tdigest::TDigest;
pub use welford::Welford;

/// The contract every statistic of the inventory satisfies: an associative,
/// commutative merge with the empty sketch as identity. This is what makes
/// the map/reduce decomposition of §3.3.4 correct regardless of how records
/// are partitioned.
pub trait MergeSketch {
    /// Folds `other` into `self`. Must be associative and commutative up to
    /// each sketch's documented approximation error.
    fn merge(&mut self, other: &Self);
}
