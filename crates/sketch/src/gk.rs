//! Greenwald–Khanna ε-approximate quantile summary.
//!
//! This is the algorithm behind Spark's `approx_percentile`, i.e. the
//! "Perc." column of Table 3 (10th/50th/90th percentiles of speed, ETO and
//! ATA per cell). A sketch with parameter `ε` answers any quantile query
//! with rank error at most `ε·n`. Merging two sketches adds their error
//! bounds (`ε₁·n₁ + ε₂·n₂` in rank), which is the standard behaviour also
//! exhibited by Spark's `QuantileSummaries`.

use crate::MergeSketch;

#[derive(Clone, Copy, Debug, PartialEq)]
struct Tuple {
    /// Observed value.
    v: f64,
    /// Number of observations represented by this tuple.
    g: u64,
    /// Uncertainty of this tuple's rank.
    delta: u64,
}

/// The GK quantile sketch.
#[derive(Clone, Debug)]
pub struct GkSketch {
    epsilon: f64,
    n: u64,
    tuples: Vec<Tuple>, // sorted by v
    /// First [`INLINE_CAP`] buffered values, stored inline: the inventory
    /// holds one sketch per (cell, key) and most see only a handful of
    /// values, so the common case never touches the heap.
    inline: [f64; INLINE_CAP],
    inline_len: u8,
    /// Buffered values past the inline capacity. Cleared (capacity
    /// retained) on flush, so a hot sketch allocates once and then runs
    /// allocation-free.
    spill: Vec<f64>,
}

/// Buffered insertions between merge passes (amortises the O(s) insert).
const BUFFER_CAP: usize = 512;

/// Buffered values held inline before spilling to the heap.
const INLINE_CAP: usize = 16;

impl GkSketch {
    /// Creates a sketch with rank-error bound `epsilon` (e.g. `0.01`).
    ///
    /// # Panics
    /// When `epsilon` is not in `(0, 0.5)`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 0.5,
            "epsilon {epsilon} out of (0, 0.5)"
        );
        Self {
            epsilon,
            n: 0,
            tuples: Vec::new(),
            inline: [0.0; INLINE_CAP],
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    /// The sketch's rank-error parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Values currently buffered (inline + spill).
    fn buffered(&self) -> usize {
        self.inline_len as usize + self.spill.len()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n + self.buffered() as u64
    }

    /// Adds one observation. Non-finite values are ignored.
    #[inline]
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        // Invariant: the spill is only non-empty while the inline buffer
        // is full, so buffered insertion order is inline-then-spill.
        if (self.inline_len as usize) < INLINE_CAP {
            self.inline[self.inline_len as usize] = x;
            self.inline_len += 1;
        } else {
            self.spill.push(x);
        }
        if self.buffered() >= BUFFER_CAP {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buffered() == 0 {
            return;
        }
        // Gather the batch in one sortable slice. Appending the inline
        // values after the spill permutes the pre-sort order, which is
        // immaterial: `total_cmp`-equal f64s are bit-identical, so the
        // sorted value sequence (and with it every derived tuple) is
        // independent of both the pre-sort order and sort stability.
        self.spill
            .extend_from_slice(&self.inline[..self.inline_len as usize]);
        self.inline_len = 0;
        self.spill.sort_unstable_by(f64::total_cmp);
        let mut merged = Vec::with_capacity(self.tuples.len() + self.spill.len());
        let mut ti = 0;
        for &x in &self.spill {
            while ti < self.tuples.len() && self.tuples[ti].v <= x {
                merged.push(self.tuples[ti]);
                ti += 1;
            }
            self.n += 1;
            let delta = if merged.is_empty() || ti == self.tuples.len() {
                0 // new min or max is exact
            } else {
                (2.0 * self.epsilon * self.n as f64).floor() as u64
            };
            merged.push(Tuple { v: x, g: 1, delta });
        }
        merged.extend_from_slice(&self.tuples[ti..]);
        self.tuples = merged;
        self.spill.clear();
        self.compress();
    }

    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.epsilon * self.n as f64).floor() as u64;
        // In-place greedy forward fold: `w` is the write cursor; the first
        // tuple (exact minimum) is kept and never folded into.
        let mut w = 1;
        for i in 1..self.tuples.len() {
            let cur = self.tuples[i];
            // Never fold the exact-minimum tuple into its successor, and
            // never exceed the error budget.
            if w > 1 {
                let last = self.tuples[w - 1];
                if last.g + cur.g + cur.delta <= threshold {
                    self.tuples[w - 1] = Tuple {
                        v: cur.v,
                        g: last.g + cur.g,
                        delta: cur.delta,
                    };
                    continue;
                }
            }
            self.tuples[w] = cur;
            w += 1;
        }
        self.tuples.truncate(w);
    }

    /// The value at quantile `phi ∈ [0, 1]`, with rank error ≤ `ε·n`
    /// (plus merge degradation, see [`MergeSketch`] impl). `None` when empty.
    pub fn quantile(&mut self, phi: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&phi), "quantile {phi} out of [0,1]");
        self.flush();
        if self.tuples.is_empty() {
            return None;
        }
        let target = (phi * self.n as f64).ceil().max(1.0) as u64;
        let allowed = (self.epsilon * self.n as f64) as u64;
        // Standard GK query: return the last tuple whose maximum possible
        // rank stays within target + ε·n.
        let mut rmin = 0u64;
        let mut answer = self.tuples.first()?.v;
        for t in &self.tuples {
            rmin += t.g;
            if rmin + t.delta > target + allowed {
                return Some(answer);
            }
            answer = t.v;
        }
        Some(answer)
    }

    /// Number of stored tuples (the space usage; O(1/ε · log(εn))).
    pub fn tuple_count(&mut self) -> usize {
        self.flush();
        self.tuples.len()
    }

    /// Raw parts `(epsilon, n, tuples as (v, g, delta))` after flushing
    /// (serialization support).
    pub fn parts(&mut self) -> (f64, u64, Vec<(f64, u64, u64)>) {
        self.flush();
        (
            self.epsilon,
            self.n,
            self.tuples.iter().map(|t| (t.v, t.g, t.delta)).collect(),
        )
    }

    /// Reconstructs a sketch from raw parts; `None` when the tuples are not
    /// sorted by value or the counts are inconsistent.
    pub fn from_parts(epsilon: f64, n: u64, tuples: Vec<(f64, u64, u64)>) -> Option<GkSketch> {
        if !(epsilon > 0.0 && epsilon < 0.5) {
            return None;
        }
        let mut total_g = 0u64;
        for (a, b) in tuples.iter().zip(tuples.iter().skip(1)) {
            if a.0 > b.0 {
                return None;
            }
        }
        for t in &tuples {
            if !t.0.is_finite() {
                return None;
            }
            total_g += t.1;
        }
        if total_g != n {
            return None;
        }
        Some(GkSketch {
            epsilon,
            n,
            tuples: tuples
                .into_iter()
                .map(|(v, g, delta)| Tuple { v, g, delta })
                .collect(),
            inline: [0.0; INLINE_CAP],
            inline_len: 0,
            spill: Vec::new(),
        })
    }
}

impl MergeSketch for GkSketch {
    fn merge(&mut self, other: &Self) {
        if other.tuples.is_empty() {
            // Pure-buffer other (never flushed): replaying its buffered
            // values as plain insertions is exact — no tuple lists need to
            // exist, so small-sketch merges stay allocation-free. This is
            // the common case for per-cell sketches merged across shards.
            for &x in &other.inline[..other.inline_len as usize] {
                self.add(x);
            }
            for &x in &other.spill {
                self.add(x);
            }
            return;
        }
        let mut other = other.clone();
        other.flush();
        self.flush();
        // Merge-sort the tuple lists; g and delta survive unchanged (the
        // classical mergeable-summary combination). Rank error becomes the
        // sum of both sketches' absolute errors.
        let mut merged = Vec::with_capacity(self.tuples.len() + other.tuples.len());
        let (a, b) = (&self.tuples, &other.tuples);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i].v <= b[j].v {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.tuples = merged;
        self.n += other.n;
        self.compress();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_of(sorted: &[f64], v: f64) -> f64 {
        sorted.iter().filter(|&&x| x <= v).count() as f64
    }

    #[test]
    #[should_panic(expected = "out of (0, 0.5)")]
    fn bad_epsilon() {
        let _ = GkSketch::new(0.6);
    }

    #[test]
    fn empty_returns_none() {
        let mut g = GkSketch::new(0.01);
        assert_eq!(g.quantile(0.5), None);
        assert_eq!(g.count(), 0);
    }

    #[test]
    fn single_value() {
        let mut g = GkSketch::new(0.01);
        g.add(42.0);
        assert_eq!(g.quantile(0.0), Some(42.0));
        assert_eq!(g.quantile(0.5), Some(42.0));
        assert_eq!(g.quantile(1.0), Some(42.0));
    }

    #[test]
    fn rank_error_within_epsilon() {
        let eps = 0.01;
        let n = 20_000;
        let mut g = GkSketch::new(eps);
        // Deterministic shuffled-ish stream.
        let mut data: Vec<f64> = (0..n).map(|i| ((i * 7919) % n) as f64).collect();
        for &x in &data {
            g.add(x);
        }
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for phi in [0.1, 0.5, 0.9, 0.01, 0.99] {
            let v = g.quantile(phi).unwrap();
            let r = rank_of(&data, v);
            let err = (r - phi * n as f64).abs() / n as f64;
            assert!(err <= eps + 1e-9, "phi={phi} v={v} rank err {err}");
        }
    }

    #[test]
    fn space_is_sublinear() {
        let mut g = GkSketch::new(0.01);
        for i in 0..100_000 {
            g.add((i % 1000) as f64);
        }
        let tuples = g.tuple_count();
        assert!(tuples < 2_000, "stored {tuples} tuples for 100k values");
    }

    #[test]
    fn merged_error_within_two_epsilon() {
        let eps = 0.01;
        let n = 10_000;
        let mut a = GkSketch::new(eps);
        let mut b = GkSketch::new(eps);
        let mut data: Vec<f64> = (0..2 * n)
            .map(|i| ((i * 104_729) % (2 * n)) as f64)
            .collect();
        for (i, &x) in data.iter().enumerate() {
            if i % 2 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        data.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for phi in [0.1, 0.5, 0.9] {
            let v = a.quantile(phi).unwrap();
            let r = rank_of(&data, v);
            let err = (r - phi * 2.0 * n as f64).abs() / (2.0 * n as f64);
            assert!(err <= 2.0 * eps + 1e-9, "phi={phi} err {err}");
        }
    }

    #[test]
    fn extremes_are_exactish() {
        let mut g = GkSketch::new(0.05);
        for i in 0..1000 {
            g.add(i as f64);
        }
        assert_eq!(g.quantile(0.0), Some(0.0));
        let hi = g.quantile(1.0).unwrap();
        assert!(hi >= 999.0 - 50.0, "p100 {hi}");
    }

    #[test]
    fn flush_boundary_counts_inline_and_spill_together() {
        // The inline buffer and the spill vector jointly count toward
        // BUFFER_CAP, so flush points are unchanged by the inline refit.
        let mut g = GkSketch::new(0.01);
        for i in 0..(BUFFER_CAP * 3 + 17) {
            g.add(i as f64);
        }
        assert_eq!(g.count(), (BUFFER_CAP * 3 + 17) as u64);
        assert_eq!(g.quantile(0.0), Some(0.0));
        let hi = g.quantile(1.0).unwrap();
        assert!(hi >= (BUFFER_CAP * 3) as f64, "p100 {hi}");
    }

    #[test]
    fn ignores_non_finite() {
        let mut g = GkSketch::new(0.01);
        g.add(f64::NAN);
        g.add(1.0);
        assert_eq!(g.count(), 1);
    }
}
