//! Deterministic hashing for sketches and shuffle partitioning.
//!
//! `std::collections::HashMap`'s default hasher is randomly seeded per
//! process; sketches (HyperLogLog) and the engine's hash partitioner need
//! run-to-run determinism so the pipeline is reproducible given a seed.
//! This module provides an FxHash-style 64-bit hasher plus a splitmix64
//! finalizer for avalanche.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The multiplicative constant of FxHash (Firefox's hash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher (FxHash).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

/// `BuildHasher` for deterministic hash maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with the deterministic hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with the deterministic hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// splitmix64 finalizer: a strong avalanche over a 64-bit word. Applied on
/// top of FxHash where unbiased bit distribution matters (HyperLogLog
/// register selection, shuffle partitioning).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes any `Hash` value to a well-mixed deterministic 64-bit digest.
#[inline]
pub fn hash64<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    mix64(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash64(&42u64), hash64(&42u64));
        assert_eq!(hash64(&"abc"), hash64(&"abc"));
        assert_ne!(hash64(&42u64), hash64(&43u64));
    }

    #[test]
    fn mix64_bijective_sample() {
        // splitmix64's finalizer is a bijection; sample for collisions.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn bits_are_balanced() {
        // Over sequential keys the mixed hash must have ~50% ones per bit.
        let n = 4096;
        let mut ones = [0u32; 64];
        for i in 0..n {
            let h = hash64(&(i as u64));
            for (b, o) in ones.iter_mut().enumerate() {
                *o += ((h >> b) & 1) as u32;
            }
        }
        for (b, o) in ones.iter().enumerate() {
            let frac = *o as f64 / n as f64;
            assert!((0.42..0.58).contains(&frac), "bit {b}: {frac}");
        }
    }

    #[test]
    fn fx_map_usable() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        m.insert("a", 1);
        assert_eq!(m.get("a"), Some(&1));
    }
}
