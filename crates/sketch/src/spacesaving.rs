//! SpaceSaving heavy hitters (Metwally, Agrawal & El Abbadi 2005) — the
//! "Top-N" column of Table 3.
//!
//! The inventory stores, per cell and grouping key, the most frequent
//! origins, destinations and outgoing cell transitions. Exact counting of
//! all values per cell would defeat the "compact data model" goal, so each
//! cell keeps a bounded [`SpaceSaving`] sketch: at most `capacity` counters,
//! with the classic guarantee that any item with true frequency
//! `> n / capacity` is present, and every reported count overestimates the
//! true count by at most the stored `error`.

use crate::hash::{hash64, FxHashMap};
use crate::MergeSketch;
use std::hash::Hash;

/// One monitored item: an (over-)estimated count and its maximum
/// overestimation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Counter {
    /// Estimated count (true count ≤ `count`, ≥ `count - error`).
    pub count: u64,
    /// Maximum overestimation baked into `count`.
    pub error: u64,
}

/// Capacity at or below which monitored items are stored inline (no heap).
/// The pipeline default `top_n_capacity` is 8, so inventory builds keep all
/// three per-cell Top-N sketches allocation-free.
const INLINE_SLOTS: usize = 8;

/// Counter storage: a fixed slot array for small capacities, a hash map
/// beyond that. The variant is decided once by `capacity` and never changes.
#[derive(Clone, Debug)]
enum Slots<T> {
    /// `slots[..len]` are `Some`, the rest `None`. Eviction replaces the
    /// first minimal slot in slot order, so the layout is deterministic.
    Inline {
        slots: [Option<(T, Counter)>; INLINE_SLOTS],
        len: u8,
    },
    Heap(FxHashMap<T, Counter>),
}

/// The SpaceSaving sketch over items of type `T`.
#[derive(Clone, Debug)]
pub struct SpaceSaving<T: Eq + Hash + Clone> {
    capacity: usize,
    slots: Slots<T>,
    total: u64,
}

impl<T: Eq + Hash + Clone> SpaceSaving<T> {
    /// Creates a sketch tracking at most `capacity` items.
    ///
    /// # Panics
    /// When `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            slots: Self::empty_slots(capacity),
            total: 0,
        }
    }

    fn empty_slots(capacity: usize) -> Slots<T> {
        if capacity <= INLINE_SLOTS {
            Slots::Inline {
                slots: std::array::from_fn(|_| None),
                len: 0,
            }
        } else {
            Slots::Heap(FxHashMap::default())
        }
    }

    /// Observes one occurrence of `item`.
    pub fn add(&mut self, item: T) {
        self.add_weighted(item, 1);
    }

    /// Observes `weight` occurrences of `item`.
    pub fn add_weighted(&mut self, item: T, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total += weight;
        let capacity = self.capacity;
        match &mut self.slots {
            Slots::Inline { slots, len } => {
                let used = *len as usize;
                if let Some((_, c)) = slots[..used].iter_mut().flatten().find(|(k, _)| *k == item) {
                    c.count += weight;
                    return;
                }
                if used < capacity {
                    slots[used] = Some((
                        item,
                        Counter {
                            count: weight,
                            error: 0,
                        },
                    ));
                    *len += 1;
                    return;
                }
                // Evict the first minimal counter in slot order; the
                // newcomer takes its slot and inherits its count as error.
                // (`slots[..used]` are all `Some` by the len invariant; a
                // zero-capacity sketch has nothing to evict and drops.)
                let count_at =
                    |e: &Option<(T, Counter)>| e.as_ref().map_or(u64::MAX, |s| s.1.count);
                let Some(min_i) = (0..used).min_by_key(|&i| count_at(&slots[i])) else {
                    return;
                };
                let min_count = slots[min_i].as_ref().map_or(0, |s| s.1.count);
                slots[min_i] = Some((
                    item,
                    Counter {
                        count: min_count + weight,
                        error: min_count,
                    },
                ));
            }
            Slots::Heap(items) => {
                if let Some(c) = items.get_mut(&item) {
                    c.count += weight;
                    return;
                }
                if items.len() < capacity {
                    items.insert(
                        item,
                        Counter {
                            count: weight,
                            error: 0,
                        },
                    );
                    return;
                }
                // Evict the minimum counter; the newcomer inherits its count
                // as error. (At this point len >= capacity >= 1, so a minimum
                // always exists; an impossible empty map degrades to a plain
                // insert.)
                let Some((min_key, min_count)) = items
                    .iter()
                    .min_by_key(|(_, c)| c.count)
                    .map(|(k, c)| (k.clone(), c.count))
                else {
                    items.insert(
                        item,
                        Counter {
                            count: weight,
                            error: 0,
                        },
                    );
                    return;
                };
                items.remove(&min_key);
                items.insert(
                    item,
                    Counter {
                        count: min_count + weight,
                        error: min_count,
                    },
                );
            }
        }
    }

    /// Total weight observed (including evicted items).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of monitored items (≤ capacity).
    pub fn len(&self) -> usize {
        match &self.slots {
            Slots::Inline { len, .. } => *len as usize,
            Slots::Heap(items) => items.len(),
        }
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The estimated count for an item currently monitored.
    pub fn estimate(&self, item: &T) -> Option<Counter> {
        match &self.slots {
            Slots::Inline { slots, len } => slots[..*len as usize]
                .iter()
                .flatten()
                .find(|(k, _)| k == item)
                .map(|(_, c)| *c),
            Slots::Heap(items) => items.get(item).copied(),
        }
    }

    /// The `n` heaviest items, descending by estimated count.
    /// Ties break on lower error (more certain first), then on item hash so
    /// the order is a function of the contents alone — a freshly built sketch
    /// and one decoded from wire bytes rank full ties identically even though
    /// their storage iteration orders differ.
    pub fn top(&self, n: usize) -> Vec<(T, Counter)> {
        let mut all: Vec<(T, Counter)> = self.iter().map(|(k, c)| (k.clone(), *c)).collect();
        all.sort_by(|a, b| {
            b.1.count
                .cmp(&a.1.count)
                .then(a.1.error.cmp(&b.1.error))
                .then_with(|| hash64(&a.0).cmp(&hash64(&b.0)))
        });
        all.truncate(n);
        all
    }

    /// The single most frequent item, if any.
    pub fn top1(&self) -> Option<(T, Counter)> {
        self.top(1).pop()
    }

    /// Iterates over all monitored items (slot order for inline storage,
    /// map order otherwise — callers needing canonical output must sort).
    pub fn iter(&self) -> impl Iterator<Item = (&T, &Counter)> {
        let (inline, heap): (&[Option<(T, Counter)>], Option<&FxHashMap<T, Counter>>) =
            match &self.slots {
                Slots::Inline { slots, len } => (&slots[..*len as usize], None),
                Slots::Heap(items) => (&[], Some(items)),
            };
        inline
            .iter()
            .flatten()
            .map(|(k, c)| (k, c))
            .chain(heap.into_iter().flatten())
    }

    /// Whether `item` is currently monitored.
    fn contains(&self, item: &T) -> bool {
        self.estimate(item).is_some()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reconstructs a sketch from raw parts (deserialization).
    ///
    /// # Panics
    /// When `capacity == 0` or more items than capacity are supplied.
    pub fn from_parts(capacity: usize, total: u64, items: Vec<(T, Counter)>) -> SpaceSaving<T> {
        assert!(capacity > 0, "capacity must be positive");
        assert!(items.len() <= capacity, "items exceed capacity");
        let mut slots = Self::empty_slots(capacity);
        match &mut slots {
            Slots::Inline { slots, len } => {
                for (i, entry) in items.into_iter().enumerate() {
                    slots[i] = Some(entry);
                    *len += 1;
                }
            }
            Slots::Heap(map) => map.extend(items),
        }
        SpaceSaving {
            capacity,
            slots,
            total,
        }
    }
}

impl<T: Eq + Hash + Clone> MergeSketch for SpaceSaving<T> {
    /// Merges two sketches (Agarwal et al., "Mergeable Summaries").
    ///
    /// An item missing from one *at-capacity* sketch may have been observed
    /// there and evicted, with true count at most that sketch's minimum
    /// counter — so absent items are credited `min_count` as both count and
    /// error. This preserves the one-sided guarantee
    /// `count ≥ true ≥ count − error`. A sketch below capacity is exact, so
    /// its credit is zero.
    fn merge(&mut self, other: &Self) {
        let credit = |s: &Self| -> u64 {
            if s.len() < s.capacity {
                0
            } else {
                s.iter().map(|(_, c)| c.count).min().unwrap_or(0)
            }
        };
        let self_credit = credit(self);
        let other_credit = credit(other);
        self.total += other.total;
        let capacity = self.capacity;
        match &mut self.slots {
            Slots::Inline { slots, len } => {
                // The union can temporarily hold up to 2×capacity items, so
                // merge through a stack scratch twice the inline size: self's
                // slots first, then other's new items in other's iteration
                // order.
                let orig = *len as usize;
                let mut scratch: [Option<(T, Counter)>; 2 * INLINE_SLOTS] =
                    std::array::from_fn(|_| None);
                for (i, slot) in slots[..orig].iter_mut().enumerate() {
                    scratch[i] = slot.take();
                }
                *len = 0;
                let mut n = orig;
                // Items monitored by `other`: add counts; items new to
                // `self` get `self_credit` for what self may have evicted.
                for (k, c) in other.iter() {
                    if let Some((_, e)) = scratch[..n].iter_mut().flatten().find(|(sk, _)| sk == k)
                    {
                        e.count += c.count;
                        e.error += c.error;
                    } else {
                        scratch[n] = Some((
                            k.clone(),
                            Counter {
                                count: c.count + self_credit,
                                error: c.error + self_credit,
                            },
                        ));
                        n += 1;
                    }
                }
                // Items only in `self` get `other_credit` for what other may
                // have evicted.
                for entry in scratch[..orig].iter_mut().flatten() {
                    if !other.contains(&entry.0) {
                        entry.1.count += other_credit;
                        entry.1.error += other_credit;
                    }
                }
                if n > capacity {
                    // Stable sort keeps ties in self-then-other order.
                    // (`scratch[..n]` are all `Some`; `None` sorting last is
                    // harmless either way.)
                    let count_at = |e: &Option<(T, Counter)>| e.as_ref().map_or(0, |s| s.1.count);
                    scratch[..n].sort_by(|a, b| count_at(b).cmp(&count_at(a)));
                    n = capacity;
                }
                for (i, entry) in scratch[..n].iter_mut().enumerate() {
                    slots[i] = entry.take();
                }
                *len = n as u8;
            }
            Slots::Heap(items) => {
                // Items monitored by `other`: add counts; items new to
                // `self` get `self_credit` for what self may have evicted.
                for (k, c) in other.iter() {
                    match items.get_mut(k) {
                        Some(e) => {
                            e.count += c.count;
                            e.error += c.error;
                        }
                        None => {
                            items.insert(
                                k.clone(),
                                Counter {
                                    count: c.count + self_credit,
                                    error: c.error + self_credit,
                                },
                            );
                        }
                    }
                }
                // Items only in `self` get `other_credit` for what other may
                // have evicted.
                for (k, e) in items.iter_mut() {
                    if !other.contains(k) {
                        e.count += other_credit;
                        e.error += other_credit;
                    }
                }
                if items.len() > capacity {
                    let mut all: Vec<(T, Counter)> = items.drain().collect();
                    all.sort_by(|a, b| b.1.count.cmp(&a.1.count));
                    all.truncate(capacity);
                    items.extend(all);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SpaceSaving::<u32>::new(0);
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut s = SpaceSaving::new(10);
        for _ in 0..5 {
            s.add("a");
        }
        for _ in 0..3 {
            s.add("b");
        }
        s.add("c");
        assert_eq!(s.estimate(&"a"), Some(Counter { count: 5, error: 0 }));
        assert_eq!(s.estimate(&"b"), Some(Counter { count: 3, error: 0 }));
        assert_eq!(s.top1().unwrap().0, "a");
        assert_eq!(s.total(), 9);
    }

    #[test]
    fn heavy_hitter_survives_eviction_pressure() {
        let mut s = SpaceSaving::new(4);
        // "hot" appears 100 times among 200 singletons.
        for i in 0..200u32 {
            s.add(format!("noise{i}"));
            if i % 2 == 0 {
                s.add("hot".to_string());
            }
        }
        let top = s.top(1);
        assert_eq!(top[0].0, "hot");
        let c = top[0].1;
        // Overestimates, never underestimates beyond the error bound.
        assert!(c.count >= 100, "count {}", c.count);
        assert!(c.count - c.error <= 100);
    }

    #[test]
    fn overestimation_bounded_by_n_over_k() {
        let mut s = SpaceSaving::new(8);
        for i in 0..1000u32 {
            s.add(i % 100);
        }
        for (_, c) in s.iter() {
            assert!(c.error <= 1000 / 8, "error {}", c.error);
        }
    }

    #[test]
    fn top_order_and_truncation() {
        let mut s = SpaceSaving::new(10);
        for (item, n) in [("x", 7), ("y", 9), ("z", 2)] {
            for _ in 0..n {
                s.add(item);
            }
        }
        let top = s.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "y");
        assert_eq!(top[1].0, "x");
    }

    #[test]
    fn merge_preserves_heavy_hitters() {
        let mut a = SpaceSaving::new(5);
        let mut b = SpaceSaving::new(5);
        for _ in 0..50 {
            a.add("big".to_string());
        }
        for i in 0..20u32 {
            a.add(format!("n{i}"));
        }
        for _ in 0..60 {
            b.add("big".to_string());
        }
        for i in 20..40u32 {
            b.add(format!("n{i}"));
        }
        a.merge(&b);
        assert_eq!(a.top1().unwrap().0, "big");
        assert!(a.len() <= 5);
        assert_eq!(a.total(), 150);
        let c = a.estimate(&"big".to_string()).unwrap();
        assert!(c.count >= 110);
    }

    #[test]
    fn inline_eviction_replaces_first_minimum_slot() {
        let mut s = SpaceSaving::new(2);
        s.add("a");
        s.add("b");
        s.add("c"); // evicts "a": first minimal counter in slot order
        assert!(s.estimate(&"a").is_none());
        assert_eq!(s.estimate(&"b"), Some(Counter { count: 1, error: 0 }));
        assert_eq!(s.estimate(&"c"), Some(Counter { count: 2, error: 1 }));
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn heap_storage_evicts_and_merges_like_inline() {
        // capacity > INLINE_SLOTS exercises the hash-map variant.
        let mut a = SpaceSaving::new(INLINE_SLOTS + 1);
        let mut b = SpaceSaving::new(INLINE_SLOTS + 1);
        for _ in 0..50 {
            a.add("big".to_string());
        }
        for i in 0..30u32 {
            a.add(format!("n{i}"));
        }
        for _ in 0..60 {
            b.add("big".to_string());
        }
        for i in 30..60u32 {
            b.add(format!("n{i}"));
        }
        a.merge(&b);
        assert_eq!(a.top1().unwrap().0, "big");
        assert!(a.len() <= INLINE_SLOTS + 1);
        assert_eq!(a.total(), 170);
        let c = a.estimate(&"big".to_string()).unwrap();
        assert!(c.count >= 110);
        assert!(c.count - c.error <= 110);
    }

    #[test]
    fn inline_merge_overflow_keeps_heaviest() {
        // Two full inline sketches with disjoint items: the union overflows
        // the capacity and must keep the heaviest, ties in self-then-other
        // order.
        let mut a = SpaceSaving::new(3);
        let mut b = SpaceSaving::new(3);
        for (item, n) in [("a1", 10u32), ("a2", 2), ("a3", 2)] {
            for _ in 0..n {
                a.add(item);
            }
        }
        for (item, n) in [("b1", 9u32), ("b2", 8), ("b3", 1)] {
            for _ in 0..n {
                b.add(item);
            }
        }
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.total(), 32);
        // a1: 10 + other_credit(1); b1: 9 + self_credit(2); b2: 8 + 2.
        assert_eq!(a.estimate(&"a1").map(|c| c.count), Some(11));
        assert_eq!(a.estimate(&"b1").map(|c| c.count), Some(11));
        assert_eq!(a.estimate(&"b2").map(|c| c.count), Some(10));
    }

    #[test]
    fn weighted_adds() {
        let mut s = SpaceSaving::new(3);
        s.add_weighted("w", 10);
        s.add_weighted("w", 0); // no-op
        assert_eq!(s.estimate(&"w").unwrap().count, 10);
        assert_eq!(s.total(), 10);
    }
}
