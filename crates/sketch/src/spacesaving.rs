//! SpaceSaving heavy hitters (Metwally, Agrawal & El Abbadi 2005) — the
//! "Top-N" column of Table 3.
//!
//! The inventory stores, per cell and grouping key, the most frequent
//! origins, destinations and outgoing cell transitions. Exact counting of
//! all values per cell would defeat the "compact data model" goal, so each
//! cell keeps a bounded [`SpaceSaving`] sketch: at most `capacity` counters,
//! with the classic guarantee that any item with true frequency
//! `> n / capacity` is present, and every reported count overestimates the
//! true count by at most the stored `error`.

use crate::hash::FxHashMap;
use crate::MergeSketch;
use std::hash::Hash;

/// One monitored item: an (over-)estimated count and its maximum
/// overestimation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Counter {
    /// Estimated count (true count ≤ `count`, ≥ `count - error`).
    pub count: u64,
    /// Maximum overestimation baked into `count`.
    pub error: u64,
}

/// The SpaceSaving sketch over items of type `T`.
#[derive(Clone, Debug)]
pub struct SpaceSaving<T: Eq + Hash + Clone> {
    capacity: usize,
    items: FxHashMap<T, Counter>,
    total: u64,
}

impl<T: Eq + Hash + Clone> SpaceSaving<T> {
    /// Creates a sketch tracking at most `capacity` items.
    ///
    /// # Panics
    /// When `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            items: FxHashMap::default(),
            total: 0,
        }
    }

    /// Observes one occurrence of `item`.
    pub fn add(&mut self, item: T) {
        self.add_weighted(item, 1);
    }

    /// Observes `weight` occurrences of `item`.
    pub fn add_weighted(&mut self, item: T, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total += weight;
        if let Some(c) = self.items.get_mut(&item) {
            c.count += weight;
            return;
        }
        if self.items.len() < self.capacity {
            self.items.insert(
                item,
                Counter {
                    count: weight,
                    error: 0,
                },
            );
            return;
        }
        // Evict the minimum counter; the newcomer inherits its count as error.
        // (At this point len >= capacity >= 1, so a minimum always exists;
        // an impossible empty map degrades to a plain insert.)
        let Some((min_key, min_count)) = self
            .items
            .iter()
            .min_by_key(|(_, c)| c.count)
            .map(|(k, c)| (k.clone(), c.count))
        else {
            self.items.insert(
                item,
                Counter {
                    count: weight,
                    error: 0,
                },
            );
            return;
        };
        self.items.remove(&min_key);
        self.items.insert(
            item,
            Counter {
                count: min_count + weight,
                error: min_count,
            },
        );
    }

    /// Total weight observed (including evicted items).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of monitored items (≤ capacity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The estimated count for an item currently monitored.
    pub fn estimate(&self, item: &T) -> Option<Counter> {
        self.items.get(item).copied()
    }

    /// The `n` heaviest items, descending by estimated count.
    /// Ties break on lower error (more certain first).
    pub fn top(&self, n: usize) -> Vec<(T, Counter)> {
        let mut all: Vec<(T, Counter)> = self.items.iter().map(|(k, c)| (k.clone(), *c)).collect();
        all.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.1.error.cmp(&b.1.error)));
        all.truncate(n);
        all
    }

    /// The single most frequent item, if any.
    pub fn top1(&self) -> Option<(T, Counter)> {
        self.top(1).pop()
    }

    /// Iterates over all monitored items.
    pub fn iter(&self) -> impl Iterator<Item = (&T, &Counter)> {
        self.items.iter()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reconstructs a sketch from raw parts (deserialization).
    ///
    /// # Panics
    /// When `capacity == 0` or more items than capacity are supplied.
    pub fn from_parts(capacity: usize, total: u64, items: Vec<(T, Counter)>) -> SpaceSaving<T> {
        assert!(capacity > 0, "capacity must be positive");
        assert!(items.len() <= capacity, "items exceed capacity");
        SpaceSaving {
            capacity,
            items: items.into_iter().collect(),
            total,
        }
    }
}

impl<T: Eq + Hash + Clone> MergeSketch for SpaceSaving<T> {
    /// Merges two sketches (Agarwal et al., "Mergeable Summaries").
    ///
    /// An item missing from one *at-capacity* sketch may have been observed
    /// there and evicted, with true count at most that sketch's minimum
    /// counter — so absent items are credited `min_count` as both count and
    /// error. This preserves the one-sided guarantee
    /// `count ≥ true ≥ count − error`. A sketch below capacity is exact, so
    /// its credit is zero.
    fn merge(&mut self, other: &Self) {
        let credit = |s: &Self| -> u64 {
            if s.items.len() < s.capacity {
                0
            } else {
                s.items.values().map(|c| c.count).min().unwrap_or(0)
            }
        };
        let self_credit = credit(self);
        let other_credit = credit(other);
        self.total += other.total;
        // Items monitored by `other`: add counts; items new to `self` get
        // `self_credit` for what self may have evicted.
        for (k, c) in &other.items {
            match self.items.get_mut(k) {
                Some(e) => {
                    e.count += c.count;
                    e.error += c.error;
                }
                None => {
                    self.items.insert(
                        k.clone(),
                        Counter {
                            count: c.count + self_credit,
                            error: c.error + self_credit,
                        },
                    );
                }
            }
        }
        // Items only in `self` get `other_credit` for what other may have
        // evicted.
        for (k, e) in self.items.iter_mut() {
            if !other.items.contains_key(k) {
                e.count += other_credit;
                e.error += other_credit;
            }
        }
        if self.items.len() > self.capacity {
            let mut all: Vec<(T, Counter)> = self.items.drain().collect();
            all.sort_by(|a, b| b.1.count.cmp(&a.1.count));
            all.truncate(self.capacity);
            self.items = all.into_iter().collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SpaceSaving::<u32>::new(0);
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut s = SpaceSaving::new(10);
        for _ in 0..5 {
            s.add("a");
        }
        for _ in 0..3 {
            s.add("b");
        }
        s.add("c");
        assert_eq!(s.estimate(&"a"), Some(Counter { count: 5, error: 0 }));
        assert_eq!(s.estimate(&"b"), Some(Counter { count: 3, error: 0 }));
        assert_eq!(s.top1().unwrap().0, "a");
        assert_eq!(s.total(), 9);
    }

    #[test]
    fn heavy_hitter_survives_eviction_pressure() {
        let mut s = SpaceSaving::new(4);
        // "hot" appears 100 times among 200 singletons.
        for i in 0..200u32 {
            s.add(format!("noise{i}"));
            if i % 2 == 0 {
                s.add("hot".to_string());
            }
        }
        let top = s.top(1);
        assert_eq!(top[0].0, "hot");
        let c = top[0].1;
        // Overestimates, never underestimates beyond the error bound.
        assert!(c.count >= 100, "count {}", c.count);
        assert!(c.count - c.error <= 100);
    }

    #[test]
    fn overestimation_bounded_by_n_over_k() {
        let mut s = SpaceSaving::new(8);
        for i in 0..1000u32 {
            s.add(i % 100);
        }
        for (_, c) in s.iter() {
            assert!(c.error <= 1000 / 8, "error {}", c.error);
        }
    }

    #[test]
    fn top_order_and_truncation() {
        let mut s = SpaceSaving::new(10);
        for (item, n) in [("x", 7), ("y", 9), ("z", 2)] {
            for _ in 0..n {
                s.add(item);
            }
        }
        let top = s.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "y");
        assert_eq!(top[1].0, "x");
    }

    #[test]
    fn merge_preserves_heavy_hitters() {
        let mut a = SpaceSaving::new(5);
        let mut b = SpaceSaving::new(5);
        for _ in 0..50 {
            a.add("big".to_string());
        }
        for i in 0..20u32 {
            a.add(format!("n{i}"));
        }
        for _ in 0..60 {
            b.add("big".to_string());
        }
        for i in 20..40u32 {
            b.add(format!("n{i}"));
        }
        a.merge(&b);
        assert_eq!(a.top1().unwrap().0, "big");
        assert!(a.len() <= 5);
        assert_eq!(a.total(), 150);
        let c = a.estimate(&"big".to_string()).unwrap();
        assert!(c.count >= 110);
    }

    #[test]
    fn weighted_adds() {
        let mut s = SpaceSaving::new(3);
        s.add_weighted("w", 10);
        s.add_weighted("w", 0); // no-op
        assert_eq!(s.estimate(&"w").unwrap().count, 10);
        assert_eq!(s.total(), 10);
    }
}
