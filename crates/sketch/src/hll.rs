//! Distinct counting: HyperLogLog with an exact small-set front end.
//!
//! Table 3 stores the distinct number of ships and trips per cell. Most
//! cells see few distinct vessels (open-ocean cells), so [`Distinct`] keeps
//! an exact set until a threshold and only then promotes to a
//! [`HyperLogLog`] — the same sparse→dense idea as Spark's HLL++
//! implementation, without the bias-correction tables.

use crate::hash::{hash64, FxHashSet};
use crate::MergeSketch;
use std::hash::Hash;

/// Plain HyperLogLog (Flajolet et al. 2007) with `2^p` registers and
/// linear-counting small-range correction.
#[derive(Clone, Debug, PartialEq)]
pub struct HyperLogLog {
    p: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates a sketch with `2^p` registers, `4 ≤ p ≤ 16`.
    /// Standard error ≈ `1.04 / √(2^p)` (p = 12 → ~1.6 %).
    ///
    /// # Panics
    /// When `p` is outside `4..=16`.
    pub fn new(p: u8) -> Self {
        assert!((4..=16).contains(&p), "precision {p} out of range 4..=16");
        Self {
            p,
            registers: vec![0; 1 << p],
        }
    }

    /// Precision parameter.
    pub fn precision(&self) -> u8 {
        self.p
    }

    /// Raw register array (serialization support).
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Reconstructs a sketch from raw registers (deserialization).
    ///
    /// # Panics
    /// When the register count does not match `2^p`.
    pub fn from_registers(p: u8, registers: Vec<u8>) -> HyperLogLog {
        assert!((4..=16).contains(&p), "precision {p} out of range 4..=16");
        assert_eq!(registers.len(), 1 << p, "register count mismatch");
        HyperLogLog { p, registers }
    }

    /// Adds a pre-hashed 64-bit value.
    #[inline]
    pub fn add_hash(&mut self, h: u64) {
        let idx = (h >> (64 - self.p)) as usize;
        let rest = h << self.p;
        // Rank: position of the first 1-bit in the remaining 64-p bits.
        let rank = (rest.leading_zeros() as u8).min(64 - self.p) + 1;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Adds a hashable value.
    #[inline]
    pub fn add<T: Hash>(&mut self, value: &T) {
        self.add_hash(hash64(value));
    }

    /// Estimated number of distinct values.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range correction: linear counting on empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }
}

impl MergeSketch for HyperLogLog {
    /// # Panics
    /// When precisions differ.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.p, other.p, "HLL precision mismatch");
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }
}

/// Default promotion threshold for [`Distinct`]: sets smaller than this are
/// exact.
pub const DEFAULT_EXACT_LIMIT: usize = 256;

/// Default HLL precision used after promotion.
pub const DEFAULT_HLL_PRECISION: u8 = 12;

/// Hashes held inline by a [`SmallSet`] before spilling to the heap.
const SMALL_INLINE: usize = 16;

/// A tiny hash set for [`Distinct`]'s exact phase: the first
/// [`SMALL_INLINE`] hashes live inline (no heap), the rest spill to an
/// `FxHashSet`. Most inventory cells see only a handful of distinct ships
/// and trips, so the common case allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct SmallSet {
    inline: [u64; SMALL_INLINE],
    len: u8,
    spill: FxHashSet<u64>,
}

impl SmallSet {
    /// An empty set.
    pub fn new() -> SmallSet {
        SmallSet::default()
    }

    /// Whether `h` is in the set.
    pub fn contains(&self, h: u64) -> bool {
        self.inline[..self.len as usize].contains(&h) || self.spill.contains(&h)
    }

    /// Inserts `h`; returns `true` when it was not present.
    pub fn insert(&mut self, h: u64) -> bool {
        if self.contains(h) {
            return false;
        }
        if (self.len as usize) < SMALL_INLINE {
            self.inline[self.len as usize] = h;
            self.len += 1;
        } else {
            self.spill.insert(h);
        }
        true
    }

    /// Number of distinct hashes.
    pub fn len(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the hashes (inline first, then spill; no order
    /// guarantee — callers that need canonical output must sort).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.inline[..self.len as usize]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }
}

impl PartialEq for SmallSet {
    /// Set equality — storage split between inline and spill is not
    /// observable.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|h| other.contains(h))
    }
}

impl FromIterator<u64> for SmallSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> SmallSet {
        let mut s = SmallSet::new();
        for h in iter {
            s.insert(h);
        }
        s
    }
}

/// Exact-until-promoted distinct counter over pre-hashed identities.
///
/// Stores 64-bit hashes, not the values, so the memory bound is crisp and
/// the type is `'static` regardless of what is being counted.
#[derive(Clone, Debug, PartialEq)]
pub enum Distinct {
    /// Exact phase: the set of hashes seen so far.
    Exact(SmallSet),
    /// Approximate phase after exceeding the exact limit.
    Approx(HyperLogLog),
}

impl Default for Distinct {
    fn default() -> Self {
        Self::new()
    }
}

impl Distinct {
    /// A fresh, exact counter.
    pub fn new() -> Self {
        Distinct::Exact(SmallSet::new())
    }

    /// Observes a value.
    pub fn add<T: Hash>(&mut self, value: &T) {
        self.add_hash(hash64(value));
    }

    /// Observes a pre-hashed value.
    pub fn add_hash(&mut self, h: u64) {
        match self {
            Distinct::Exact(set) => {
                set.insert(h);
                if set.len() > DEFAULT_EXACT_LIMIT {
                    let mut hll = HyperLogLog::new(DEFAULT_HLL_PRECISION);
                    for v in set.iter() {
                        hll.add_hash(v);
                    }
                    *self = Distinct::Approx(hll);
                }
            }
            Distinct::Approx(hll) => hll.add_hash(h),
        }
    }

    /// Estimated distinct count (exact while in the exact phase).
    pub fn estimate(&self) -> u64 {
        match self {
            Distinct::Exact(set) => set.len() as u64,
            Distinct::Approx(hll) => hll.estimate().round() as u64,
        }
    }

    /// Whether the counter is still exact.
    pub fn is_exact(&self) -> bool {
        matches!(self, Distinct::Exact(_))
    }
}

impl MergeSketch for Distinct {
    fn merge(&mut self, other: &Self) {
        match (&mut *self, other) {
            (Distinct::Exact(a), Distinct::Exact(b)) => {
                for h in b.iter() {
                    a.insert(h);
                }
                if a.len() > DEFAULT_EXACT_LIMIT {
                    let mut hll = HyperLogLog::new(DEFAULT_HLL_PRECISION);
                    for v in a.iter() {
                        hll.add_hash(v);
                    }
                    *self = Distinct::Approx(hll);
                }
            }
            (Distinct::Exact(a), Distinct::Approx(b)) => {
                let mut hll = b.clone();
                for v in a.iter() {
                    hll.add_hash(v);
                }
                *self = Distinct::Approx(hll);
            }
            (Distinct::Approx(a), Distinct::Exact(b)) => {
                for v in b.iter() {
                    a.add_hash(v);
                }
            }
            (Distinct::Approx(a), Distinct::Approx(b)) => a.merge(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "out of range")]
    fn hll_precision_bounds() {
        let _ = HyperLogLog::new(3);
    }

    #[test]
    fn hll_empty_estimates_zero() {
        let h = HyperLogLog::new(12);
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn hll_accuracy_within_error_bound() {
        for &n in &[100u64, 1_000, 50_000] {
            let mut h = HyperLogLog::new(12);
            for i in 0..n {
                h.add(&i);
            }
            let est = h.estimate();
            let err = (est - n as f64).abs() / n as f64;
            // 1.04/sqrt(4096) ≈ 1.6%; allow 4 sigma.
            assert!(err < 0.065, "n={n} est={est} err={err}");
        }
    }

    #[test]
    fn hll_duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new(12);
        for _ in 0..10_000 {
            h.add(&"same");
        }
        assert!(h.estimate() < 2.0);
    }

    #[test]
    fn hll_merge_equals_union() {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        let mut u = HyperLogLog::new(10);
        for i in 0..3000u64 {
            a.add(&i);
            u.add(&i);
        }
        for i in 2000..6000u64 {
            b.add(&i);
            u.add(&i);
        }
        a.merge(&b);
        assert_eq!(a, u, "register-wise max must equal union sketch");
    }

    #[test]
    fn small_set_spills_past_inline_capacity() {
        let mut s = SmallSet::new();
        for h in 0..40u64 {
            assert!(s.insert(h), "first insert of {h}");
        }
        for h in 0..40u64 {
            assert!(!s.insert(h), "duplicate insert of {h}");
            assert!(s.contains(h));
        }
        assert_eq!(s.len(), 40);
        let mut all: Vec<u64> = s.iter().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40u64).collect::<Vec<_>>());
        // Set equality ignores the inline/spill storage split.
        let rev: SmallSet = (0..40u64).rev().collect();
        assert_eq!(s, rev);
        assert_ne!(s, SmallSet::new());
    }

    #[test]
    fn distinct_exact_phase() {
        let mut d = Distinct::new();
        for i in 0..100u32 {
            d.add(&i);
            d.add(&i); // duplicates
        }
        assert!(d.is_exact());
        assert_eq!(d.estimate(), 100);
    }

    #[test]
    fn distinct_promotes_and_stays_accurate() {
        let mut d = Distinct::new();
        for i in 0..5_000u32 {
            d.add(&i);
        }
        assert!(!d.is_exact());
        let est = d.estimate() as f64;
        assert!((est - 5_000.0).abs() / 5_000.0 < 0.065, "est {est}");
    }

    #[test]
    fn distinct_merge_all_phase_combinations() {
        let build = |range: std::ops::Range<u32>| {
            let mut d = Distinct::new();
            for i in range {
                d.add(&i);
            }
            d
        };
        // exact + exact staying exact
        let mut a = build(0..50);
        a.merge(&build(25..75));
        assert!(a.is_exact());
        assert_eq!(a.estimate(), 75);
        // exact + exact promoting
        let mut a = build(0..200);
        a.merge(&build(150..400));
        assert_eq!(a.is_exact(), a.estimate() <= DEFAULT_EXACT_LIMIT as u64);
        let est = a.estimate() as f64;
        assert!((est - 400.0).abs() / 400.0 < 0.07, "est {est}");
        // exact + approx
        let mut a = build(0..100);
        a.merge(&build(0..2000));
        assert!((a.estimate() as f64 - 2000.0).abs() / 2000.0 < 0.07);
        // approx + exact
        let mut a = build(0..2000);
        a.merge(&build(1500..2100));
        assert!((a.estimate() as f64 - 2100.0).abs() / 2100.0 < 0.07);
        // approx + approx
        let mut a = build(0..2000);
        a.merge(&build(1000..3000));
        assert!((a.estimate() as f64 - 3000.0).abs() / 3000.0 < 0.07);
    }
}
