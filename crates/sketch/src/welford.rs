//! Exact single-pass moments: Welford's online algorithm with Chan's
//! parallel merge.

use crate::MergeSketch;

/// Count / mean / variance / min / max in one pass, mergeable across shards
/// with no loss (Chan, Golub & LeVeque's pairwise update).
///
/// Backs every "Mean"/"Std" entry of the paper's Table 3 (speed, ETO, ATA).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Non-finite values are ignored (AIS cleaning
    /// rejects them upstream; this is defence in depth).
    #[inline]
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.m2 / self.count as f64).max(0.0))
    }

    /// Population standard deviation; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Raw sum of squared deviations (serialization support).
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Reconstructs an accumulator from its raw parts (deserialization).
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Welford {
        if count == 0 {
            return Welford::new();
        }
        Welford {
            count,
            mean,
            m2,
            min,
            max,
        }
    }
}

impl MergeSketch for Welford {
    fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_yields_none() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), None);
        assert_eq!(w.std_dev(), None);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn known_values() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((w.std_dev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn ignores_non_finite() {
        let mut w = Welford::new();
        w.add(1.0);
        w.add(f64::NAN);
        w.add(f64::INFINITY);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), Some(1.0));
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.add(x);
        }
        for split in [1, 13, 500, 999] {
            let mut a = Welford::new();
            let mut b = Welford::new();
            for &x in &data[..split] {
                a.add(x);
            }
            for &x in &data[split..] {
                b.add(x);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
            assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-6);
            assert_eq!(a.min(), whole.min());
            assert_eq!(a.max(), whole.max());
        }
    }

    #[test]
    fn merge_identity_and_commutativity() {
        let mut a = Welford::new();
        for x in [1.0, 2.0, 3.0] {
            a.add(x);
        }
        let b = {
            let mut b = Welford::new();
            for x in [10.0, 20.0] {
                b.add(x);
            }
            b
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert!((ab.mean().unwrap() - ba.mean().unwrap()).abs() < 1e-12);
        assert!((ab.variance().unwrap() - ba.variance().unwrap()).abs() < 1e-9);
        // identity
        let mut with_empty = a.clone();
        with_empty.merge(&Welford::new());
        assert_eq!(with_empty, a);
        let mut empty = Welford::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }
}
