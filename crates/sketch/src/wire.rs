//! Compact binary serialization for sketches.
//!
//! The inventory's on-disk format (`pol-core::codec`) persists per-cell
//! sketches; this module gives every sketch a versionless, schema-stable
//! little-endian encoding: varint for integers, raw IEEE-754 for floats.
//! Round-trips are property-tested.

use crate::circular::Circular;
use crate::gk::GkSketch;
use crate::histogram::AngleHistogram;
use crate::hll::{Distinct, HyperLogLog, SmallSet};
use crate::spacesaving::{Counter, SpaceSaving};
use crate::tdigest::TDigest;
use crate::welford::Welford;
use std::fmt;

/// Error for malformed wire data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Writes an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint.
pub fn get_varint(input: &mut &[u8]) -> Result<u64, WireError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let (&byte, rest) = input.split_first().ok_or(WireError("varint truncated"))?;
        *input = rest;
        if shift >= 64 {
            return Err(WireError("varint overflow"));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Writes a raw f64.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a raw f64.
pub fn get_f64(input: &mut &[u8]) -> Result<f64, WireError> {
    let Some((bytes, rest)) = input.split_first_chunk::<8>() else {
        return Err(WireError("f64 truncated"));
    };
    *input = rest;
    Ok(f64::from_le_bytes(*bytes))
}

/// Binary encoding contract for sketches.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes a value, advancing `input` past it.
    fn decode(input: &mut &[u8]) -> Result<Self, WireError>;
}

impl Wire for Welford {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.count());
        // mean/min/max are Some exactly when count > 0, so the decoder's
        // "count > 0 means four floats follow" contract is preserved.
        if let (Some(mean), Some(min), Some(max)) = (self.mean(), self.min(), self.max()) {
            put_f64(out, mean);
            put_f64(out, self.m2());
            put_f64(out, min);
            put_f64(out, max);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let count = get_varint(input)?;
        if count == 0 {
            return Ok(Welford::new());
        }
        let mean = get_f64(input)?;
        let m2 = get_f64(input)?;
        let min = get_f64(input)?;
        let max = get_f64(input)?;
        Ok(Welford::from_parts(count, mean, m2, min, max))
    }
}

impl Wire for Circular {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.count());
        if self.count() > 0 {
            let (s, c) = self.sums();
            put_f64(out, s);
            put_f64(out, c);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let count = get_varint(input)?;
        if count == 0 {
            return Ok(Circular::new());
        }
        let s = get_f64(input)?;
        let c = get_f64(input)?;
        Ok(Circular::from_parts(count, s, c))
    }
}

impl Wire for AngleHistogram {
    fn encode(&self, out: &mut Vec<u8>) {
        for &c in self.counts() {
            put_varint(out, c);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let mut counts = [0u64; 12];
        for c in &mut counts {
            *c = get_varint(input)?;
        }
        Ok(AngleHistogram::from_counts(counts))
    }
}

impl Wire for GkSketch {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut me = self.clone();
        let (epsilon, n, tuples) = me.parts();
        put_f64(out, epsilon);
        put_varint(out, n);
        put_varint(out, tuples.len() as u64);
        for (v, g, delta) in tuples {
            put_f64(out, v);
            put_varint(out, g);
            put_varint(out, delta);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let epsilon = get_f64(input)?;
        if !(epsilon > 0.0 && epsilon < 0.5) {
            return Err(WireError("gk epsilon out of range"));
        }
        let n = get_varint(input)?;
        let len = get_varint(input)? as usize;
        if len > input.len() {
            return Err(WireError("gk tuple count exceeds buffer"));
        }
        let mut tuples = Vec::with_capacity(len);
        for _ in 0..len {
            let v = get_f64(input)?;
            let g = get_varint(input)?;
            let delta = get_varint(input)?;
            tuples.push((v, g, delta));
        }
        GkSketch::from_parts(epsilon, n, tuples).ok_or(WireError("gk tuples not sorted"))
    }
}

impl Wire for TDigest {
    fn encode(&self, out: &mut Vec<u8>) {
        let mut me = self.clone();
        let (compression, total, min, max, centroids) = me.parts();
        put_f64(out, compression);
        put_f64(out, total);
        put_f64(out, min);
        put_f64(out, max);
        put_varint(out, centroids.len() as u64);
        for (mean, weight) in centroids {
            put_f64(out, mean);
            put_f64(out, weight);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let compression = get_f64(input)?;
        if !(compression >= 10.0) {
            return Err(WireError("tdigest compression out of range"));
        }
        let total = get_f64(input)?;
        let min = get_f64(input)?;
        let max = get_f64(input)?;
        let len = get_varint(input)? as usize;
        if len > input.len() {
            return Err(WireError("tdigest centroid count exceeds buffer"));
        }
        let mut centroids = Vec::with_capacity(len);
        for _ in 0..len {
            let mean = get_f64(input)?;
            let weight = get_f64(input)?;
            centroids.push((mean, weight));
        }
        TDigest::from_parts(compression, total, min, max, centroids)
            .ok_or(WireError("tdigest centroids not sorted"))
    }
}

impl Wire for HyperLogLog {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.precision());
        out.extend_from_slice(self.registers());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let (&p, rest) = input.split_first().ok_or(WireError("hll truncated"))?;
        *input = rest;
        if !(4..=16).contains(&p) {
            return Err(WireError("hll precision out of range"));
        }
        let m = 1usize << p;
        if input.len() < m {
            return Err(WireError("hll registers truncated"));
        }
        let (regs, rest) = input.split_at(m);
        *input = rest;
        Ok(HyperLogLog::from_registers(p, regs.to_vec()))
    }
}

impl Wire for Distinct {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Distinct::Exact(set) => {
                out.push(0);
                put_varint(out, set.len() as u64);
                // Sort for canonical output (sets iterate in storage order).
                let mut hashes: Vec<u64> = set.iter().collect();
                hashes.sort_unstable();
                for h in hashes {
                    put_varint(out, h);
                }
            }
            Distinct::Approx(hll) => {
                out.push(1);
                hll.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let (&tag, rest) = input.split_first().ok_or(WireError("distinct truncated"))?;
        *input = rest;
        match tag {
            0 => {
                let len = get_varint(input)? as usize;
                if len > input.len() {
                    return Err(WireError("distinct set exceeds buffer"));
                }
                let mut set = SmallSet::new();
                for _ in 0..len {
                    set.insert(get_varint(input)?);
                }
                Ok(Distinct::Exact(set))
            }
            1 => Ok(Distinct::Approx(HyperLogLog::decode(input)?)),
            _ => Err(WireError("distinct bad tag")),
        }
    }
}

impl Wire for SpaceSaving<u64> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.capacity() as u64);
        put_varint(out, self.total());
        put_varint(out, self.len() as u64);
        let mut items: Vec<(u64, Counter)> = self.iter().map(|(k, c)| (*k, *c)).collect();
        items.sort_unstable_by_key(|(k, _)| *k);
        for (k, c) in items {
            put_varint(out, k);
            put_varint(out, c.count);
            put_varint(out, c.error);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let capacity = get_varint(input)? as usize;
        if capacity == 0 {
            return Err(WireError("spacesaving zero capacity"));
        }
        let total = get_varint(input)?;
        let len = get_varint(input)? as usize;
        if len > capacity || len > input.len() {
            return Err(WireError("spacesaving length invalid"));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            let k = get_varint(input)?;
            let count = get_varint(input)?;
            let error = get_varint(input)?;
            items.push((k, Counter { count, error }));
        }
        Ok(SpaceSaving::from_parts(capacity, total, items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MergeSketch;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut slice = &buf[..];
        let back = T::decode(&mut slice).expect("decodes");
        assert!(slice.is_empty(), "trailing bytes");
        assert_eq!(&back, v);
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut s = &buf[..];
            assert_eq!(get_varint(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
        let mut empty: &[u8] = &[];
        assert!(get_varint(&mut empty).is_err());
    }

    #[test]
    fn welford_wire() {
        round_trip(&Welford::new());
        let mut w = Welford::new();
        for x in [1.0, 2.5, -3.0, 100.0] {
            w.add(x);
        }
        round_trip(&w);
    }

    #[test]
    fn circular_wire() {
        round_trip(&Circular::new());
        let mut c = Circular::new();
        c.add(10.0);
        c.add(350.0);
        round_trip(&c);
    }

    #[test]
    fn angle_histogram_wire() {
        let mut h = AngleHistogram::new();
        for d in [0.0, 45.0, 359.0, 180.0] {
            h.add(d);
        }
        round_trip(&h);
    }

    #[test]
    fn gk_wire_preserves_quantiles() {
        let mut g = GkSketch::new(0.02);
        for i in 0..5_000 {
            g.add(((i * 37) % 1000) as f64);
        }
        let mut buf = Vec::new();
        g.encode(&mut buf);
        let mut s = &buf[..];
        let mut back = GkSketch::decode(&mut s).unwrap();
        assert_eq!(back.count(), g.count());
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(back.quantile(phi), g.clone().quantile(phi));
        }
    }

    #[test]
    fn tdigest_wire_preserves_quantiles() {
        let mut t = TDigest::new(100.0);
        for i in 0..5_000 {
            t.add(((i * 37) % 1000) as f64);
        }
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let mut s = &buf[..];
        let mut back = TDigest::decode(&mut s).unwrap();
        assert_eq!(back.count(), t.count());
        for phi in [0.1, 0.5, 0.9] {
            let a = back.quantile(phi).unwrap();
            let b = t.clone().quantile(phi).unwrap();
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn hll_and_distinct_wire() {
        let mut h = HyperLogLog::new(8);
        for i in 0..1000u32 {
            h.add(&i);
        }
        round_trip(&h);

        let mut d = Distinct::new();
        for i in 0..50u32 {
            d.add(&i);
        }
        round_trip(&d);
        for i in 0..5000u32 {
            d.add(&i);
        }
        assert!(!d.is_exact());
        round_trip(&d);
    }

    #[test]
    fn spacesaving_wire() {
        let mut s = SpaceSaving::<u64>::new(8);
        for i in 0..500u64 {
            s.add(i % 20);
        }
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut slice = &buf[..];
        let back = SpaceSaving::<u64>::decode(&mut slice).unwrap();
        assert_eq!(back.total(), s.total());
        // `top` order among exact ties is unspecified; compare as sets.
        let as_set = |v: Vec<(u64, Counter)>| -> std::collections::BTreeSet<(u64, u64, u64)> {
            v.into_iter().map(|(k, c)| (k, c.count, c.error)).collect()
        };
        assert_eq!(as_set(back.top(100)), as_set(s.top(100)));
    }

    #[test]
    fn decoded_sketches_remain_mergeable() {
        let mut a = Welford::new();
        a.add(1.0);
        let mut buf = Vec::new();
        a.encode(&mut buf);
        let mut s = &buf[..];
        let mut back = Welford::decode(&mut s).unwrap();
        let mut b = Welford::new();
        b.add(3.0);
        back.merge(&b);
        assert_eq!(back.count(), 2);
        assert_eq!(back.mean(), Some(2.0));
    }

    #[test]
    fn garbage_rejected() {
        let garbage = [0xFFu8; 3];
        let mut s = &garbage[..];
        assert!(GkSketch::decode(&mut s).is_err());
        let mut s2: &[u8] = &[9];
        assert!(Distinct::decode(&mut s2).is_err());
    }
}
