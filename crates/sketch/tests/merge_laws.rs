//! Property tests: every sketch is a commutative monoid under `merge`,
//! and merging shards is equivalent (within documented error) to a single
//! pass. These laws are what make the paper's map/reduce decomposition
//! (§3.3.4) partition-invariant.

use pol_sketch::{
    AngleHistogram, Circular, Distinct, GkSketch, HyperLogLog, MergeSketch, SpaceSaving, TDigest,
    Welford,
};
use proptest::prelude::*;

fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e4f64..1e4, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn welford_partition_invariant(data in values(), split in 0usize..400) {
        let split = split.min(data.len());
        let mut whole = Welford::new();
        data.iter().for_each(|&x| whole.add(x));
        let mut a = Welford::new();
        let mut b = Welford::new();
        data[..split].iter().for_each(|&x| a.add(x));
        data[split..].iter().for_each(|&x| b.add(x));
        // commutativity
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.count(), whole.count());
        prop_assert!((ab.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
        prop_assert!((ab.mean().unwrap() - ba.mean().unwrap()).abs() < 1e-9);
        let (va, vw) = (ab.variance().unwrap(), whole.variance().unwrap());
        prop_assert!((va - vw).abs() <= 1e-6 * (1.0 + vw));
    }

    #[test]
    fn welford_associative(x in values(), y in values(), z in values()) {
        let build = |d: &[f64]| {
            let mut w = Welford::new();
            d.iter().for_each(|&v| w.add(v));
            w
        };
        let (a, b, c) = (build(&x), build(&y), build(&z));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.mean().unwrap() - right.mean().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn circular_partition_invariant(angles in prop::collection::vec(0.0f64..360.0, 1..300), split in 0usize..300) {
        let split = split.min(angles.len());
        let mut whole = Circular::new();
        angles.iter().for_each(|&a| whole.add(a));
        let mut l = Circular::new();
        let mut r = Circular::new();
        angles[..split].iter().for_each(|&a| l.add(a));
        angles[split..].iter().for_each(|&a| r.add(a));
        l.merge(&r);
        prop_assert_eq!(l.count(), whole.count());
        match (l.mean_deg(), whole.mean_deg()) {
            (Some(a), Some(b)) => {
                let d = (a - b).abs();
                prop_assert!(d < 1e-6 || (360.0 - d) < 1e-6, "{a} vs {b}");
            }
            (None, None) => {}
            other => prop_assert!(false, "mean mismatch {other:?}"),
        }
    }

    #[test]
    fn angle_histogram_partition_invariant(angles in prop::collection::vec(-720.0f64..720.0, 0..300), split in 0usize..300) {
        let split = split.min(angles.len());
        let mut whole = AngleHistogram::new();
        angles.iter().for_each(|&a| whole.add(a));
        let mut l = AngleHistogram::new();
        let mut r = AngleHistogram::new();
        angles[..split].iter().for_each(|&a| l.add(a));
        angles[split..].iter().for_each(|&a| r.add(a));
        l.merge(&r);
        prop_assert_eq!(l.counts(), whole.counts());
    }

    #[test]
    fn hll_merge_commutative_idempotent(xs in prop::collection::vec(0u64..10_000, 1..500), ys in prop::collection::vec(0u64..10_000, 1..500)) {
        let build = |d: &[u64]| {
            let mut h = HyperLogLog::new(10);
            d.iter().for_each(|v| h.add(v));
            h
        };
        let (a, b) = (build(&xs), build(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        // Idempotent: merging the same sketch again changes nothing.
        let mut twice = ab.clone();
        twice.merge(&b);
        prop_assert_eq!(&twice, &ab);
    }

    #[test]
    fn distinct_merge_counts_union(xs in prop::collection::vec(0u32..2_000, 0..600), ys in prop::collection::vec(0u32..2_000, 0..600)) {
        let mut union: std::collections::HashSet<u32> = xs.iter().copied().collect();
        union.extend(ys.iter().copied());
        let build = |d: &[u32]| {
            let mut s = Distinct::new();
            d.iter().for_each(|v| s.add(v));
            s
        };
        let mut m = build(&xs);
        m.merge(&build(&ys));
        let est = m.estimate() as f64;
        let truth = union.len() as f64;
        if truth == 0.0 {
            prop_assert_eq!(est, 0.0);
        } else {
            prop_assert!((est - truth).abs() / truth < 0.1, "est {est} truth {truth}");
        }
    }

    #[test]
    fn spacesaving_total_additive(xs in prop::collection::vec(0u8..30, 0..300), ys in prop::collection::vec(0u8..30, 0..300)) {
        let build = |d: &[u8]| {
            let mut s = SpaceSaving::new(8);
            d.iter().for_each(|&v| s.add(v));
            s
        };
        let mut m = build(&xs);
        m.merge(&build(&ys));
        prop_assert_eq!(m.total(), (xs.len() + ys.len()) as u64);
        // Count estimates never underestimate below count - error.
        let mut truth = std::collections::HashMap::new();
        for v in xs.iter().chain(ys.iter()) {
            *truth.entry(*v).or_insert(0u64) += 1;
        }
        for (item, c) in m.iter() {
            let t = truth.get(item).copied().unwrap_or(0);
            prop_assert!(c.count >= t, "SpaceSaving must overestimate: {} < {t}", c.count);
        }
    }

    #[test]
    fn gk_rank_error_bound(data in prop::collection::vec(-1e3f64..1e3, 50..2_000), phi in 0.05f64..0.95) {
        let mut g = GkSketch::new(0.05);
        data.iter().for_each(|&x| g.add(x));
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let v = g.quantile(phi).unwrap();
        let rank = sorted.iter().filter(|&&x| x <= v).count() as f64;
        let err = (rank - phi * data.len() as f64).abs() / data.len() as f64;
        prop_assert!(err <= 0.05 + 1.0 / data.len() as f64, "err {err}");
    }

    #[test]
    fn tdigest_between_min_max(data in prop::collection::vec(-1e3f64..1e3, 1..2_000), phi in 0.0f64..=1.0) {
        let mut t = TDigest::new(50.0);
        data.iter().for_each(|&x| t.add(x));
        let v = t.quantile(phi).unwrap();
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
    }
}
