//! # pol-chaos — deterministic fault injection for the inventory stack
//!
//! An operational system is defined by how it fails, and failures that
//! only occur in production cannot be tested unless they can be summoned
//! on demand. This crate provides *failpoints*: named hooks compiled into
//! fault-tolerant code paths (`core::codec` persistence, the `pol-serve`
//! connection loop) that deterministically inject the three failure
//! shapes the serving path must survive:
//!
//! * **typed errors** ([`FaultAction::Err`]) — the call site maps the
//!   injection onto its own error type (an `io::Error` in the codec, a
//!   connection abort in the server),
//! * **latency** ([`FaultAction::Delay`]) — the evaluating thread sleeps,
//! * **worker kills** ([`FaultAction::Kill`]) — the evaluating thread
//!   panics, exercising the `catch_unwind` containment of
//!   `pol_engine::ThreadPool` and every cleanup guard on the stack.
//!
//! Triggers are seeded and deterministic: a probability trigger draws
//! from its own xorshift stream, so a chaos run with a fixed seed
//! injects the same fault sequence every time (hit-count interleaving
//! across threads aside). One-shot and nth-hit triggers are exact.
//!
//! ## Zero cost when disabled
//!
//! Without the `failpoints` feature (the default), [`fire`] and [`eval`]
//! are `#[inline]` constant functions returning "no fault" and the
//! registry does not exist; the optimizer deletes the call and the
//! branch on its result entirely. Production builds therefore carry no
//! registry lookups, no locks, and no branches for any failpoint.
//! `polload` asserts the serving throughput stays within 5 % of the
//! baseline with the feature off.
//!
//! ## Usage
//!
//! ```
//! use pol_chaos::{configure, fire, Trigger, FaultAction};
//!
//! // In the fault-tolerant code path:
//! fn save() -> Result<(), std::io::Error> {
//!     if fire("codec.save.write") {
//!         return Err(std::io::Error::new(
//!             std::io::ErrorKind::Other,
//!             "chaos: injected write failure",
//!         ));
//!     }
//!     Ok(())
//! }
//!
//! // In the chaos test (only does anything with the feature on):
//! configure("codec.save.write", Trigger::OneShot(FaultAction::Err));
//! ```

#![deny(missing_docs)]

use std::fmt;
use std::time::Duration;

/// What an armed failpoint does when its trigger fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// Ask the call site to fail with its own typed error.
    Err,
    /// Sleep the evaluating thread for the given duration.
    Delay(Duration),
    /// Panic the evaluating thread (a worker kill; the server's pool
    /// contains the unwind and the connection dies, never the process).
    Kill,
}

/// When a failpoint fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Never fires (armed but inert; hit counts still accumulate).
    Off,
    /// Fires on every hit.
    Always(FaultAction),
    /// Fires on the first hit, then disarms itself.
    OneShot(FaultAction),
    /// Fires exactly once, on the `n`-th hit (1-based), then disarms.
    NthHit {
        /// Which hit (1-based) fires.
        n: u64,
        /// The action taken on that hit.
        action: FaultAction,
    },
    /// Fires on every `n`-th hit (hits `n`, `2n`, `3n`, …).
    EveryNth {
        /// The firing period in hits (clamped to at least 1).
        n: u64,
        /// The action taken on firing hits.
        action: FaultAction,
    },
    /// Fires with probability `p` per hit, drawn from a deterministic
    /// xorshift stream seeded with `seed`.
    Prob {
        /// Per-hit firing probability in `[0, 1]`.
        p: f64,
        /// Seed of the failpoint's private random stream.
        seed: u64,
        /// The action taken on firing hits.
        action: FaultAction,
    },
}

/// A point-in-time view of one failpoint's counters, for post-chaos
/// assertions ("the kill actually happened N times").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailpointStats {
    /// Times the failpoint was evaluated.
    pub hits: u64,
    /// Times it fired an action.
    pub fired: u64,
}

impl fmt::Display for FailpointStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fired / {} hits", self.fired, self.hits)
    }
}

/// Whether fault injection is compiled into this build.
#[inline]
pub const fn compiled_in() -> bool {
    cfg!(feature = "failpoints")
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::{FailpointStats, FaultAction, Trigger};
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct Slot {
        trigger: Trigger,
        rng: u64,
        stats: FailpointStats,
    }

    fn slots() -> MutexGuard<'static, HashMap<String, Slot>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Slot>>> = OnceLock::new();
        let m = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        // A poisoned registry only means some thread panicked while
        // holding the lock (the map itself is always consistent between
        // operations); chaos runs *cause* panics, so keep serving.
        m.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// xorshift64*: tiny, seedable, good enough for fault scheduling.
    fn next_u64(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub(super) fn configure(name: &str, trigger: Trigger) {
        let seed = match trigger {
            Trigger::Prob { seed, .. } => seed | 1, // xorshift needs non-zero
            _ => 1,
        };
        slots().insert(
            name.to_string(),
            Slot {
                trigger,
                rng: seed,
                stats: FailpointStats::default(),
            },
        );
    }

    pub(super) fn remove(name: &str) {
        slots().remove(name);
    }

    pub(super) fn reset() {
        slots().clear();
    }

    pub(super) fn stats(name: &str) -> FailpointStats {
        slots().get(name).map(|s| s.stats).unwrap_or_default()
    }

    pub(super) fn eval(name: &str) -> Option<FaultAction> {
        let mut map = slots();
        let slot = map.get_mut(name)?;
        slot.stats.hits += 1;
        let fired = match slot.trigger {
            Trigger::Off => None,
            Trigger::Always(action) => Some(action),
            Trigger::OneShot(action) => {
                slot.trigger = Trigger::Off;
                Some(action)
            }
            Trigger::NthHit { n, action } => {
                if slot.stats.hits == n.max(1) {
                    slot.trigger = Trigger::Off;
                    Some(action)
                } else {
                    None
                }
            }
            Trigger::EveryNth { n, action } => (slot.stats.hits % n.max(1) == 0).then_some(action),
            Trigger::Prob { p, action, .. } => {
                let draw = (next_u64(&mut slot.rng) >> 11) as f64 / (1u64 << 53) as f64;
                (draw < p).then_some(action)
            }
        };
        if fired.is_some() {
            slot.stats.fired += 1;
        }
        fired
    }
}

/// Arms (or re-arms) a failpoint. Resets its counters and random stream.
/// No-op without the `failpoints` feature.
#[inline]
pub fn configure(name: &str, trigger: Trigger) {
    #[cfg(feature = "failpoints")]
    registry::configure(name, trigger);
    #[cfg(not(feature = "failpoints"))]
    let _ = (name, trigger);
}

/// Disarms a failpoint and forgets its counters. No-op without the
/// `failpoints` feature.
#[inline]
pub fn remove(name: &str) {
    #[cfg(feature = "failpoints")]
    registry::remove(name);
    #[cfg(not(feature = "failpoints"))]
    let _ = name;
}

/// Disarms every failpoint. No-op without the `failpoints` feature.
#[inline]
pub fn reset() {
    #[cfg(feature = "failpoints")]
    registry::reset();
}

/// Counters of a failpoint (zeroes when unarmed or compiled out).
#[inline]
pub fn stats(name: &str) -> FailpointStats {
    #[cfg(feature = "failpoints")]
    return registry::stats(name);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = name;
        FailpointStats::default()
    }
}

/// Evaluates a failpoint, counting a hit, and returns the action to take
/// if it fired. The caller performs the action itself — use [`fire`] for
/// the common "sleep/kill here, error at my boundary" handling.
///
/// Always `None` without the `failpoints` feature (and the optimizer
/// removes the call entirely).
#[inline]
pub fn eval(name: &str) -> Option<FaultAction> {
    #[cfg(feature = "failpoints")]
    return registry::eval(name);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = name;
        None
    }
}

/// Evaluates a failpoint and performs delay/kill actions in place:
/// [`FaultAction::Delay`] sleeps the current thread, [`FaultAction::Kill`]
/// panics it. Returns `true` exactly when the call site must inject its
/// own typed error ([`FaultAction::Err`]).
///
/// Always `false` without the `failpoints` feature.
#[inline]
pub fn fire(name: &str) -> bool {
    match eval(name) {
        None => false,
        Some(FaultAction::Err) => true,
        Some(FaultAction::Delay(d)) => {
            std::thread::sleep(d);
            false
        }
        Some(FaultAction::Kill) => {
            // lint: allow(no_unwrap) — the entire point of a Kill fault
            // is a deliberate panic; it only exists behind the
            // `failpoints` feature and is contained by catch_unwind in
            // the worker pool.
            panic!("chaos: failpoint `{name}` killed this worker");
        }
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    /// Tests share one process-global registry; namespacing the
    /// failpoint names per test keeps them independent.
    fn name(test: &str, point: &str) -> String {
        format!("test.{test}.{point}")
    }

    #[test]
    fn unarmed_failpoints_do_nothing() {
        assert_eq!(eval("test.unarmed.nope"), None);
        assert!(!fire("test.unarmed.nope"));
        assert_eq!(stats("test.unarmed.nope"), FailpointStats::default());
    }

    #[test]
    fn one_shot_fires_exactly_once() {
        let n = name("oneshot", "p");
        configure(&n, Trigger::OneShot(FaultAction::Err));
        assert!(fire(&n));
        assert!(!fire(&n));
        assert!(!fire(&n));
        let s = stats(&n);
        assert_eq!((s.hits, s.fired), (3, 1));
    }

    #[test]
    fn nth_hit_fires_on_the_nth_only() {
        let n = name("nth", "p");
        configure(
            &n,
            Trigger::NthHit {
                n: 3,
                action: FaultAction::Err,
            },
        );
        assert!(!fire(&n));
        assert!(!fire(&n));
        assert!(fire(&n));
        assert!(!fire(&n));
        assert_eq!(stats(&n).fired, 1);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let n = name("everynth", "p");
        configure(
            &n,
            Trigger::EveryNth {
                n: 2,
                action: FaultAction::Err,
            },
        );
        let fired: Vec<bool> = (0..6).map(|_| fire(&n)).collect();
        assert_eq!(fired, [false, true, false, true, false, true]);
    }

    #[test]
    fn prob_stream_is_deterministic_and_calibrated() {
        let (a, b) = (name("prob", "a"), name("prob", "b"));
        let trig = Trigger::Prob {
            p: 0.25,
            seed: 99,
            action: FaultAction::Err,
        };
        configure(&a, trig);
        configure(&b, trig);
        let run_a: Vec<bool> = (0..2000).map(|_| fire(&a)).collect();
        let run_b: Vec<bool> = (0..2000).map(|_| fire(&b)).collect();
        assert_eq!(run_a, run_b, "same seed, same fault sequence");
        let hits = run_a.iter().filter(|f| **f).count();
        assert!((350..650).contains(&hits), "p=0.25 fired {hits}/2000");
    }

    #[test]
    fn delay_sleeps_and_reports_no_error() {
        let n = name("delay", "p");
        configure(
            &n,
            Trigger::Always(FaultAction::Delay(Duration::from_millis(20))),
        );
        let started = std::time::Instant::now();
        assert!(!fire(&n));
        assert!(started.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn kill_panics_with_the_failpoint_name() {
        let n = name("kill", "p");
        configure(&n, Trigger::OneShot(FaultAction::Kill));
        let err = std::panic::catch_unwind(|| fire(&n)).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains(&n), "{msg}");
        assert!(!fire(&n), "kill was one-shot");
    }

    #[test]
    fn remove_and_reconfigure() {
        let n = name("remove", "p");
        configure(&n, Trigger::Always(FaultAction::Err));
        assert!(fire(&n));
        remove(&n);
        assert!(!fire(&n));
        assert_eq!(stats(&n), FailpointStats::default());
        configure(&n, Trigger::Always(FaultAction::Err));
        assert!(fire(&n));
    }
}
