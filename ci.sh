#!/usr/bin/env bash
# The conformance gates every PR must pass, runnable locally.
#
#   ./ci.sh [gate|stream|recovery|reactor|analysis|all]   (default: gate)
#
#   gate     — formatting, release build, full test suite, xtask lint,
#              and the end-to-end smoke tests (serve, read path, build,
#              chaos). Tier-1: must pass on stable, fully offline.
#   stream   — the streaming-ingestion smoke: fleetsim's interleaved
#              wire through polstream (byte-identity vs the batch build
#              plus a sustained-ingest rps floor), a polinv audit of
#              the published delta chain, and a delta hot-reload of a
#              live server under polload traffic with the freshness
#              fields checked afterwards.
#   recovery — the crash-recovery gate: polstream journals the wire to
#              a POLWAL1 directory and SIGABRTs itself mid-run
#              (--kill-after); a second invocation --recovers from the
#              checkpoint + journal suffix, resumes the wire, and must
#              close byte-identical to the batch build with the delta
#              chain byte-identical to an uninterrupted oracle, within
#              a bounded recovery latency. The surviving chain is then
#              audited with polinv verify.
#   reactor  — the event-loop scalability gate: a reactor-core server
#              holds 10 000 open sockets (95% idle, the rest driven
#              hard) behind an rps floor, hot-swaps its snapshot under
#              a concurrent burst, survives the fault-injected chaos
#              self-test on the same core, and drains cleanly on stdin
#              EOF. The 10k descriptors are split across the polinv
#              server process and the polload driver so the container's
#              fd ceiling holds.
#   analysis — the dynamic checkers: loom model checking of the serve
#              primitives, Miri on the codec property tests, ASan on
#              the mmap suite, TSan on the loopback server tests.
#              Checkers whose toolchain components are unavailable in
#              this container skip LOUDLY with the reason; the pinned
#              CI job runs them for real. See analysis/README.md.
#
# See DESIGN.md §6 "Correctness tooling" for what each layer proves.
set -euo pipefail
cd "$(dirname "$0")"

# The smoke stages allocate scratch dirs; one trap cleans up whichever
# exist so `all` never leaks an earlier stage's directory.
smoke_dir=""
stream_dir=""
recovery_dir=""
reactor_dir=""
cleanup() {
  [ -n "$smoke_dir" ] && rm -rf "$smoke_dir"
  [ -n "$stream_dir" ] && rm -rf "$stream_dir"
  [ -n "$recovery_dir" ] && rm -rf "$recovery_dir"
  [ -n "$reactor_dir" ] && rm -rf "$reactor_dir"
  return 0
}
trap cleanup EXIT

# The nightly toolchain used by Miri and the sanitizers. CI pins an
# exact date via POL_NIGHTLY so sanitizer behaviour cannot drift.
NIGHTLY="${POL_NIGHTLY:-nightly}"

run_gate() {
  echo "==> cargo fmt --all --check"
  cargo fmt --all --check

  echo "==> cargo build --release"
  cargo build --release

  echo "==> cargo test --workspace -q"
  cargo test --workspace -q

  echo "==> cargo run -p xtask -- lint"
  cargo run -q -p xtask -- lint

  echo "==> pol-serve smoke test (build inventory, serve, polload burst, clean shutdown)"
  smoke_dir=$(mktemp -d)
  cargo run --release -q -p pol-bench --bin polinv -- \
    build --out "$smoke_dir/inv.pol" --vessels 10 --days 3 >/dev/null
  mkfifo "$smoke_dir/ctl"
  cargo run --release -q -p pol-bench --bin polinv -- \
    serve "$smoke_dir/inv.pol" --addr 127.0.0.1:0 \
    > "$smoke_dir/serve.out" 2> "$smoke_dir/serve.err" < "$smoke_dir/ctl" &
  serve_pid=$!
  exec 9> "$smoke_dir/ctl" # hold the control fifo open; closing it stops the server
  serve_addr=""
  for _ in $(seq 1 100); do
    serve_addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve.out")
    if [ -n "$serve_addr" ]; then break; fi
    sleep 0.1
  done
  if [ -z "$serve_addr" ]; then
    echo "ci: server never reported its address" >&2
    exit 1
  fi
  cargo run --release -q -p pol-bench --bin polload -- \
    --addr "$serve_addr" --threads 4 --requests 2000 \
    --out "$smoke_dir/BENCH_serve.json" > "$smoke_dir/load.out"
  if ! grep -q '"endpoint": "point_summary"' "$smoke_dir/BENCH_serve.json"; then
    echo "ci: polload produced no point_summary result" >&2
    exit 1
  fi
  if grep -q '"rps": 0\.0,' "$smoke_dir/BENCH_serve.json"; then
    echo "ci: an endpoint reported zero RPS" >&2
    exit 1
  fi
  exec 9>&- # stdin EOF -> graceful shutdown
  wait "$serve_pid"
  if ! grep -q "shut down after" "$smoke_dir/serve.err"; then
    echo "ci: server did not shut down cleanly" >&2
    exit 1
  fi
  echo "pol-serve smoke: $(grep 'aggregate point_summary' "$smoke_dir/load.out")"

  echo "==> read-path smoke (migrate to POLINV3, serve mmap, batch burst, rps floor)"
  cargo run --release -q -p pol-bench --bin polinv -- \
    migrate "$smoke_dir/inv.pol" "$smoke_dir/inv.pol3" > "$smoke_dir/migrate.out"
  cargo run --release -q -p pol-bench --bin polinv -- \
    verify "$smoke_dir/inv.pol3" >/dev/null
  mkfifo "$smoke_dir/ctl3"
  cargo run --release -q -p pol-bench --bin polinv -- \
    serve "$smoke_dir/inv.pol3" --addr 127.0.0.1:0 \
    > "$smoke_dir/serve3.out" 2> "$smoke_dir/serve3.err" < "$smoke_dir/ctl3" &
  serve3_pid=$!
  exec 8> "$smoke_dir/ctl3"
  serve3_addr=""
  for _ in $(seq 1 100); do
    serve3_addr=$(sed -n 's/^listening on //p' "$smoke_dir/serve3.out")
    if [ -n "$serve3_addr" ]; then break; fi
    sleep 0.1
  done
  if [ -z "$serve3_addr" ]; then
    echo "ci: mmap server never reported its address" >&2
    exit 1
  fi
  # The floor gates batched route-summary throughput — conservative (the
  # committed baseline is ~500k rps on release loopback), catching a read
  # path that stopped amortising, not jitter.
  cargo run --release -q -p pol-bench --bin polload -- \
    --addr "$serve3_addr" --threads 4 --requests 2000 --batch 32 --min-rps 20000 \
    --out "$smoke_dir/BENCH_serve3.json" > "$smoke_dir/load3.out"
  if ! grep -q '"endpoint": "route_summary_batch"' "$smoke_dir/BENCH_serve3.json"; then
    echo "ci: polload produced no batched route_summary result" >&2
    exit 1
  fi
  exec 8>&- # stdin EOF -> graceful shutdown
  wait "$serve3_pid"
  if ! grep -q "shut down after" "$smoke_dir/serve3.err"; then
    echo "ci: mmap server did not shut down cleanly" >&2
    exit 1
  fi
  echo "read-path smoke: $(grep -- '--min-rps gate' "$smoke_dir/load3.out")"

  echo "==> polbuild ingestion smoke (fused vs staged, bit-identity + throughput + speedup floors)"
  # The rps floor is deliberately conservative (~2 orders below a
  # release-build laptop) — it catches a pipeline that stopped scaling,
  # not jitter. --threads sweeps the staged/fused pair across worker
  # counts so the radix-merge parallel path is exercised, not just the
  # sequential one. --min-speedup 1.0 is the tentpole acceptance bar:
  # the fused executor must beat (or tie) the staged pipeline at EVERY
  # swept thread count; --repeat 3 takes the min-of-3 wall time per
  # executor so a neighbour stealing the CPU mid-pass cannot fail the
  # gate on scheduling noise.
  cargo run --release -q -p pol-bench --bin polbuild -- \
    --vessels 10 --days 3 --threads 1,4 --min-rps 5000 \
    --min-speedup 1.0 --repeat 3 \
    --out "$smoke_dir/BENCH_build.json" > "$smoke_dir/build.out"
  if [ ! -s "$smoke_dir/BENCH_build.json" ]; then
    echo "ci: polbuild wrote no BENCH_build.json" >&2
    exit 1
  fi
  if ! grep -q '"bit_identical": true' "$smoke_dir/BENCH_build.json"; then
    echo "ci: fused executor diverged from staged" >&2
    exit 1
  fi
  if grep -q '"fused_records_per_sec": 0\.0' "$smoke_dir/BENCH_build.json"; then
    echo "ci: polbuild reported zero end-to-end throughput" >&2
    exit 1
  fi
  echo "polbuild smoke: $(cat "$smoke_dir/build.out" | head -1)"

  echo "==> chaos smoke (fault-injected persistence + serving + journaling)"
  cargo test -q -p pol-core --features chaos --test codec_chaos
  cargo test -q -p pol-serve --features chaos --test chaos
  cargo test -q -p pol-stream --features chaos --test chaos
  cargo run -q -p pol-bench --features chaos --bin polload -- \
    --chaos --vessels 20 --days 3 --requests 1000

  echo "ci: gate passed"
}

run_stream() {
  echo "==> streaming ingest smoke (interleaved wire -> polstream -> byte-identity + rps floor)"
  stream_dir=$(mktemp -d)
  # Same philosophy as polbuild's floor: conservative (release laptops
  # sustain far more), catching an ingest path that stopped scaling.
  cargo run --release -q -p pol-bench --bin polstream -- \
    --vessels 10 --days 3 --window-days 1 --min-rps 5000 \
    --delta-dir "$stream_dir/deltas" --out "$stream_dir/BENCH_stream.json" \
    > "$stream_dir/stream.out"
  if ! grep -q '"byte_identical": true' "$stream_dir/BENCH_stream.json"; then
    echo "ci: streamed inventory diverged from the batch build" >&2
    exit 1
  fi
  if ! grep -q '"late_dropped": 0,' "$stream_dir/BENCH_stream.json"; then
    echo "ci: the reorder bound dropped records the batch build saw" >&2
    exit 1
  fi
  # The ingestion vitals line: nothing may have fallen behind the
  # reorder bound on the smoke wire.
  if ! grep -q '^progress: .*late_dropped=0 ' "$stream_dir/stream.out"; then
    echo "ci: polstream progress output did not report late_dropped=0" >&2
    exit 1
  fi
  echo "polstream smoke: $(grep -- '--min-rps gate' "$stream_dir/stream.out")"

  echo "==> delta chain audit (polinv verify walks base + every delta)"
  cargo run --release -q -p pol-bench --bin polinv -- \
    verify "$stream_dir/deltas/inventory.polman" > "$stream_dir/verify.out"
  if ! grep -q 'OK (POLMAN1 delta chain)' "$stream_dir/verify.out"; then
    echo "ci: polinv did not verify the published delta chain" >&2
    exit 1
  fi

  echo "==> delta hot-reload under load (serve the base, swap in the chain mid-burst)"
  mkfifo "$stream_dir/ctl"
  cargo run --release -q -p pol-bench --bin polinv -- \
    serve "$stream_dir/deltas/base.pol" --addr 127.0.0.1:0 \
    > "$stream_dir/serve.out" 2> "$stream_dir/serve.err" < "$stream_dir/ctl" &
  stream_serve_pid=$!
  exec 7> "$stream_dir/ctl" # hold the control fifo open; closing it stops the server
  stream_addr=""
  for _ in $(seq 1 100); do
    stream_addr=$(sed -n 's/^listening on //p' "$stream_dir/serve.out")
    if [ -n "$stream_addr" ]; then break; fi
    sleep 0.1
  done
  if [ -z "$stream_addr" ]; then
    echo "ci: chain server never reported its address" >&2
    exit 1
  fi
  # Drive a burst and swap the snapshot for the full base+delta chain
  # while it runs. polload fails on any dropped or errored request, so
  # its exit code is the "zero dropped in-flight queries" check; the
  # loopback test suite proves the zero-wrong-answers half.
  cargo run --release -q -p pol-bench --bin polload -- \
    --addr "$stream_addr" --threads 4 --requests 8000 \
    --out "$stream_dir/BENCH_reload.json" > "$stream_dir/load.out" 2> "$stream_dir/load.err" &
  load_pid=$!
  sleep 0.5
  echo "reload $stream_dir/deltas/inventory.polman" >&7
  if ! wait "$load_pid"; then
    echo "ci: polload dropped requests across the delta reload" >&2
    exit 1
  fi
  if ! grep -q "^reloaded $stream_dir/deltas/inventory.polman" "$stream_dir/serve.err"; then
    echo "ci: server never applied the delta-chain reload" >&2
    exit 1
  fi
  # Freshness probe: a fresh polload run renders the server's STATS
  # report, which must now carry the reloaded chain's lineage.
  cargo run --release -q -p pol-bench --bin polload -- \
    --addr "$stream_addr" --threads 1 --requests 50 \
    --out "$stream_dir/BENCH_probe.json" > /dev/null 2> "$stream_dir/probe.err"
  if ! grep -Eq 'delta_generation=[0-9]+ chain_len=([2-9]|[0-9]{2,}) since_reload_secs=[0-9]+' \
      "$stream_dir/probe.err"; then
    echo "ci: STATS did not report the reloaded chain's freshness fields" >&2
    exit 1
  fi
  exec 7>&- # stdin EOF -> graceful shutdown
  wait "$stream_serve_pid"
  if ! grep -q "shut down after" "$stream_dir/serve.err"; then
    echo "ci: chain server did not shut down cleanly" >&2
    exit 1
  fi
  echo "delta reload smoke: $(grep -m1 'delta_generation=' "$stream_dir/probe.err")"

  echo "ci: stream passed"
}

run_recovery() {
  echo "==> crash-recovery gate (journal, SIGABRT mid-run, recover, reconverge)"
  recovery_dir=$(mktemp -d)
  # Life 1: journal the wire and abort after 15k records — far enough
  # to have durable WAL segments, a checkpoint, and published deltas on
  # disk, and early enough that a real journal suffix remains to replay.
  if cargo run --release -q -p pol-bench --bin polstream -- \
      --vessels 10 --days 3 --window-days 1 \
      --wal-dir "$recovery_dir/wal" --checkpoint-every 5000 --kill-after 13500 \
      --out "$recovery_dir/BENCH_kill.json" \
      > "$recovery_dir/kill.out" 2> "$recovery_dir/kill.err"; then
    echo "ci: polstream --kill-after exited cleanly instead of aborting" >&2
    exit 1
  fi
  if ! grep -q -- '--kill-after 13500: aborting' "$recovery_dir/kill.err"; then
    echo "ci: polstream died before the scripted kill point" >&2
    cat "$recovery_dir/kill.err" >&2
    exit 1
  fi
  if ! ls "$recovery_dir/wal/"wal-*.polwal >/dev/null 2>&1; then
    echo "ci: the killed run left no journal segment behind" >&2
    exit 1
  fi

  # Life 2: recover from the checkpoint + journal suffix, resume the
  # wire, and hold the run to the full gate set — batch byte-identity,
  # chain byte-identity vs an uninterrupted oracle, bounded recovery
  # latency, and the rps floor.
  cargo run --release -q -p pol-bench --bin polstream -- \
    --vessels 10 --days 3 --window-days 1 \
    --wal-dir "$recovery_dir/wal" --checkpoint-every 5000 --recover \
    --max-recovery-secs 60 --min-rps 5000 \
    --out "$recovery_dir/BENCH_stream_recovery.json" \
    > "$recovery_dir/recover.out"
  if ! grep -q '"byte_identical": true' "$recovery_dir/BENCH_stream_recovery.json"; then
    echo "ci: recovered inventory diverged from the batch build" >&2
    exit 1
  fi
  if ! grep -q '"recovered": true' "$recovery_dir/BENCH_stream_recovery.json"; then
    echo "ci: the recovery run did not record itself as recovered" >&2
    exit 1
  fi
  if ! grep -q 'recovery gate passed' "$recovery_dir/recover.out"; then
    echo "ci: the recovered delta chain was not proven byte-identical" >&2
    exit 1
  fi
  if ! grep -q '^progress: .*late_dropped=0 ' "$recovery_dir/recover.out"; then
    echo "ci: recovered run progress did not report late_dropped=0" >&2
    exit 1
  fi

  echo "==> surviving chain audit (polinv verify walks base + every delta)"
  cargo run --release -q -p pol-bench --bin polinv -- \
    verify "$recovery_dir/wal/inventory.polman" > "$recovery_dir/verify.out"
  if ! grep -q 'OK (POLMAN1 delta chain)' "$recovery_dir/verify.out"; then
    echo "ci: polinv did not verify the recovered delta chain" >&2
    exit 1
  fi
  echo "recovery smoke: $(grep -m1 '  recovery ' "$recovery_dir/recover.out")"

  echo "ci: recovery passed"
}

run_reactor() {
  echo "==> reactor scalability gate (10k open sockets, rps floor, reload under load, chaos, drain)"
  reactor_dir=$(mktemp -d)
  cargo run --release -q -p pol-bench --bin polinv -- \
    build --out "$reactor_dir/inv.pol" --vessels 10 --days 3 >/dev/null
  cargo run --release -q -p pol-bench --bin polinv -- \
    migrate "$reactor_dir/inv.pol" "$reactor_dir/inv.pol3" >/dev/null
  mkfifo "$reactor_dir/ctl"
  cargo run --release -q -p pol-bench --bin polinv -- \
    serve "$reactor_dir/inv.pol3" --core reactor --addr 127.0.0.1:0 \
    > "$reactor_dir/serve.out" 2> "$reactor_dir/serve.err" < "$reactor_dir/ctl" &
  reactor_pid=$!
  exec 6> "$reactor_dir/ctl" # hold the control fifo open; closing it stops the server
  reactor_addr=""
  for _ in $(seq 1 100); do
    reactor_addr=$(sed -n 's/^listening on //p' "$reactor_dir/serve.out")
    if [ -n "$reactor_addr" ]; then break; fi
    sleep 0.1
  done
  if [ -z "$reactor_addr" ]; then
    echo "ci: reactor server never reported its address" >&2
    exit 1
  fi
  # The 10k-socket burst: 95% of the fleet sits silent in the readiness
  # table while the rest is driven in rotation. The floor is roughly an
  # order of magnitude under the committed single-core baseline
  # (figures/BENCH_serve.json records ~9k rps at 10k sockets), so it
  # catches a reactor that stopped scaling, not scheduler jitter.
  cargo run --release -q -p pol-bench --bin polload -- \
    --addr "$reactor_addr" --connections 10000 --idle-frac 0.95 \
    --threads 4 --requests 20000 --min-rps 1000 \
    --out "$reactor_dir/BENCH_conn.json" > "$reactor_dir/conn.out"
  if ! grep -q '"connections": 10000' "$reactor_dir/BENCH_conn.json"; then
    echo "ci: the connection bench recorded no 10k row" >&2
    exit 1
  fi
  # Hot reload while a fresh burst is in flight: no request may be
  # dropped across the swap (polload exits non-zero on any error).
  cargo run --release -q -p pol-bench --bin polload -- \
    --addr "$reactor_addr" --threads 4 --requests 6000 \
    --out "$reactor_dir/BENCH_reload.json" > /dev/null 2>&1 &
  reactor_load_pid=$!
  sleep 0.3
  echo "reload $reactor_dir/inv.pol3" >&6
  if ! wait "$reactor_load_pid"; then
    echo "ci: polload dropped requests across the reactor reload" >&2
    exit 1
  fi
  if ! grep -q "^reloaded $reactor_dir/inv.pol3" "$reactor_dir/serve.err"; then
    echo "ci: reactor server never applied the reload" >&2
    exit 1
  fi
  # The kill/delay chaos pass on the same core (failpoints are
  # per-process, so this runs the in-process self-test; the default
  # server core is the reactor).
  cargo run -q -p pol-bench --features chaos --bin polload -- \
    --chaos --vessels 10 --days 3 --requests 500 > "$reactor_dir/chaos.out"
  # Clean drain: stdin EOF, then the shutdown line must appear even
  # after carrying 10k sockets.
  exec 6>&- # stdin EOF -> graceful shutdown
  wait "$reactor_pid"
  if ! grep -q "shut down after" "$reactor_dir/serve.err"; then
    echo "ci: reactor server did not drain cleanly" >&2
    exit 1
  fi
  echo "reactor smoke: $(grep -- '--min-rps gate' "$reactor_dir/conn.out")"

  echo "ci: reactor passed"
}

# Prints a loud, documented skip. Every skip names its checker, the
# missing prerequisite, and where the checker does run for real — a
# silent skip is indistinguishable from a pass, so none are allowed.
skip() {
  local checker="$1" reason="$2"
  echo "ci: SKIP $checker — $reason" >&2
  echo "ci: SKIP $checker — runs in the pinned CI analysis job; see analysis/README.md" >&2
}

run_analysis() {
  echo "==> loom self-tests (the checker must catch planted bugs)"
  cargo test -q -p loom

  echo "==> loom models of the serve primitives (RUSTFLAGS=--cfg loom)"
  RUSTFLAGS="--cfg loom" cargo test -q -p pol-serve --test loom_models

  echo "==> Miri on the codec property tests (PROPTEST_CASES=4)"
  if cargo "+$NIGHTLY" miri --version >/dev/null 2>&1; then
    # Shrunk case counts: Miri executes ~100x slower than native, and
    # the UB surface does not grow with the number of random inputs.
    PROPTEST_CASES=4 cargo "+$NIGHTLY" miri test -q \
      -p pol-core --test codec_columnar --test codec_corruption
    PROPTEST_CASES=4 cargo "+$NIGHTLY" miri test -q \
      -p pol-sketch --test columnar --test merge_laws
  else
    skip "miri" "the miri component is not installed for $NIGHTLY (offline container)"
  fi

  host=$(rustc "+$NIGHTLY" -vV 2>/dev/null | sed -n 's/^host: //p' || true)
  if [ -z "$host" ]; then
    skip "asan" "no $NIGHTLY toolchain available"
    skip "tsan" "no $NIGHTLY toolchain available"
  else
    echo "==> AddressSanitizer on the mmap test suite ($host)"
    # --target keeps build scripts and proc macros uninstrumented; the
    # suppression file is policy-empty (see analysis/README.md).
    RUSTFLAGS="-Zsanitizer=address" \
    ASAN_OPTIONS="suppressions=$PWD/analysis/asan.supp" \
    LSAN_OPTIONS="suppressions=$PWD/analysis/asan.supp" \
      cargo "+$NIGHTLY" test -q -p pol-serve --test mapped --target "$host"

    echo "==> ThreadSanitizer on the serve loopback tests"
    if rustup component list --toolchain "$NIGHTLY" 2>/dev/null \
        | grep -q '^rust-src.*(installed)'; then
      # -Zbuild-std instruments std itself; without it TSan reports
      # false races against std's futex internals (analysis/README.md,
      # skip condition 2) so we refuse to run that configuration.
      RUSTFLAGS="-Zsanitizer=thread" \
      TSAN_OPTIONS="suppressions=$PWD/analysis/tsan.supp" \
        cargo "+$NIGHTLY" test -q -Zbuild-std \
        -p pol-serve --test loopback --target "$host"
    else
      skip "tsan" "the rust-src component is not installed for $NIGHTLY (needed for -Zbuild-std; offline container)"
    fi
  fi

  echo "ci: analysis passed (skips, if any, are listed above)"
}

stage="${1:-gate}"
case "$stage" in
  gate) run_gate ;;
  stream) run_stream ;;
  recovery) run_recovery ;;
  reactor) run_reactor ;;
  analysis) run_analysis ;;
  all)
    run_gate
    run_stream
    run_recovery
    run_reactor
    run_analysis
    ;;
  *)
    echo "usage: ./ci.sh [gate|stream|recovery|reactor|analysis|all]" >&2
    exit 2
    ;;
esac

echo "ci: all requested stages passed"
