#!/usr/bin/env bash
# The conformance gate every PR must pass, runnable locally: formatting,
# release build, the full test suite, then the repo-specific static
# analysis (see DESIGN.md §6 "Correctness tooling").
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo run -p xtask -- lint"
cargo run -q -p xtask -- lint

echo "ci: all gates passed"
