//! # Patterns of Life — a global inventory for maritime mobility patterns
//!
//! Facade crate for the workspace reproducing Spiliopoulos et al.,
//! *"Patterns of Life: Global Inventory for maritime mobility patterns"*
//! (EDBT 2024). Re-exports every subsystem under a short name:
//!
//! * [`geo`] — geodesy primitives (distances, bearings, equal-area projection)
//! * [`hexgrid`] — hexagonal hierarchical geospatial index (H3 substitute)
//! * [`sketch`] — mergeable streaming statistics (Table 3's statistics)
//! * [`ais`] — AIS data model and NMEA AIVDM wire codec
//! * [`engine`] — in-process data-parallel MapReduce engine (Spark substitute)
//! * [`fleetsim`] — deterministic synthetic global AIS dataset generator
//! * [`core`] — the paper's pipeline: cleaning, trip semantics, grid
//!   projection, feature extraction, and the global inventory
//! * [`apps`] — §4 use cases: ETA, destination prediction, route forecasting,
//!   anomaly detection
//! * [`baselines`] — clustering baselines (DBSCAN, k-means route extraction)
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use pol_ais as ais;
pub use pol_apps as apps;
pub use pol_baselines as baselines;
pub use pol_core as core;
pub use pol_engine as engine;
pub use pol_fleetsim as fleetsim;
pub use pol_geo as geo;
pub use pol_hexgrid as hexgrid;
pub use pol_sketch as sketch;
