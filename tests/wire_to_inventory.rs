//! Integration test spanning the AIS wire format and the pipeline: raw
//! NMEA sentences in, inventory out — the full receiving-network path the
//! paper's §3.1 describes.

use patterns_of_life::ais::decode::{decode_payload, AisMessage};
use patterns_of_life::ais::encode::encode_position_a;
use patterns_of_life::ais::nmea::{Assembler, Sentence};
use patterns_of_life::ais::{PositionReport, StaticReport};
use patterns_of_life::core::records::PortSite;
use patterns_of_life::core::PipelineConfig;
use patterns_of_life::engine::Engine;
use patterns_of_life::fleetsim::scenario::{generate, ScenarioConfig};
use patterns_of_life::fleetsim::WORLD_PORTS;

/// Every simulated report survives NMEA encode → wire → parse → decode
/// with protocol quantisation only, and the decoded stream produces the
/// same inventory shape as the direct stream.
#[test]
fn nmea_wire_path_feeds_the_pipeline() {
    let mut scenario = ScenarioConfig {
        n_vessels: 8,
        duration_days: 4,
        ..ScenarioConfig::default()
    };
    // No injected corruption: the wire format *saturates* out-of-range
    // fields (SOG clamps to 102.2 kn, courses wrap), so corrupt records
    // would legitimately differ between the direct and wire paths.
    scenario.emission.corrupt_rate = 0.0;
    let ds = generate(&scenario);

    // Ship every report over the wire.
    let mut asm = Assembler::new();
    let mut wired: Vec<Vec<PositionReport>> = Vec::new();
    let mut wire_failures = 0;
    for part in &ds.positions {
        let mut out = Vec::with_capacity(part.len());
        for r in part {
            let (payload, fill) = encode_position_a(r);
            let line = Sentence::wrap(&payload, fill, 0)[0].to_line();
            let sentence = Sentence::parse(&line).expect("self-produced NMEA parses");
            let Some((payload, fill)) = asm.push(sentence) else {
                wire_failures += 1;
                continue;
            };
            match decode_payload(&payload, fill) {
                Ok(AisMessage::PositionA {
                    mmsi,
                    nav_status,
                    sog_knots,
                    pos,
                    cog_deg,
                    heading_deg,
                    ..
                }) => {
                    let pos = pos.expect("valid positions stay available");
                    out.push(PositionReport {
                        mmsi,
                        // Receiver-assigned timestamp (AIS carries only the
                        // UTC second): keep the original.
                        timestamp: r.timestamp,
                        pos,
                        sog_knots,
                        cog_deg,
                        heading_deg,
                        nav_status,
                    });
                }
                other => panic!("wire path broke: {other:?}"),
            }
        }
        wired.push(out);
    }
    assert_eq!(wire_failures, 0);
    let direct_count: usize = ds.positions.iter().map(Vec::len).sum();
    let wired_count: usize = wired.iter().map(Vec::len).sum();
    assert_eq!(direct_count, wired_count);

    // Run the pipeline on both streams.
    let cfg = PipelineConfig::default();
    let ports: Vec<PortSite> = WORLD_PORTS
        .iter()
        .enumerate()
        .map(|(i, p)| PortSite {
            id: i as u16,
            name: p.name.to_string(),
            pos: p.pos(),
            radius_km: cfg.port_radius_km,
        })
        .collect();
    let engine = Engine::new(2);
    let direct =
        patterns_of_life::core::run(&engine, ds.positions.clone(), &ds.statics, &ports, &cfg)
            .unwrap();
    let via_wire = patterns_of_life::core::run(&engine, wired, &ds.statics, &ports, &cfg).unwrap();

    // Wire quantisation is ~0.2 m in position and 0.05 kn in speed: stage
    // counts match exactly, per-cell stats match within quantisation.
    assert_eq!(via_wire.counts.raw, direct.counts.raw);
    assert_eq!(via_wire.counts.cleaned, direct.counts.cleaned);
    assert_eq!(via_wire.counts.with_trips, direct.counts.with_trips);
    let (ca, cb) = (direct.inventory.coverage(), via_wire.inventory.coverage());
    assert_eq!(ca.total_records, cb.total_records);
    // Cell assignment can differ only for reports within quantisation
    // distance of a cell edge — a vanishing fraction.
    let diff = (ca.occupied_cells as f64 - cb.occupied_cells as f64).abs();
    let rel = diff / ca.occupied_cells as f64;
    assert!(rel < 0.01, "{} vs {}", ca.occupied_cells, cb.occupied_cells);
}

/// The static-report join path: a vessel missing from the static inventory
/// contributes nothing (the paper's enrichment filter).
#[test]
fn unknown_vessels_are_dropped_by_enrichment() {
    let scenario = ScenarioConfig {
        n_vessels: 5,
        duration_days: 3,
        ..ScenarioConfig::default()
    };
    let ds = generate(&scenario);
    let cfg = PipelineConfig::default();
    let ports: Vec<PortSite> = WORLD_PORTS
        .iter()
        .enumerate()
        .map(|(i, p)| PortSite {
            id: i as u16,
            name: p.name.to_string(),
            pos: p.pos(),
            radius_km: cfg.port_radius_km,
        })
        .collect();
    let engine = Engine::new(2);
    // Keep statics for only the first two vessels.
    let statics: Vec<StaticReport> = ds.statics.iter().take(2).cloned().collect();
    let out =
        patterns_of_life::core::run(&engine, ds.positions.clone(), &statics, &ports, &cfg).unwrap();
    let full =
        patterns_of_life::core::run(&engine, ds.positions, &ds.statics, &ports, &cfg).unwrap();
    assert!(out.counts.cleaned < full.counts.cleaned);
    assert!(out.clean_report.non_commercial > 0);
}
