//! Workspace integration test: the complete paper pipeline from simulated
//! AIS traffic through the inventory to every §4 use case.

use patterns_of_life::apps::{
    AnomalyDetector, DestinationPredictor, EtaEstimator, RouteForecaster,
};
use patterns_of_life::core::features::{GroupKey, GroupingSet};
use patterns_of_life::core::records::PortSite;
use patterns_of_life::core::{codec, PipelineConfig};
use patterns_of_life::engine::Engine;
use patterns_of_life::fleetsim::scenario::{generate, ScenarioConfig};
use patterns_of_life::fleetsim::WORLD_PORTS;
use patterns_of_life::hexgrid::cell_at;
use std::sync::OnceLock;

struct World {
    dataset: patterns_of_life::fleetsim::scenario::Dataset,
    output: patterns_of_life::core::PipelineOutput,
    config: PipelineConfig,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let scenario = ScenarioConfig {
            n_vessels: 50,
            duration_days: 10,
            ..ScenarioConfig::default()
        };
        let dataset = generate(&scenario);
        let config = PipelineConfig::default();
        let ports: Vec<PortSite> = WORLD_PORTS
            .iter()
            .enumerate()
            .map(|(i, p)| PortSite {
                id: i as u16,
                name: p.name.to_string(),
                pos: p.pos(),
                radius_km: config.port_radius_km,
            })
            .collect();
        let engine = Engine::new(2);
        let output = patterns_of_life::core::run(
            &engine,
            dataset.positions.clone(),
            &dataset.statics,
            &ports,
            &config,
        )
        .unwrap();
        World {
            dataset,
            output,
            config,
        }
    })
}

#[test]
fn pipeline_funnel_is_sane() {
    let w = world();
    let c = &w.output.counts;
    assert!(c.raw > 100_000, "raw {}", c.raw);
    assert!(c.cleaned <= c.raw);
    assert!(
        c.cleaned as f64 > c.raw as f64 * 0.8,
        "cleaning must not devastate"
    );
    assert!(c.with_trips > 0 && c.with_trips <= c.cleaned);
    assert_eq!(c.projected, c.with_trips);
    assert!(c.group_entries > 0);
    // Cleaning accounting adds up.
    let r = &w.output.clean_report;
    assert_eq!(
        r.input,
        r.out_of_range + r.non_commercial + r.infeasible + r.output
    );
}

#[test]
fn inventory_has_all_grouping_sets_and_compresses() {
    let w = world();
    let inv = &w.output.inventory;
    for gs in GroupingSet::ALL {
        assert!(inv.len_of(gs) > 0, "{gs:?}");
    }
    // Table 2's hierarchy: per-type entries at least as numerous as cells,
    // route entries at least as numerous as per-type.
    assert!(inv.len_of(GroupingSet::CellType) >= inv.len_of(GroupingSet::Cell));
    let cov = inv.coverage();
    assert!(cov.compression > 0.8, "compression {}", cov.compression);
    assert!(cov.utilization > 0.0 && cov.utilization < 0.01);
}

#[test]
fn cell_level_consistency_between_grouping_sets() {
    let w = world();
    let inv = &w.output.inventory;
    // For every cell: records in (cell) == Σ records in (cell, type) ==
    // Σ records in (cell, o, d, type).
    let mut by_cell: std::collections::HashMap<u64, (u64, u64, u64)> = Default::default();
    for (key, stats) in inv.iter() {
        let e = by_cell.entry(key.cell().raw()).or_default();
        match key {
            GroupKey::Cell(_) => e.0 += stats.records,
            GroupKey::CellType(_, _) => e.1 += stats.records,
            GroupKey::CellRoute(_, _, _, _) => e.2 += stats.records,
        }
    }
    for (cell, (a, b, c)) in &by_cell {
        assert_eq!(a, b, "cell {cell:x}: cell vs type totals");
        assert_eq!(a, c, "cell {cell:x}: cell vs route totals");
    }
}

#[test]
fn inventory_round_trips_through_codec() {
    let w = world();
    let bytes = codec::to_bytes(&w.output.inventory);
    let back = codec::from_bytes(&bytes).expect("decodes");
    assert_eq!(back.len(), w.output.inventory.len());
    assert_eq!(back.total_records(), w.output.inventory.total_records());
    assert_eq!(codec::to_bytes(&back), bytes, "canonical bytes");
}

#[test]
fn eta_estimator_works_on_busy_cells() {
    let w = world();
    let inv = &w.output.inventory;
    let (busiest, stats) = inv
        .iter()
        .filter_map(|(k, s)| match k {
            GroupKey::Cell(c) => Some((*c, s)),
            _ => None,
        })
        .max_by_key(|(_, s)| s.records)
        .expect("non-empty");
    assert!(
        stats.records > 10,
        "busiest cell only has {}",
        stats.records
    );
    let pos = patterns_of_life::hexgrid::cell_center(busiest);
    let est = EtaEstimator::new(inv)
        .estimate(pos, None, None)
        .expect("busy cell estimates");
    assert!(est.mean_secs >= 0.0);
    assert!(est.p10_secs <= est.p90_secs);
}

#[test]
fn destination_predictor_tracks_a_real_voyage() {
    let w = world();
    // The voyage must complete inside the window, or trip extraction never
    // saw its destination and the inventory cannot know it.
    let (start, end) = (w.dataset.config.start, w.dataset.config.end());
    let v = w
        .dataset
        .truth
        .iter()
        .filter(|v| v.departure >= start && v.arrival <= end)
        .max_by_key(|v| v.arrival - v.departure)
        .expect("an in-window voyage exists");
    let vi = w
        .dataset
        .fleet
        .iter()
        .position(|f| f.mmsi == v.mmsi)
        .unwrap();
    let seg = w.dataset.fleet[vi].segment;
    let mut p = DestinationPredictor::new(&w.output.inventory, Some(seg));
    let mut contributed = 0;
    for r in w.dataset.positions[vi]
        .iter()
        .filter(|r| r.timestamp >= v.departure && r.timestamp <= v.arrival)
    {
        if p.observe(r.pos) {
            contributed += 1;
        }
    }
    // The training data contains this very voyage, so its cells exist and
    // the true destination holds a positive score (rank depends on how much
    // competing traffic shares the lane at this small scale).
    assert!(contributed > 0);
    let top = p.top(5);
    assert!(!top.is_empty());
    let full = p.top(usize::MAX);
    assert!(
        full.iter().any(|(d, s)| *d == v.dest.0 && *s > 0.0),
        "true destination {} absent from the tally {full:?}",
        v.dest.0
    );
}

#[test]
fn route_forecaster_reconstructs_training_route() {
    let w = world();
    // The longest voyage seen in training has a well-populated key.
    let v = w
        .dataset
        .truth
        .iter()
        .max_by_key(|v| (v.distance_km * 10.0) as u64)
        .expect("voyages");
    let seg = w
        .dataset
        .fleet
        .iter()
        .find(|f| f.mmsi == v.mmsi)
        .unwrap()
        .segment;
    let dest_pos = WORLD_PORTS[v.dest.0 as usize].pos();
    let f = RouteForecaster::build(&w.output.inventory, v.origin.0, v.dest.0, seg, dest_pos);
    if f.cell_count() < 20 {
        return; // voyage straddled the window edge; key sparsely observed
    }
    let vi = w
        .dataset
        .fleet
        .iter()
        .position(|x| x.mmsi == v.mmsi)
        .unwrap();
    let mid = w.dataset.positions[vi]
        .iter()
        .filter(|r| r.timestamp >= v.departure && r.timestamp <= v.arrival)
        .nth(50);
    if let Some(r) = mid {
        if let Some(fc) = f.forecast(r.pos, w.config.resolution) {
            assert!(fc.cells.len() > 2);
            assert!(fc.distance_km > 0.0);
        }
    }
}

#[test]
fn anomaly_detector_consistent_with_inventory() {
    let w = world();
    let det = AnomalyDetector::new(&w.output.inventory);
    // Mid-ocean nowhere: off-lane.
    let nowhere = patterns_of_life::geo::LatLon::new(-48.0, -170.0).unwrap();
    assert_eq!(
        det.assess(nowhere, Some(12.0), Some(90.0), None),
        vec![patterns_of_life::apps::Anomaly::OffLane]
    );
    // The busiest cell with its own historical mean: normal.
    let inv = &w.output.inventory;
    let (cell, stats) = inv
        .iter()
        .filter_map(|(k, s)| match k {
            GroupKey::Cell(c) => Some((*c, s)),
            _ => None,
        })
        .max_by_key(|(_, s)| s.records)
        .unwrap();
    let pos = patterns_of_life::hexgrid::cell_center(cell);
    let mean_speed = stats.speed.mean().unwrap_or(10.0);
    let verdict = det.assess(pos, Some(mean_speed), None, None);
    assert!(verdict.is_empty(), "{verdict:?}");
}

#[test]
fn figure6_style_query_returns_hub_cells() {
    let w = world();
    // At least one of the three hub ports should be some cell's top
    // destination in a 50-vessel run.
    let hubs = ["SGSIN", "CNSHA", "NLRTM"];
    let total: usize = hubs
        .iter()
        .map(|code| {
            let id = patterns_of_life::fleetsim::ports::port_by_locode(code)
                .unwrap()
                .0
                 .0;
            w.output
                .inventory
                .cells_with_top_destination(id, None)
                .len()
        })
        .sum();
    assert!(total > 0, "no hub-destined cells at all");
}

#[test]
fn projection_matches_inventory_resolution() {
    let w = world();
    for cell in w.output.inventory.cells().take(100) {
        assert_eq!(cell.resolution(), w.config.resolution);
        // Cell centres re-project to themselves.
        let center = patterns_of_life::hexgrid::cell_center(cell);
        assert_eq!(cell_at(center, w.config.resolution), cell);
    }
}
